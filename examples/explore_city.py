#!/usr/bin/env python3
"""City exploration: k-SOI vs region queries, plus a recommended route.

Two demonstrations beyond the core pipeline:

1. **k-SOI vs the length-constrained max-sum region query** (the paper's
   closest related work, [7]): the region query returns one connected
   subgraph and, as Section 1 argues, pads the genuinely dense street
   with adjacent low-score spur segments — while the k-SOI ranking keeps
   streets separate and ordered by density.
2. **Route recommendation** (the paper's stated future work): stitch the
   top SOIs into a single walkable route over the network.

Run with ``python examples/explore_city.py``.
"""

from __future__ import annotations

from collections import Counter

from repro import RegionQuery, recommend_route
from repro.datagen import build_preset
from repro.eval.experiments import engine_for


def main() -> None:
    city = build_preset("vienna")
    engine = engine_for(city)
    network = city.network

    # -- 1. k-SOI ranking vs region query ---------------------------------
    results = engine.top_k(["food"], k=5, eps=0.0005)
    print("top-5 SOIs for 'food':")
    for rank, soi in enumerate(results, start=1):
        print(f"  {rank}. {soi.street_name:<22} interest={soi.interest:,.0f}")

    budget = 0.035  # ~3.9 km of street length
    region = RegionQuery(engine).best_region(["food"], max_length=budget,
                                             eps=0.0005)
    streets_in_region = Counter(
        network.segment(sid).street_id for sid in region.segment_ids)
    print(f"\nregion query (length budget {budget} deg ~ 3.9 km): "
          f"{len(region)} segments across {len(streets_in_region)} streets, "
          f"score={region.total_score:.0f}")
    for street_id, n_segments in streets_in_region.most_common():
        name = network.street(street_id).name
        marker = (" <- also a top-5 SOI"
                  if street_id in {r.street_id for r in results} else "")
        print(f"    {name:<22} {n_segments} segment(s){marker}")
    print("  (note the spur segments attached for connectivity — the "
        "behaviour Section 1 of the paper criticises)")

    # -- 2. route over the top SOIs ---------------------------------------
    route = recommend_route(network, results)
    print(f"\nrecommended route visiting all 5 SOIs: "
          f"{len(route.vertex_ids)} vertices, "
          f"total connecting length {route.total_length:.4f} deg "
          f"(~{route.total_length * 111:.1f} km)")
    print("  visiting order: "
          + " -> ".join(network.street(sid).name
                        for sid in route.visited_street_ids))


if __name__ == "__main__":
    main()
