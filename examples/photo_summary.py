#!/usr/bin/env python3
"""Describing a street with photos — the paper's Figure 3 scenario.

Takes the top shopping SOI of the London dataset (the synthetic stand-in
for Oxford Street) and builds a 3-photo summary under three methods:

* ``S_Rel``  — spatial relevance only: gravitates to the densest photo
  spot and returns near-duplicates (the paper's "HMV storefront" effect);
* ``T_Rel``  — textual relevance only: dominated by the highest-frequency
  tags, here the planted event burst (the paper's "demonstration" effect);
* ``ST_Rel+Div`` — the paper's method: one photo per aspect of the street.

Run with ``python examples/photo_summary.py``.
"""

from __future__ import annotations

from collections import Counter

from repro import build_street_profile, run_variant
from repro.datagen import build_preset
from repro.eval.experiments import engine_for


def describe(profile, method: str) -> list[str]:
    lines = []
    for pos in run_variant(profile, method, k=3):
        photo = profile.photos[pos]
        tags = ", ".join(sorted(photo.keywords)[:6]) or "(no tags)"
        lines.append(f"    ({photo.x:.4f}, {photo.y:.4f})  [{tags}]")
    return lines


def main() -> None:
    city = build_preset("london")
    top = engine_for(city).top_k(["shop"], k=1, eps=0.0005)[0]
    profile = build_street_profile(city.network, top.street_id,
                                   city.photos, eps=0.0005)
    print(f"describing {top.street_name!r} "
          f"({len(profile)} associated photos)")
    common = Counter()
    for keywords in profile.keyword_sets:
        common.update(keywords)
    top_tags = ", ".join(tag for tag, _n in common.most_common(6))
    print(f"dominant tags: {top_tags}\n")

    for method, caption in [
        ("S_Rel", "spatial relevance only (expect near-duplicates from "
                  "the densest spot)"),
        ("T_Rel", "textual relevance only (expect one dominant tag theme)"),
        ("ST_Rel+Div", "spatio-textual relevance + diversity (the paper's "
                       "method)"),
    ]:
        print(f"  {method}: {caption}")
        print("\n".join(describe(profile, method)))
        print()


if __name__ == "__main__":
    main()
