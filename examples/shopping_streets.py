#!/usr/bin/env python3
"""Shopping streets of Berlin — the paper's effectiveness study.

Reproduces the Table 2 / Figure 2 scenario: run the 10-SOI query for
"shop" over the Berlin dataset, compare against two (synthesised)
authoritative top-shopping-street lists, print recall@10 and render a
Figure-1(b)-style map with the results highlighted:

* ``#`` — identified SOI also in a source list (true positive);
* ``o`` — identified SOI absent from both sources (the paper found these
  to mostly be *valid* adjacent shopping streets);
* ``x`` — source street missed by the 10-SOIs (false negative).

Run with ``python examples/shopping_streets.py``.
"""

from __future__ import annotations

from repro.datagen import build_preset
from repro.eval.experiments import shopping_effectiveness
from repro.eval.reporting import format_table
from repro.viz.ascii_map import render_ascii_map


def main() -> None:
    city = build_preset("berlin")
    report = shopping_effectiveness(city, "shop", k=10)

    rows = []
    for rank in range(10):
        rows.append([
            rank + 1,
            report.ranked_street_names[rank]
            if rank < len(report.ranked_street_names) else "",
            report.source_names[0][rank]
            if rank < len(report.source_names[0]) else "",
            report.source_names[1][rank]
            if rank < len(report.source_names[1]) else "",
        ])
    print(format_table(["Rank", "Top-10 SOIs", "Source #1", "Source #2"],
                       rows,
                       title='Top SOIs for "shop" in Berlin vs sources'))
    print(f"\nrecall@10: {report.recalls[0]:.2f} (source #1), "
          f"{report.recalls[1]:.2f} (source #2) — paper reports 0.80")

    sources = {sid for source in report.sources for sid in source}
    ranked = set(report.ranked_street_ids)
    true_pos = ranked & sources
    false_pos = ranked - sources
    false_neg = sources - ranked
    print(f"\nmap: # = SOI in a source ({len(true_pos)}), "
          f"o = SOI only ({len(false_pos)}), "
          f"x = source only ({len(false_neg)})")
    print(render_ascii_map(
        city.network,
        highlights={"o": false_pos, "x": false_neg, "#": true_pos},
        width=76, height=30))


if __name__ == "__main__":
    main()
