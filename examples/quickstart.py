#!/usr/bin/env python3
"""Quickstart: find Streets of Interest and describe one with photos.

Runs the full pipeline of the paper on a small synthetic city:

1. generate a city (road network + keyword-tagged POIs + geotagged photos);
2. answer a k-SOI query (Problem 1) with the SOI algorithm;
3. summarise the top street with a spatio-textually diverse photo set
   (Problem 2) using ST_Rel+Div.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    DEFAULT_EPS,
    GreedyDescriber,
    SOIEngine,
    STRelDivDescriber,
    build_street_profile,
)
from repro.datagen import build_preset


def main() -> None:
    # A half-scale Vienna keeps this instant; swap in "london" or
    # scale=1.0 for the full benchmark datasets.
    city = build_preset("vienna", scale=0.5)
    print(f"city: {city.name}  segments={len(city.network.segments)}  "
          f"POIs={len(city.pois)}  photos={len(city.photos)}")

    # -- identify: top-5 shopping streets --------------------------------
    engine = SOIEngine(city.network, city.pois)
    results = engine.top_k(["shop"], k=5, eps=DEFAULT_EPS)
    print("\ntop-5 Streets of Interest for 'shop':")
    for rank, soi in enumerate(results, start=1):
        print(f"  {rank}. {soi.street_name:<22} interest={soi.interest:,.0f}")

    # -- describe: a 3-photo summary of the winner ------------------------
    top = results[0]
    profile = build_street_profile(city.network, top.street_id,
                                   city.photos, eps=DEFAULT_EPS)
    print(f"\n{top.street_name} has {len(profile)} associated photos; "
          f"selecting 3 (lambda=0.5, w=0.5):")
    summary = STRelDivDescriber(profile).select(k=3)
    for pos in summary:
        photo = profile.photos[pos]
        tags = ", ".join(sorted(photo.keywords)[:5])
        print(f"  photo {photo.id} at ({photo.x:.4f}, {photo.y:.4f}): "
              f"{tags}")

    # The naive greedy picks the same photos — the index only saves work.
    assert GreedyDescriber(profile).select(k=3) == summary
    print("\n(ST_Rel+Div matches the exhaustive greedy, as Section 4.2 "
          "promises.)")


if __name__ == "__main__":
    main()
