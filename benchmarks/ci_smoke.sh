#!/bin/sh
# CI smoke gate: lint, full test suite, then latency sweeps compared
# against the committed baselines at the repo root with loose
# tolerances (sized to absorb shared-runner noise while still tripping
# on the 2x+ regressions the gates exist for).  The benches warm the
# session caches before timing, quiesce the garbage collector around
# the timed repeats, and the comparator's built-in 5ms noise floor
# keeps millisecond leaves from flaking the gate.
#
# Run from anywhere:  sh benchmarks/ci_smoke.sh
#
# The bench step writes its fresh report into a throwaway directory so a
# smoke run can never clobber the committed baselines.

set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT INT TERM

# Full-tree lint: file-local rules on src/repro (including the REP-P4xx
# perf family — P404 guards against heapq.nlargest rescans creeping back
# into core/ loops) plus the cross-module REP-C6xx/F7xx/R8xx pass over
# tests/ and benchmarks/ too (resource-safety rules cover bench output
# handles there).
python -m repro lint src/repro tests benchmarks
python -m pytest -x -q
# The committed baselines are GC-quiesced medians of three, so a
# single-repeat sample flakes against them on scheduler jitter alone:
# gate on medians of three as well, at a tolerance sized for the
# regressions that matter (losing a session cache or an index fast
# path shows up as 2x+ on these leaves).
python -m repro bench --mode soi --repeats 3 \
    --check-against BENCH_soi.json --tolerance 0.75 \
    --out "$SCRATCH"
# Describe leaves are 10-30 ms medians, small enough that scheduler
# jitter alone reaches ~1.4x on a busy runner: take medians of three
# (the timed loops are milliseconds; city construction dominates the
# step either way) and loosen the tolerance — describer regressions
# worth gating on (losing the heap selection, re-sorting per k) are 2x+.
python -m repro bench --mode describe --repeats 3 \
    --check-against BENCH_describe.json --tolerance 0.75 \
    --out "$SCRATCH"
# Cold-path build gate: engine construction, eps-augmentation (fresh /
# filter / delta), store layout, snapshot export/attach.  Speedup and
# scalar-ablation keys in the baseline are informational; the comparator
# gates only the *_median_s leaves.  Unlike the query benches these
# timings are deliberately UNWARMED one-shots, so run-to-run variance on
# shared runners is large; the loose tolerance still trips on the
# regressions that matter (falling back to the scalar builders is a
# 4-15x slowdown on these phases).
python -m repro bench --mode build --repeats 1 \
    --check-against BENCH_build.json --tolerance 1.5 \
    --out "$SCRATCH"
# Distributed-tracing smoke: serve a mixed workload on a 2-worker pool
# with tracing on, and schema-check the stitched cross-process Chrome
# trace (every request span must resolve to a serve.request parent
# carrying worker id / queue-wait annotations).  Untimed: this gates the
# trace plumbing, not throughput.  The script goes through a real file
# (not stdin) because the spawn start method re-imports __main__ in the
# worker processes.
cat > "$SCRATCH/trace_smoke.py" <<'TRACE_SMOKE'
import json
import sys
from pathlib import Path

from repro.core.soi import SOIEngine
from repro.datagen import build_preset
from repro.obs.export import validate_serve_trace
from repro.obs.tracer import tracing_scope
from repro.serve import EngineServer
from repro.serve.workload import make_workload


def main() -> None:
    city = build_preset("vienna", scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    requests = make_workload(engine, city.photos, num_queries=8, seed=1)
    trace_path = Path(sys.argv[1]) / "serve_smoke.trace.json"
    with EngineServer.for_engine(engine, city.photos, workers=2) as server:
        with tracing_scope(True):
            server.run(requests)
        server.export_trace(trace_path)
    trace = json.loads(trace_path.read_text(encoding="utf-8"))
    roots = [e for e in trace["traceEvents"]
             if e["args"]["parent_id"] == -1]
    problems = validate_serve_trace(trace)
    if problems:
        raise SystemExit("stitched trace invalid:\n  "
                         + "\n  ".join(problems))
    if len(roots) != len(requests):
        raise SystemExit(f"expected {len(requests)} serve.request roots, "
                         f"got {len(roots)}")
    print(f"trace smoke: {len(roots)} stitched requests, "
          f"{len(trace['traceEvents']) - len(roots)} worker spans, "
          f"schema OK")


if __name__ == "__main__":
    main()
TRACE_SMOKE
python "$SCRATCH/trace_smoke.py" "$SCRATCH"
# Result-cache smoke: the same Zipf repeat-mix stream served by a
# 2-worker pool with the multi-level cache on and off must produce
# bit-identical payloads, and the cached run must actually hit (repeats
# answered from cache or coalesced onto an in-flight twin).  Untimed:
# the >=3x speedup acceptance lives in the committed BENCH_serve curves;
# this gates correctness of the reuse paths within the smoke budget.
cat > "$SCRATCH/cache_smoke.py" <<'CACHE_SMOKE'
from repro.core.soi import SOIEngine
from repro.datagen import build_preset
from repro.serve import EngineServer
from repro.serve.workload import make_zipf_workload


def main() -> None:
    city = build_preset("vienna", scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    requests = make_zipf_workload(engine, city.photos, num_queries=24,
                                  seed=2, pool_size=6)
    with EngineServer.for_engine(engine, city.photos, workers=2,
                                 micro_batch=4) as server:
        baseline = server.run(requests)
    with EngineServer.for_engine(engine, city.photos, workers=2,
                                 micro_batch=4, cache=True) as server:
        cached = server.run(requests)
        stats = server.cache_stats()
    if cached != baseline:
        raise SystemExit("cache smoke: cached payloads diverge from the "
                         "uncached run")
    reused = stats["hits"] + stats["coalesced_waiters"]
    if reused <= 0:
        raise SystemExit("cache smoke: Zipf repeats never hit the cache "
                         f"(stats: {stats})")
    print(f"cache smoke: {len(requests)} requests bit-identical, "
          f"{stats['hits']} hits + {stats['coalesced_waiters']} coalesced "
          f"({stats['hit_rate']:.0%} hit rate)")


if __name__ == "__main__":
    main()
CACHE_SMOKE
python "$SCRATCH/cache_smoke.py"

echo "ci_smoke: OK"
