#!/bin/sh
# CI smoke gate: lint, full test suite, then a one-repeat SOI latency
# sweep compared against the committed baseline with a loose tolerance
# (0.35 absorbs shared-runner noise; the committed BENCH_soi.json is the
# reference medians file at the repo root).  The bench warms the session
# caches before timing, and the comparator's built-in 5ms noise floor
# keeps single-sample millisecond leaves from flaking the gate.
#
# Run from anywhere:  sh benchmarks/ci_smoke.sh
#
# The bench step writes its fresh report into a throwaway directory so a
# smoke run can never clobber the committed baselines.

set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT INT TERM

# Full-tree lint: file-local rules on src/repro (including the REP-P4xx
# perf family — P404 guards against heapq.nlargest rescans creeping back
# into core/ loops) plus the cross-module REP-C6xx/F7xx/R8xx pass over
# tests/ and benchmarks/ too (resource-safety rules cover bench output
# handles there).
python -m repro lint src/repro tests benchmarks
python -m pytest -x -q
python -m repro bench --mode soi --repeats 1 \
    --check-against BENCH_soi.json --tolerance 0.35 \
    --out "$SCRATCH"
python -m repro bench --mode describe --repeats 1 \
    --check-against BENCH_describe.json --tolerance 0.35 \
    --out "$SCRATCH"

echo "ci_smoke: OK"
