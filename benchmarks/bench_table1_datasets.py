"""Table 1 — dataset statistics.

Paper: number of segments, min/max segment length (metres), number of
POIs for London / Berlin / Vienna.  Here the datasets are the synthetic
presets (DESIGN.md, "Data substitution"); lengths are reported both in
native degrees and in approximate metres (1 degree ~ 111 km) to ease
comparison with the paper's metre-denominated Table 1.

The timed quantity is full dataset generation (network + POIs + photos).
"""

from __future__ import annotations

from benchmarks.conftest import CITY_NAMES, emit
from repro.datagen.city import generate_city
from repro.datagen.presets import preset_spec
from repro.eval.experiments import dataset_stats
from repro.eval.reporting import format_table

DEGREE_METERS = 111_000.0


def test_table1_dataset_statistics(benchmark, all_cities):
    spec = preset_spec("vienna")
    benchmark.pedantic(generate_city, args=(spec,), rounds=1, iterations=1)

    rows = []
    for name in CITY_NAMES:
        stats = dataset_stats(all_cities[name])
        rows.append([
            name.capitalize(),
            stats["num_segments"],
            f"{stats['min_segment_length'] * DEGREE_METERS:.2f}",
            f"{stats['max_segment_length'] * DEGREE_METERS:.2f}",
            stats["num_pois"],
            len(all_cities[name].photos),
            len(all_cities[name].network.streets),
        ])
    emit("table1", format_table(
        ["Dataset", "Num of segm.", "Min segm. len (m)",
         "Max segm. len (m)", "Num of POIs", "Num of photos", "Streets"],
        rows,
        title="Table 1: datasets used in the evaluation (synthetic presets)"))
    assert rows[0][1] > rows[1][1] > rows[2][1]  # London > Berlin > Vienna
