"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  pytest-benchmark provides the timing
table; the *content* of each experiment (rankings, scores, series) is
printed and also written to ``benchmarks/results/<name>.txt`` so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` leaves a
full record either way.

The cities are the full London/Berlin/Vienna presets; building them and
their engines once per session dominates start-up, so everything is
session-scoped and cached.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datagen.presets import build_preset
from repro.eval.experiments import engine_for

RESULTS_DIR = Path(__file__).parent / "results"

CITY_NAMES = ("london", "berlin", "vienna")


@pytest.fixture(scope="session", params=CITY_NAMES)
def city(request):
    """One full preset city per parametrised benchmark."""
    return build_preset(request.param)


@pytest.fixture(scope="session")
def london():
    return build_preset("london")


@pytest.fixture(scope="session")
def berlin():
    return build_preset("berlin")


@pytest.fixture(scope="session")
def vienna():
    return build_preset("vienna")


@pytest.fixture(scope="session")
def all_cities(london, berlin, vienna):
    return {"london": london, "berlin": berlin, "vienna": vienna}


@pytest.fixture(scope="session")
def engine(city):
    eng = engine_for(city)
    eng.cell_maps.augmented_cell_counts(0.0005)  # warm the eps maps
    return eng


def emit(name: str, text: str) -> None:
    """Print an experiment report and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
