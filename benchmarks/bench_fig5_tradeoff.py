"""Figure 5 — the relevance/diversity trade-off of the photo summary.

Paper: for the top SOI of each city, sweep lambda over {0, .25, .5, .75, 1}
(w = 0.5, k = 20) and plot normalised relevance (reversed axis) against
normalised diversity.  Findings: diversity rises quickly for small
relevance sacrifices, with diminishing returns; lambda = 0.5 sits at the
knee, which justifies it as the default.
"""

from __future__ import annotations

from benchmarks.conftest import CITY_NAMES, emit
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.eval.experiments import top_soi_profile, tradeoff_curve
from repro.eval.reporting import format_table

LAMBDAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig5_relevance_diversity_tradeoff(benchmark, all_cities):
    profiles = {name: top_soi_profile(all_cities[name], "shop")
                for name in CITY_NAMES}
    describer = STRelDivDescriber(profiles["vienna"])
    benchmark.pedantic(lambda: describer.select(20, 0.5, 0.5),
                       rounds=2, iterations=1)

    rows = []
    curves = {}
    for name in CITY_NAMES:
        curve = tradeoff_curve(profiles[name], k=20, lambdas=LAMBDAS)
        curves[name] = curve
        for lam, rel, div in curve:
            rows.append([name, f"{lam:.2f}", f"{rel:.3f}", f"{div:.3f}"])
    emit("fig5", format_table(
        ["City", "lambda", "norm. relevance", "norm. diversity"], rows,
        title="Figure 5: relevance-diversity trade-off (w = 0.5, k = 20)"))

    for name, curve in curves.items():
        rels = [rel for _lam, rel, _div in curve]
        divs = [div for _lam, _rel, div in curve]
        # relevance falls (weakly) and diversity rises (weakly) with lambda
        assert rels[0] >= rels[-1] - 1e-9
        assert divs[-1] >= divs[0] - 1e-9
        # diminishing returns: lambda=0.5 already captures most of the
        # achievable diversity (the paper's knee argument)
        assert divs[2] >= 0.75 * divs[-1], name
