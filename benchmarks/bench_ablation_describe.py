"""Ablations on the describe stage.

* **rho sweep** — the neighbourhood radius of Definition 4 sets the photo
  grid's cell side (rho/2): smaller rho means more, tighter cells (better
  pruning, more bound bookkeeping);
* **weighted POI queries** — the Definition 1 extension, timed against
  unweighted mass on the SOI side (it shares this file for convenience
  since it is an extension ablation, not a paper figure).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.describe.profile import build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.eval.experiments import engine_for, top_soi_profile
from repro.eval.reporting import format_table
from repro.eval.timing import best_of

RHOS = (0.00005, 0.0001, 0.0002, 0.0004)


@pytest.mark.parametrize("rho", RHOS)
def test_ablation_rho(benchmark, london, rho):
    top = engine_for(london).top_k(["shop"], k=1, eps=0.0005)[0]
    profile = build_street_profile(london.network, top.street_id,
                                   london.photos, eps=0.0005, rho=rho)
    describer = STRelDivDescriber(profile)
    benchmark.pedantic(lambda: describer.select(20, 0.5, 0.5),
                       rounds=2, iterations=1, warmup_rounds=1)


def test_ablation_rho_summary(benchmark, london):
    top = engine_for(london).top_k(["shop"], k=1, eps=0.0005)[0]
    benchmark.pedantic(
        lambda: build_street_profile(london.network, top.street_id,
                                     london.photos, eps=0.0005),
        rounds=1, iterations=1)
    rows = []
    for rho in RHOS:
        profile = build_street_profile(london.network, top.street_id,
                                       london.photos, eps=0.0005, rho=rho)
        describer = STRelDivDescriber(profile)
        (_sel, stats), seconds = best_of(
            lambda d=describer: d.select_with_stats(20, 0.5, 0.5),
            repeats=2)
        rows.append([rho, describer.index.num_occupied_cells,
                     f"{seconds * 1000:.1f}", stats.photos_examined])
    emit("ablation_describe_rho", format_table(
        ["rho", "occupied cells", "time (ms)", "photos examined"], rows,
        title="ST_Rel+Div rho sweep (London top SOI, k=20)"))


def test_ablation_weighted_mass(benchmark, london):
    """The weighted-POI extension costs about the same as counting."""
    engine = engine_for(london)
    benchmark.pedantic(
        lambda: engine.top_k(["shop"], k=50, eps=0.0005, weighted=True),
        rounds=3, iterations=1, warmup_rounds=1)

    _res, unweighted = best_of(
        lambda: engine.top_k(["shop"], k=50, eps=0.0005), repeats=3)
    _res, weighted = best_of(
        lambda: engine.top_k(["shop"], k=50, eps=0.0005, weighted=True),
        repeats=3)
    emit("ablation_weighted", format_table(
        ["variant", "time (ms)"],
        [["unweighted", f"{unweighted * 1000:.1f}"],
         ["weighted", f"{weighted * 1000:.1f}"]],
        title="Weighted-POI mass extension (London, shop, k=50)"))
    assert weighted < 10 * unweighted
