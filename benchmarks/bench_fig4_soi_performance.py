"""Figure 4 — SOI vs BL query performance.

Paper, subplots (a)-(c): execution time varying k (default |Psi| = 3),
per city; subplots (d)-(f): varying |Psi| in 1..4 (default k = 50).
Findings to reproduce: k has only a small effect on either method; BL is
flat in |Psi| while SOI's time grows with |Psi| as more POIs become
relevant; SOI wins, with the factor shrinking as |Psi| grows (paper:
London 2.1-3.2x over the k sweep, 1.1-18x over the |Psi| sweep).

Each (method, parameter) point is a pytest-benchmark entry; the derived
series are printed as the figure data.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CITY_NAMES, emit
from repro.core.soi_baseline import BaselineSOI
from repro.eval.experiments import (
    PAPER_QUERY_KEYWORDS,
    engine_for,
    soi_timing_sweep_k,
    soi_timing_sweep_keywords,
)
from repro.eval.reporting import format_series

K_VALUES = (10, 25, 50, 100)
PSI_SIZES = (1, 2, 3, 4)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig4_soi_varying_k(benchmark, engine, k):
    keywords = PAPER_QUERY_KEYWORDS[:3]
    benchmark.pedantic(lambda: engine.top_k(keywords, k=k, eps=0.0005),
                       rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig4_bl_varying_k(benchmark, engine, k):
    keywords = PAPER_QUERY_KEYWORDS[:3]
    baseline = BaselineSOI(engine)
    benchmark.pedantic(lambda: baseline.top_k(keywords, k=k, eps=0.0005),
                       rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("size", PSI_SIZES)
def test_fig4_soi_varying_psi(benchmark, engine, size):
    keywords = PAPER_QUERY_KEYWORDS[:size]
    benchmark.pedantic(lambda: engine.top_k(keywords, k=50, eps=0.0005),
                       rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("size", PSI_SIZES)
def test_fig4_bl_varying_psi(benchmark, engine, size):
    keywords = PAPER_QUERY_KEYWORDS[:size]
    baseline = BaselineSOI(engine)
    benchmark.pedantic(lambda: baseline.top_k(keywords, k=50, eps=0.0005),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_fig4_series_summary(benchmark, all_cities):
    """The full figure data: one (soi, bl) series per subplot."""
    london_engine = engine_for(all_cities["london"])
    benchmark.pedantic(
        lambda: london_engine.top_k(PAPER_QUERY_KEYWORDS[:3], k=50),
        rounds=1, iterations=1)

    lines = []
    for name in CITY_NAMES:
        city = all_cities[name]
        by_k = soi_timing_sweep_k(city, ks=K_VALUES)
        lines.append(f"-- Figure 4 ({name}), varying k (|Psi|=3) --")
        lines.append(format_series(
            "SOI (s)", [k for k, _s, _b in by_k], [s for _k, s, _b in by_k]))
        lines.append(format_series(
            "BL  (s)", [k for k, _s, _b in by_k], [b for _k, _s, b in by_k]))
        by_psi = soi_timing_sweep_keywords(city, sizes=PSI_SIZES)
        lines.append(f"-- Figure 4 ({name}), varying |Psi| (k=50) --")
        lines.append(format_series(
            "SOI (s)", [p for p, _s, _b in by_psi],
            [s for _p, s, _b in by_psi]))
        lines.append(format_series(
            "BL  (s)", [p for p, _s, _b in by_psi],
            [b for _p, _s, b in by_psi]))
        # Who-wins shape: SOI at least ties BL at |Psi|=1 by a wide margin.
        psi1 = by_psi[0]
        assert psi1[2] / psi1[1] > 1.5, (
            f"{name}: SOI should clearly beat BL on selective queries")
    emit("fig4", "\n".join(lines))
