"""Table 2 / Figure 2 — effectiveness of SOI identification.

Paper: top-10 SOIs for "shop" in Berlin compared against two authoritative
Web lists of top shopping streets; recall@10 = 0.8 for both sources.

Here the ground truth is planted by the generator (the densest synthetic
shopping streets) and the two "sources" are noisy samples of it, as the
paper's tripadvisor/globalblue lists were of reality.  The timed quantity
is the k-SOI query itself.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.eval.experiments import engine_for, shopping_effectiveness
from repro.eval.reporting import format_table


def test_table2_shopping_streets_berlin(benchmark, berlin):
    engine = engine_for(berlin)
    engine.cell_maps.augmented_cell_counts(0.0005)
    benchmark.pedantic(
        lambda: engine.top_k(["shop"], k=10, eps=0.0005),
        rounds=3, iterations=1, warmup_rounds=1)

    report = shopping_effectiveness(berlin, "shop", k=10)
    width = max(len(report.ranked_street_names), 5)
    rows = []
    for rank in range(width):
        rows.append([
            rank + 1,
            report.ranked_street_names[rank]
            if rank < len(report.ranked_street_names) else "",
            report.source_names[0][rank]
            if rank < len(report.source_names[0]) else "",
            report.source_names[1][rank]
            if rank < len(report.source_names[1]) else "",
        ])
    table = format_table(
        ["Rank", "Top-10 SOIs", "Source #1", "Source #2"], rows,
        title='Table 2: identified top SOIs for "shop" in Berlin')
    recall_line = (
        f"recall@10 vs source #1: {report.recalls[0]:.2f}   "
        f"vs source #2: {report.recalls[1]:.2f}   (paper: 0.80 / 0.80)")
    emit("table2", table + "\n" + recall_line)
    # The paper reports 0.8; the planted ground truth should be recovered
    # at least that well.
    assert min(report.recalls) >= 0.6


def test_table2_recall_other_categories(benchmark, berlin):
    """Robustness beyond the paper: recall holds for other categories."""
    engine = engine_for(berlin)
    benchmark.pedantic(
        lambda: engine.top_k(["food"], k=10, eps=0.0005),
        rounds=3, iterations=1, warmup_rounds=1)
    lines = []
    recalls = []
    for category in ("food", "culture", "nightlife"):
        report = shopping_effectiveness(berlin, category, k=10)
        lines.append(f"{category:10s} recall@10: "
                     f"{report.recalls[0]:.2f} / {report.recalls[1]:.2f}")
        recalls.extend(report.recalls)
    emit("table2_other_categories", "\n".join(lines))
    # Sparse categories (culture has ~5x fewer POIs than food) are
    # noisier; require a solid average rather than a uniform floor.
    assert sum(recalls) / len(recalls) >= 0.35
