"""Table 3 — objective scores of the nine describe methods.

Paper: for the top SOI of each city, build a photo summary with each of
the nine methods (S/T/ST x Rel/Div/Rel+Div) and score it with the full
objective (Equation 2, lambda = w = 0.5), normalised to ST_Rel+Div.
ST_Rel+Div scores 1.0 everywhere and no other method dominates across
cities (paper: S_Rel+Div is runner-up for London, ST_Div for Berlin and
Vienna; pure-relevance methods score as low as 0.22).

The timed quantity is one full 9-method scoring pass on Vienna.
"""

from __future__ import annotations

from benchmarks.conftest import CITY_NAMES, emit
from repro.core.describe.variants import VARIANTS
from repro.eval.experiments import describe_scores, top_soi_profile
from repro.eval.reporting import format_table

SUMMARY_K = 3  # the paper's Figure 3 summaries use 3 photos


def test_table3_objective_scores(benchmark, all_cities):
    profiles = {name: top_soi_profile(all_cities[name], "shop")
                for name in CITY_NAMES}
    benchmark.pedantic(
        lambda: describe_scores(profiles["vienna"], k=SUMMARY_K),
        rounds=2, iterations=1)

    scores = {name: describe_scores(profiles[name], k=SUMMARY_K)
              for name in CITY_NAMES}
    rows = [[method] + [f"{scores[name][method]:.3f}"
                        for name in CITY_NAMES]
            for method in VARIANTS]
    emit("table3", format_table(
        ["Method", "London", "Berlin", "Vienna"], rows,
        title="Table 3: objective scores (Equation 2, normalised to "
              "ST_Rel+Div)"))

    for name in CITY_NAMES:
        # ST_Rel+Div is the anchor (1.0) and no method beats it by more
        # than greedy noise.
        assert scores[name]["ST_Rel+Div"] == 1.0
        for method, value in scores[name].items():
            assert value <= 1.25, (name, method, value)
