"""Figure 6 — ST_Rel+Div vs BL describe performance.

Paper, nine subplots: execution time varying k in {10..50} (a-c),
lambda (d-f) and w (g-i) over the three cities' top SOIs.  Findings to
reproduce: the cell bounds make ST_Rel+Div consistently faster than the
naive greedy BL (paper: 2-64x); both grow with k, ST_Rel+Div scaling
better; lambda and w barely move either method.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CITY_NAMES, emit
from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.eval.experiments import describe_timing, top_soi_profile
from repro.eval.reporting import format_series

K_VALUES = (10, 20, 30, 40, 50)
WEIGHTS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="session")
def profile(city):
    return top_soi_profile(city, "shop")


@pytest.mark.parametrize("k", K_VALUES)
def test_fig6_st_rel_div_varying_k(benchmark, profile, k):
    describer = STRelDivDescriber(profile)
    benchmark.pedantic(lambda: describer.select(k, 0.5, 0.5),
                       rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig6_bl_varying_k(benchmark, profile, k):
    describer = GreedyDescriber(profile)
    benchmark.pedantic(lambda: describer.select(k, 0.5, 0.5),
                       rounds=2, iterations=1)


@pytest.mark.parametrize("lam", WEIGHTS)
def test_fig6_st_rel_div_varying_lambda(benchmark, profile, lam):
    describer = STRelDivDescriber(profile)
    benchmark.pedantic(lambda: describer.select(20, lam, 0.5),
                       rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("w", WEIGHTS)
def test_fig6_st_rel_div_varying_w(benchmark, profile, w):
    describer = STRelDivDescriber(profile)
    benchmark.pedantic(lambda: describer.select(20, 0.5, w),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_fig6_series_summary(benchmark, all_cities):
    profiles = {name: top_soi_profile(all_cities[name], "shop")
                for name in CITY_NAMES}
    describer = STRelDivDescriber(profiles["vienna"])
    benchmark.pedantic(lambda: describer.select(20, 0.5, 0.5),
                       rounds=1, iterations=1)

    lines = []
    for name in CITY_NAMES:
        prof = profiles[name]
        lines.append(f"-- Figure 6 ({name}): |Rs| = {len(prof)} photos --")
        st_series, bl_series = [], []
        for k in K_VALUES:
            times = describe_timing(prof, k=k, repeats=2)
            st_series.append(times["st_rel_div"])
            bl_series.append(times["bl"])
        lines.append(format_series("ST_Rel+Div (s)", K_VALUES, st_series))
        lines.append(format_series("BL         (s)", K_VALUES, bl_series))
        # who wins: the bounds must pay off at the largest k
        assert bl_series[-1] > st_series[-1], (
            f"{name}: ST_Rel+Div should beat BL at k={K_VALUES[-1]}")
    emit("fig6", "\n".join(lines))
