"""Ablations on the SOI algorithm (beyond the paper's experiments).

DESIGN.md calls out three design choices worth isolating:

* **access strategy** — the paper's pseudocode round-robins SL1/SL2/SL3
  while its implementation alternates SL1/SL3 with adaptive SL2 access;
  correctness is strategy-independent, cost is not;
* **refinement pruning** — our optimistic-bound pruning of partial
  segments during refinement (the paper finalises everything seen);
* **grid cell size** — the paper says "arbitrary cell size"; this sweep
  shows the cost of choosing badly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.soi import AccessStrategy, SOIEngine
from repro.eval.experiments import PAPER_QUERY_KEYWORDS, engine_for
from repro.eval.reporting import format_table
from repro.eval.timing import best_of

KEYWORDS = PAPER_QUERY_KEYWORDS[:3]


@pytest.mark.parametrize("strategy", list(AccessStrategy))
def test_ablation_access_strategy(benchmark, london, strategy):
    engine = engine_for(london)
    engine.cell_maps.augmented_cell_counts(0.0005)
    benchmark.pedantic(
        lambda: engine.top_k(KEYWORDS, k=50, eps=0.0005, strategy=strategy),
        rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("prune", [True, False])
def test_ablation_refinement_pruning(benchmark, london, prune):
    engine = engine_for(london)
    benchmark.pedantic(
        lambda: engine.top_k(KEYWORDS, k=50, eps=0.0005,
                             prune_refinement=prune),
        rounds=3, iterations=1, warmup_rounds=1)


def test_ablation_summary(benchmark, london):
    engine = engine_for(london)
    benchmark.pedantic(lambda: engine.top_k(KEYWORDS, k=50), rounds=1,
                       iterations=1)

    rows = []
    reference = None
    for strategy in AccessStrategy:
        (_res, stats), seconds = best_of(
            lambda s=strategy: engine.top_k_with_stats(
                KEYWORDS, k=50, eps=0.0005, strategy=s), repeats=3)
        rows.append([f"strategy={strategy.value}", f"{seconds * 1000:.1f}",
                     stats.segments_seen, stats.cell_visits])
        if strategy is AccessStrategy.ALTERNATE:
            reference = {r.street_id for r in _res}
    for prune in (True, False):
        (_res, stats), seconds = best_of(
            lambda p=prune: engine.top_k_with_stats(
                KEYWORDS, k=50, eps=0.0005, prune_refinement=p), repeats=3)
        rows.append([f"prune_refinement={prune}", f"{seconds * 1000:.1f}",
                     stats.segments_seen, stats.cell_visits])
        assert {r.street_id for r in _res} == reference

    emit("ablation_soi", format_table(
        ["Variant", "time (ms)", "segments seen", "cell visits"], rows,
        title="SOI ablations (London, |Psi|=3, k=50)"))


def test_ablation_grid_cell_size(benchmark, london):
    """Cell-size sweep — rebuilds the engine per size, so rounds=1."""
    def build_and_query(cell_size: float):
        engine = SOIEngine(london.network, london.pois, cell_size=cell_size)
        return engine.top_k(["shop"], k=50, eps=0.0005)

    benchmark.pedantic(build_and_query, args=(0.001,), rounds=1,
                       iterations=1)

    rows = []
    expected = None
    for cell_size in (0.0005, 0.001, 0.002, 0.004):
        engine = SOIEngine(london.network, london.pois, cell_size=cell_size)
        results, seconds = best_of(
            lambda e=engine: e.top_k(["shop"], k=50, eps=0.0005), repeats=2)
        values = [round(r.interest, 6) for r in results]
        if expected is None:
            expected = values
        else:
            assert values == expected, "cell size must not change results"
        rows.append([cell_size, f"{seconds * 1000:.1f}"])
    emit("ablation_soi_cell_size", format_table(
        ["cell size (deg)", "query time (ms)"], rows,
        title="SOI grid cell-size sweep (London, shop, k=50)"))
