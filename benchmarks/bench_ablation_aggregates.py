"""Ablation: alternative street-interest aggregates.

Definition 3 uses the *maximum* segment interest; the paper notes other
definitions exist.  This bench ranks Berlin's shopping streets under each
aggregate (max / mean / length-weighted / total-density) and reports both
cost and how much the rankings diverge from Definition 3 — quantifying
how much the "simple definition" actually matters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.aggregates import StreetAggregate
from repro.core.soi_baseline import BaselineSOI
from repro.eval.experiments import engine_for
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table
from repro.eval.timing import best_of


@pytest.mark.parametrize("aggregate", list(StreetAggregate))
def test_ablation_aggregate(benchmark, berlin, aggregate):
    baseline = BaselineSOI(engine_for(berlin))
    benchmark.pedantic(
        lambda: baseline.top_k(["shop"], k=10, eps=0.0005,
                               aggregate=aggregate),
        rounds=3, iterations=1, warmup_rounds=1)


def test_ablation_aggregate_summary(benchmark, berlin):
    baseline = BaselineSOI(engine_for(berlin))
    benchmark.pedantic(
        lambda: baseline.top_k(["shop"], k=10, eps=0.0005),
        rounds=1, iterations=1)

    reference = [r.street_id for r in baseline.top_k(
        ["shop"], k=10, eps=0.0005, aggregate=StreetAggregate.MAX)]
    truth = berlin.ground_truth["shop"][:5]
    rows = []
    for aggregate in StreetAggregate:
        results, seconds = best_of(
            lambda a=aggregate: baseline.top_k(["shop"], k=10, eps=0.0005,
                                               aggregate=a), repeats=2)
        ranked = [r.street_id for r in results]
        overlap = len(set(ranked) & set(reference)) / 10
        recall = recall_at_k(ranked, truth, 10)
        rows.append([aggregate.value, f"{seconds * 1000:.1f}",
                     f"{overlap:.2f}", f"{recall:.2f}"])
    emit("ablation_aggregates", format_table(
        ["aggregate", "time (ms)", "top-10 overlap w/ MAX",
         "recall vs planted truth"], rows,
        title="Street-interest aggregate ablation (Berlin, shop, k=10)"))
