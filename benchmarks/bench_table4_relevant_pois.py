"""Table 4 — relevant POIs per cumulative keyword set.

Paper: the number of POIs matching the cumulative query sets
{religion} ⊂ {religion, education} ⊂ ... ⊂ {religion, education, food,
services}, per city — e.g. London grows 10,445 -> 202,127 (0.5% -> 9.6% of
all POIs).  The synthetic datasets reproduce the *shape*: counts grow
monotonically, religion is rare, food/services dominate, and even the
broadest set stays around a tenth of the POIs.

The timed quantity is the indexed relevant-count evaluation.
"""

from __future__ import annotations

from benchmarks.conftest import CITY_NAMES, emit
from repro.eval.experiments import (
    PAPER_QUERY_KEYWORDS,
    engine_for,
    relevant_poi_counts,
)
from repro.eval.reporting import format_table


def test_table4_relevant_poi_counts(benchmark, all_cities):
    london_engine = engine_for(all_cities["london"])
    benchmark.pedantic(
        lambda: london_engine.poi_index.total_relevant(PAPER_QUERY_KEYWORDS),
        rounds=3, iterations=1)

    rows = []
    for name in CITY_NAMES:
        counts = relevant_poi_counts(all_cities[name])
        total = len(all_cities[name].pois)
        rows.append([name.capitalize()]
                    + [f"{c} ({100 * c / total:.1f}%)" for c in counts])
    emit("table4", format_table(
        ["Dataset", "|Psi|=1", "|Psi|=2", "|Psi|=3", "|Psi|=4"], rows,
        title="Table 4: relevant POIs per cumulative keyword set "
              "(religion, education, food, services)"))

    for name in CITY_NAMES:
        counts = relevant_poi_counts(all_cities[name])
        assert counts == sorted(counts), "counts must grow with |Psi|"
        assert counts[0] > 0
        # even |Psi|=4 stays a small fraction, as in the paper (~10%)
        assert counts[-1] < 0.25 * len(all_cities[name].pois)
