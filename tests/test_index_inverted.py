"""Tests for :mod:`repro.index.inverted`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.index.inverted import CellInvertedIndex, GlobalInvertedIndex


def _cell_index() -> CellInvertedIndex:
    return CellInvertedIndex([
        (4, {"shop", "food"}),
        (1, {"shop"}),
        (9, {"bar"}),
        (2, set()),
    ])


class TestCellInvertedIndex:
    def test_postings_sorted_by_position(self):
        index = _cell_index()
        assert list(index.postings("shop")) == [1, 4]

    def test_count(self):
        index = _cell_index()
        assert index.count("shop") == 2
        assert index.count("bar") == 1
        assert index.count("zoo") == 0

    def test_num_items_counts_all(self):
        assert _cell_index().num_items == 4

    def test_keywords(self):
        assert _cell_index().keywords == frozenset({"shop", "food", "bar"})

    def test_matching_positions_single_keyword(self):
        assert list(_cell_index().matching_positions(["shop"])) == [1, 4]

    def test_matching_positions_union_deduplicates(self):
        # position 4 matches both keywords but must appear once
        out = list(_cell_index().matching_positions(["shop", "food"]))
        assert out == [1, 4]

    def test_matching_positions_unknown_keyword(self):
        assert list(_cell_index().matching_positions(["zoo"])) == []
        assert list(_cell_index().matching_positions([])) == []

    @given(st.lists(st.frozensets(
        st.sampled_from(["a", "b", "c"]), max_size=3), max_size=12),
        st.frozensets(st.sampled_from(["a", "b", "c"]), max_size=3))
    def test_matching_equals_bruteforce(self, keyword_sets, query):
        index = CellInvertedIndex(enumerate(keyword_sets))
        expected = sorted(pos for pos, kws in enumerate(keyword_sets)
                          if kws & query)
        assert list(index.matching_positions(query)) == expected


class TestGlobalInvertedIndex:
    def _global(self) -> GlobalInvertedIndex:
        return GlobalInvertedIndex({
            "shop": {(0, 0): 5, (1, 1): 9, (2, 2): 5},
            "food": {(1, 1): 2},
        })

    def test_entries_sorted_descending_with_coordinate_ties(self):
        entries = self._global().entries("shop")
        assert list(entries) == [((1, 1), 9), ((0, 0), 5), ((2, 2), 5)]

    def test_count(self):
        g = self._global()
        assert g.count("shop", (1, 1)) == 9
        assert g.count("shop", (9, 9)) == 0
        assert g.count("zoo", (0, 0)) == 0

    def test_cells_for_union(self):
        g = self._global()
        assert g.cells_for(["shop", "food"]) == {(0, 0), (1, 1), (2, 2)}
        assert g.cells_for(["food"]) == {(1, 1)}
        assert g.cells_for(["zoo"]) == set()

    def test_keywords(self):
        assert self._global().keywords == frozenset({"shop", "food"})

    def test_from_cells_aggregates(self):
        cells = {
            (0, 0): CellInvertedIndex([(0, {"shop"}), (1, {"shop", "food"})]),
            (5, 5): CellInvertedIndex([(2, {"food"})]),
        }
        g = GlobalInvertedIndex.from_cells(cells)
        assert g.count("shop", (0, 0)) == 2
        assert g.count("food", (0, 0)) == 1
        assert g.count("food", (5, 5)) == 1
        assert list(g.entries("food")) == [((0, 0), 1), ((5, 5), 1)]
