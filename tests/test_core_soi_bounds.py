"""White-box soundness tests for the SOI algorithm's bounds.

Lemma 1 justifies the termination test ``LBk >= UB``; these tests verify
the two bound computations *during* a run, not just the final answer:

* at every filtering step, ``UB`` must dominate the true interest of
  every still-unseen segment;
* at every filtering step, ``LBk`` must lower-bound the true interest of
  the k-th best street.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import soi as soi_module
from repro.core.interest import (
    segment_interest,
    segment_mass_bruteforce,
)
from repro.core.soi import AccessStrategy, SOIEngine

from tests.conftest import random_networks, random_pois


def _true_segment_interests(network, pois, keywords, eps):
    out = {}
    for segment in network.iter_segments():
        mass = segment_mass_bruteforce(segment, pois, keywords, eps)
        out[segment.id] = segment_interest(mass, segment.length, eps)
    return out


def _kth_street_interest(network, seg_interests, k):
    best: dict[int, float] = {}
    for sid, value in seg_interests.items():
        street_id = network.segment(sid).street_id
        best[street_id] = max(best.get(street_id, 0.0), value)
    values = sorted(best.values(), reverse=True)
    return values[k - 1] if len(values) >= k else 0.0


@given(network=random_networks(), pois=random_pois(min_size=3, max_size=20),
       strategy=st.sampled_from(list(AccessStrategy)))
@settings(max_examples=25)
def test_bounds_sound_at_every_step(network, pois, strategy):
    keywords = frozenset({"shop", "food"})
    eps = 0.001
    k = 3
    truth = _true_segment_interests(network, pois, keywords, eps)
    kth = _kth_street_interest(network, truth, k)

    engine = SOIEngine(network, pois, cell_size=0.0015)
    run = soi_module._SOIRun(engine, keywords, k, eps, strategy,
                             True, False)
    run._build_source_lists()

    cycle = strategy.cycle
    position = 0
    steps = 0
    while steps < 500:
        ub = run._compute_ub()
        run._lbk_dirty = True
        run.stats.iterations = 0  # force a real LBk recomputation
        lbk = run._compute_lbk()

        # UB dominates every unseen segment's true interest.
        for sid, value in truth.items():
            if sid not in run._states:
                assert value <= ub + 1e-9, (
                    f"unseen segment {sid} has interest {value} > UB {ub}")
        # LBk never exceeds the true k-th street interest.
        assert lbk <= kth + 1e-9

        if lbk >= ub:
            break
        accessed = False
        for offset in range(len(cycle)):
            name = cycle[(position + offset) % len(cycle)]
            if run._access(name):
                position = (position + offset + 1) % len(cycle)
                accessed = True
                break
        if not accessed:
            for name in ("SL1", "SL2", "SL3"):
                if run._access(name):
                    accessed = True
                    break
        if not accessed:
            break
        steps += 1


@given(network=random_networks(), pois=random_pois(min_size=1, max_size=20))
@settings(max_examples=25)
def test_partial_masses_never_exceed_truth(network, pois):
    """A partial segment's accumulated mass is a lower bound on its true
    mass (UpdateInterest only ever adds confirmed POIs)."""
    keywords = frozenset({"shop"})
    eps = 0.001
    engine = SOIEngine(network, pois, cell_size=0.0015)
    run = soi_module._SOIRun(engine, keywords, 2, eps,
                             AccessStrategy.ALTERNATE, True, False)
    run._build_source_lists()
    # run a few cell accesses only, leaving many segments partial
    for _ in range(3):
        if not run._access("SL1"):
            break
    for sid, state in run._states.items():
        segment = network.segment(sid)
        true_mass = segment_mass_bruteforce(segment, pois, keywords, eps)
        assert state.mass <= true_mass + 1e-9
        if state.final:
            assert state.mass == pytest.approx(true_mass)
