"""Tests for :mod:`repro.index.poi_grid`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.data.poi import POI, POISet
from repro.geometry.bbox import BBox
from repro.index.poi_grid import POIGridIndex

from tests.conftest import random_pois

EXTENT = BBox(0.0, 0.0, 1.0, 1.0)


def _index() -> POIGridIndex:
    pois = POISet([
        POI(0, 0.05, 0.05, frozenset({"shop"})),
        POI(1, 0.06, 0.04, frozenset({"shop", "food"})),
        POI(2, 0.95, 0.95, frozenset({"food"})),
        POI(3, 0.5, 0.5, frozenset()),
    ])
    return POIGridIndex(pois, EXTENT, cell_size=0.1)


class TestCellContents:
    def test_positions_grouped_by_cell(self):
        index = _index()
        assert index.cell_positions((0, 0)).tolist() == [0, 1]
        assert index.cell_positions((9, 9)).tolist() == [2]
        assert index.cell_positions((3, 3)).tolist() == []

    def test_cell_size_of(self):
        index = _index()
        assert index.cell_size_of((0, 0)) == 2
        assert index.cell_size_of((7, 7)) == 0

    def test_occupied_cells(self):
        # note: 0.5 // 0.1 == 4.0 in binary floating point, so the centre
        # POI lands in cell (4, 4) — grid addressing is defined by //.
        assert set(_index().occupied_cells()) == {(0, 0), (9, 9), (4, 4)}

    def test_cell_inverted_presence(self):
        index = _index()
        assert index.cell_inverted((0, 0)) is not None
        assert index.cell_inverted((1, 1)) is None


class TestQueries:
    def test_relevant_positions_in_cell(self):
        index = _index()
        assert index.relevant_positions_in_cell((0, 0), ["shop"]).tolist() \
            == [0, 1]
        assert index.relevant_positions_in_cell((0, 0), ["food"]).tolist() \
            == [1]
        assert index.relevant_positions_in_cell((5, 5), ["shop"]).tolist() \
            == []

    def test_relevant_count_upper_bound_single_keyword_exact(self):
        index = _index()
        assert index.relevant_count_upper_bound((0, 0), ["shop"]) == 2
        assert index.relevant_count_upper_bound((9, 9), ["shop"]) == 0

    def test_relevant_count_upper_bound_caps_at_cell_size(self):
        index = _index()
        # POI 1 matches both keywords: the sum 2 + 1 = 3 exceeds the true
        # relevant count (2) but is capped by |P_c| = 2.
        assert index.relevant_count_upper_bound((0, 0), ["shop", "food"]) == 2

    def test_candidate_cells(self):
        index = _index()
        assert index.candidate_cells(["shop"]) == {(0, 0)}
        assert index.candidate_cells(["food"]) == {(0, 0), (9, 9)}
        assert index.candidate_cells(["zoo"]) == set()

    def test_total_relevant(self):
        index = _index()
        assert index.total_relevant(["shop"]) == 2
        assert index.total_relevant(["shop", "food"]) == 3
        assert index.total_relevant(["zoo"]) == 0

    @given(random_pois(max_size=30))
    def test_total_relevant_matches_bruteforce(self, pois):
        index = POIGridIndex(pois, BBox(0, 0, 0.02, 0.02), cell_size=0.004)
        for query in (["shop"], ["shop", "bar"], ["zzz"]):
            assert index.total_relevant(query) == \
                len(pois.relevant_positions(query))

    @given(random_pois(max_size=30))
    def test_upper_bound_dominates_exact(self, pois):
        index = POIGridIndex(pois, BBox(0, 0, 0.02, 0.02), cell_size=0.004)
        query = frozenset({"shop", "food", "bar"})
        for cell in index.occupied_cells():
            exact = len(index.relevant_positions_in_cell(cell, query))
            assert index.relevant_count_upper_bound(cell, query) >= exact

    @given(random_pois(max_size=30))
    def test_every_poi_in_exactly_one_cell(self, pois):
        index = POIGridIndex(pois, BBox(0, 0, 0.02, 0.02), cell_size=0.004)
        seen = []
        for cell in index.occupied_cells():
            seen.extend(index.cell_positions(cell).tolist())
        assert sorted(seen) == list(range(len(pois)))
