"""Bit-identity of the performance layer against the plain paths.

The optimised paths — the batched mass kernel, session-served SOI queries
and the incremental greedy MMR evaluator — must produce results *bitwise*
equal to the scalar/uncached/naive implementations.  Every property here
asserts exact ``==`` on floats, over random Hypothesis cities, and the
whole module runs twice: once plain and once with the runtime invariant
contracts enabled (``REPRO_CHECK=1`` semantics).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import contracts
from repro.core.describe.greedy import GreedyDescriber, _validate
from repro.core.describe.measures import MMREvaluator, mmr_value
from repro.core.describe.profile import StreetProfile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.interest import (
    RelevantCellCache,
    segment_mass_batched,
    segment_mass_in_cell,
)
from repro.core.soi import SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.data.keywords import KeywordFrequencyVector
from repro.geometry.bbox import BBox

from tests.conftest import (
    KEYWORD_POOL,
    random_networks,
    random_photos,
    random_pois,
)

EPS = 0.0005


@pytest.fixture(params=[False, True], ids=["plain", "contracts"],
                autouse=True)
def _maybe_contracts(request):
    """Run every test in this module with contracts off and on."""
    previous = contracts.ENABLED
    if request.param:
        contracts.enable_contracts()
    try:
        yield
    finally:
        contracts.enable_contracts(previous)


queries = st.sets(st.sampled_from(KEYWORD_POOL), min_size=1, max_size=3)


# -- batched kernel ----------------------------------------------------------

@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries)
def test_batched_mass_equals_per_cell_sum(network, pois, keywords):
    engine = SOIEngine(network, pois)
    query = frozenset(keywords)
    for segment in network.iter_segments():
        cells = engine.cell_maps.cells_of_segment(segment.id, EPS)
        for weighted in (False, True):
            scalar_cache = RelevantCellCache(engine.poi_index, query)
            per_cell = sum(
                segment_mass_in_cell(segment, cell, scalar_cache, EPS,
                                     weighted)
                for cell in cells)
            batch_cache = RelevantCellCache(engine.poi_index, query)
            batched = segment_mass_batched(segment, cells, batch_cache,
                                           EPS, weighted)
            assert batched == per_cell


@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries)
def test_batched_mass_cache_stores_exact_values(network, pois, keywords):
    """Every memoised (segment, cell) mass equals a fresh per-cell value."""
    engine = SOIEngine(network, pois)
    query = frozenset(keywords)
    cache = RelevantCellCache(engine.poi_index, query)
    mass_cache: dict = {}
    segments = list(network.iter_segments())[:4]
    for segment in segments:
        cells = engine.cell_maps.cells_of_segment(segment.id, EPS)
        segment_mass_batched(segment, cells, cache, EPS,
                             mass_cache=mass_cache)
    fresh_cache = RelevantCellCache(engine.poi_index, query)
    for (segment_id, cell), value in mass_cache.items():
        segment = network.segment(segment_id)
        assert value == segment_mass_in_cell(segment, cell, fresh_cache,
                                             EPS, False)


# -- session-served SOI ------------------------------------------------------

@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries, k=st.integers(min_value=1, max_value=5))
def test_session_soi_identical_to_uncached(network, pois, keywords, k):
    engine = SOIEngine(network, pois)
    baseline = engine.top_k(keywords, k=k, eps=EPS, use_session=False)
    cold = engine.top_k(keywords, k=k, eps=EPS)
    warm = engine.top_k(keywords, k=k, eps=EPS)  # mass memo fully hot
    assert cold == baseline
    assert warm == baseline


@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries)
def test_session_sweep_identical_to_uncached(network, pois, keywords):
    """A k-sweep on one warm session matches per-query fresh runs."""
    engine = SOIEngine(network, pois)
    for k in (1, 3, 5):
        fresh = engine.top_k(keywords, k=k, eps=EPS, use_session=False)
        assert engine.top_k(keywords, k=k, eps=EPS) == fresh


@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries)
def test_session_baseline_identical_to_uncached(network, pois, keywords):
    engine = SOIEngine(network, pois)
    baseline = BaselineSOI(engine)
    fresh = baseline.all_segment_interests(keywords, eps=EPS,
                                           use_session=False)
    assert baseline.all_segment_interests(keywords, eps=EPS) == fresh
    # Warm rerun (mass memo populated) must also be exact.
    assert baseline.all_segment_interests(keywords, eps=EPS) == fresh


# -- incremental greedy MMR --------------------------------------------------

def _naive_greedy(profile: StreetProfile, k: int, lam: float,
                  w: float) -> list[int]:
    """The pre-optimisation reference: recompute mmr_value from scratch."""
    _validate(k, lam, w)
    n = len(profile)
    selected: list[int] = []
    remaining = set(range(n))
    while len(selected) < min(k, n):
        best_pos = -1
        best_value = -1.0
        for pos in sorted(remaining):
            value = mmr_value(profile, pos, selected, lam, w, k)
            if value > best_value:
                best_value = value
                best_pos = pos
        selected.append(best_pos)
        remaining.discard(best_pos)
    return selected


def _profile_of(photos) -> StreetProfile:
    extent = BBox(-0.001, -0.001, 0.021, 0.021)
    freq: dict[str, float] = {}
    for photo in photos:
        for keyword in photo.keywords:
            freq[keyword] = freq.get(keyword, 0.0) + 1.0
    return StreetProfile(photos=photos, phi=KeywordFrequencyVector(freq),
                         max_d=extent.diagonal, extent=extent)


@given(photos=random_photos(min_size=1),
       k=st.integers(min_value=1, max_value=6),
       lam=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
       w=st.sampled_from([0.0, 0.5, 1.0]))
def test_incremental_greedy_matches_naive(photos, k, lam, w):
    profile = _profile_of(photos)
    assert GreedyDescriber(profile).select(k, lam, w) == \
        _naive_greedy(profile, k, lam, w)


@given(photos=random_photos(min_size=1),
       pos_pairs=st.data())
def test_evaluator_matches_mmr_value_bitwise(photos, pos_pairs):
    profile = _profile_of(photos)
    n = len(profile)
    k, lam, w = 4, 0.5, 0.5
    evaluator = MMREvaluator(profile, lam, w, k)
    selected: list[int] = []
    order = pos_pairs.draw(st.permutations(range(n)))
    for pos in order[: min(3, n)]:
        for candidate in range(n):
            assert evaluator.value(candidate) == mmr_value(
                profile, candidate, selected, lam, w, k)
        selected.append(pos)
        evaluator.extend_selection(pos)


@settings(max_examples=20)
@given(photos=random_photos(min_size=2, max_size=20),
       k=st.integers(min_value=2, max_value=5))
def test_st_rel_div_still_matches_greedy(photos, k):
    """Both methods share the evaluator; summaries must stay identical."""
    profile = _profile_of(photos)
    greedy = GreedyDescriber(profile).select(k)
    st_sel = STRelDivDescriber(profile).select(k)
    assert st_sel == greedy


@given(photos=random_photos(min_size=2, max_size=15))
def test_interned_tag_sets_preserve_jaccard(photos):
    from repro.core.describe.measures import jaccard_distance, textual_div

    profile = _profile_of(photos)
    n = len(profile)
    for a in range(n):
        for b in range(n):
            assert textual_div(profile, a, b) == jaccard_distance(
                profile.keyword_sets[a], profile.keyword_sets[b])
