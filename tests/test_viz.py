"""Tests for :mod:`repro.viz.ascii_map`."""

from __future__ import annotations

import pytest

from repro.viz.ascii_map import render_ascii_map


class TestRenderAsciiMap:
    def test_dimensions(self, cross_network):
        out = render_ascii_map(cross_network, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_streets_drawn(self, cross_network):
        out = render_ascii_map(cross_network, width=40, height=10)
        assert "." in out

    def test_highlight_overdraws(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        out = render_ascii_map(cross_network, {"#": [main.id]},
                               width=40, height=10)
        assert "#" in out
        # the cross street remains plain
        assert "." in out

    def test_later_highlights_win(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        out1 = render_ascii_map(cross_network,
                                {"a": [main.id], "b": [main.id]},
                                width=40, height=10)
        assert "b" in out1 and "a" not in out1

    def test_invalid_marker(self, cross_network):
        with pytest.raises(ValueError):
            render_ascii_map(cross_network, {"##": [0]})

    def test_invalid_canvas(self, cross_network):
        with pytest.raises(ValueError):
            render_ascii_map(cross_network, width=1, height=5)

    def test_small_city_renders_every_row_used(self, small_city):
        out = render_ascii_map(small_city.network, width=60, height=20)
        lines = out.splitlines()
        assert sum(1 for line in lines if line.strip()) >= 18
