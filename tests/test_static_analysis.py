"""The lint gate and unit tests for the custom AST rules.

``test_repo_is_lint_clean`` is the tier-1 gate: it runs the full linter
over ``src/repro`` in-process with the committed configuration and
baseline, and fails on any non-baselined finding.  The remaining tests
exercise each rule against crafted sources through :func:`lint_source`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.cli
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import LintConfig
from repro.analysis.engine import LintResult, lint_paths, lint_source
from repro.analysis.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

CONFIG = LintConfig.discover(REPO_ROOT)


def rules_of(findings):
    return [f.rule for f in findings]


# -- the gate -----------------------------------------------------------------

def test_repo_is_lint_clean():
    result = lint_paths([SRC], config=CONFIG)
    details = "\n".join(f.format_text() for f in result.findings)
    assert result.clean, f"lint findings in src/repro:\n{details}"
    assert result.files_checked > 50


def test_full_tree_is_lint_clean_with_cross_module_pass():
    """src + tests + benchmarks, interprocedural rules on — zero findings."""
    result = lint_paths(
        [SRC, REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        config=CONFIG, cross_module=True)
    details = "\n".join(f.format_text() for f in result.findings)
    assert result.clean, f"lint findings in full tree:\n{details}"
    # Zero C6/F7/R8 findings may be absorbed by the baseline either.
    assert result.baselined == 0
    assert result.files_checked > 100


def test_committed_baseline_is_empty():
    baseline = load_baseline(CONFIG.baseline_path())
    assert sum(baseline.values()) == 0


# -- determinism rules --------------------------------------------------------

def test_d101_flags_unseeded_default_rng():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-D101"]


def test_d101_accepts_seeded_and_datagen():
    seeded = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert lint_source(seeded, relpath="repro/core/x.py",
                       config=CONFIG) == []
    unseeded = "import numpy as np\nrng = np.random.default_rng()\n"
    assert lint_source(unseeded, relpath="repro/datagen/x.py",
                       config=CONFIG) == []


def test_d101_flags_legacy_global_and_stdlib_random():
    src = ("import random\nimport numpy as np\n"
           "a = np.random.rand(3)\n"
           "b = random.random()\n")
    findings = lint_source(src, relpath="repro/eval/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-D101", "REP-D101"]


def test_d102_flags_set_into_ordered_sinks():
    src = ("def f(xs):\n"
           "    out = []\n"
           "    for x in set(xs):\n"
           "        out.append(x)\n"
           "    ys = [y for y in {1, 2, 3}]\n"
           "    zs = list(frozenset(xs))\n"
           "    return out, ys, zs\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-D102"] * 3


def test_d102_accepts_sorted_sets_and_membership():
    src = ("def f(xs):\n"
           "    ordered = sorted(set(xs))\n"
           "    total = sum(1 for x in xs if x in {1, 2})\n"
           "    return ordered, total\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_d103_wall_clock_only_in_checked_dirs():
    src = "import time\nstamp = time.time()\n"
    # In core/ a wall-clock read breaks determinism (D103) *and* bypasses
    # the repro.obs clock funnel (O501) — both rules report it.
    assert rules_of(lint_source(src, relpath="repro/core/x.py",
                                config=CONFIG)) == ["REP-D103", "REP-O501"]
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []
    timer = "import time\nt0 = time.perf_counter()\n"
    assert rules_of(lint_source(timer, relpath="repro/index/x.py",
                                config=CONFIG)) == []  # D103 allows timers
    assert rules_of(lint_source(timer, relpath="repro/core/x.py",
                                config=CONFIG)) == ["REP-O501"]


# -- numeric rules ------------------------------------------------------------

def test_n201_flags_float_equality_both_sides():
    src = ("def f(x):\n"
           "    if x == 0.5:\n"
           "        return 1\n"
           "    return -1.0 != x\n")
    findings = lint_source(src, relpath="repro/eval/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-N201", "REP-N201"]


def test_n201_accepts_int_equality_and_inequalities():
    src = ("def f(x, n):\n"
           "    if n == 0:\n"
           "        return 0\n"
           "    if x <= 0.0:\n"
           "        return 1\n"
           "    return x\n")
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []


def test_n202_flags_unguarded_division_in_checked_dirs():
    src = "def f(a, b):\n    return a / b\n"
    assert rules_of(lint_source(src, relpath="repro/core/x.py",
                                config=CONFIG)) == ["REP-N202"]
    # Same code outside core/geometry is not checked.
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []


def test_n202_accepts_guards_literals_and_allowlist():
    src = ("def guarded(a, b):\n"
           "    if b <= 0:\n"
           "        return 0.0\n"
           "    return a / b\n"
           "def halved(a):\n"
           "    return a / 2.0\n"
           "def density(mass, length, eps):\n"
           "    return mass / buffer_area(length, eps)\n"
           "def ternary(a, b):\n"
           "    return a / b if b else 0.0\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_n203_math_domain():
    src = ("import math\n"
           "def f(x, t):\n"
           "    return math.sqrt(x) + math.acos(t)\n")
    findings = lint_source(src, relpath="repro/geometry/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-N203", "REP-N203"]
    safe = ("import math\n"
            "def f(dx, dy, t):\n"
            "    a = math.sqrt(dx * dx + dy * dy)\n"
            "    b = math.sqrt(max(0.0, t))\n"
            "    c = math.acos(min(1.0, max(-1.0, t)))\n"
            "    return a + b + c\n")
    assert lint_source(safe, relpath="repro/geometry/x.py",
                       config=CONFIG) == []


# -- hygiene rules ------------------------------------------------------------

def test_h301_mutable_default():
    src = "def f(items=[], table={}):\n    return items, table\n"
    findings = lint_source(src, relpath="repro/eval/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-H301", "REP-H301"]
    ok = "def f(items=None):\n    return list(items or [])\n"
    assert lint_source(ok, relpath="repro/eval/x.py", config=CONFIG) == []


def test_h302_broad_except():
    src = ("def f():\n"
           "    try:\n"
           "        work()\n"
           "    except:\n"
           "        pass\n"
           "    try:\n"
           "        work()\n"
           "    except Exception:\n"
           "        return None\n")
    findings = lint_source(src, relpath="repro/eval/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-H302", "REP-H302"]


def test_h302_accepts_narrow_and_reraising_handlers():
    src = ("def f():\n"
           "    try:\n"
           "        work()\n"
           "    except ValueError:\n"
           "        return None\n"
           "    try:\n"
           "        work()\n"
           "    except Exception as exc:\n"
           "        raise RuntimeError('context') from exc\n")
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []


def test_h303_all_drift_both_directions():
    src = ("from repro.core.soi import SOIEngine\n"
           "__all__ = ['Ghost']\n")
    findings = lint_source(src, relpath="repro/sub/__init__.py",
                           config=CONFIG)
    messages = sorted(f.message for f in findings)
    assert rules_of(findings) == ["REP-H303", "REP-H303"]
    assert "never binds" in messages[0]          # Ghost is exported, unbound
    assert "missing from __all__" in messages[1]  # SOIEngine re-export


def test_h303_exempts_future_and_used_imports():
    src = ("from __future__ import annotations\n"
           "from pathlib import Path\n"
           "def resolve(p) -> Path:\n"
           "    return Path(p)\n"
           "__all__ = ['resolve']\n")
    assert lint_source(src, relpath="repro/sub/__init__.py",
                       config=CONFIG) == []


def test_h303_only_applies_to_package_inits():
    src = "from repro.core.soi import SOIEngine\n__all__ = ['Ghost']\n"
    assert lint_source(src, relpath="repro/sub/module.py",
                       config=CONFIG) == []


def test_h304_deprecated_name():
    src = ("from repro.errors import IndexError_\n"
           "def f(exc):\n"
           "    return isinstance(exc, IndexError_)\n")
    findings = lint_source(src, relpath="repro/eval/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-H304", "REP-H304"]
    ok = ("from repro.errors import GridIndexError\n"
          "def f(exc):\n"
          "    return isinstance(exc, GridIndexError)\n")
    assert lint_source(ok, relpath="repro/eval/x.py", config=CONFIG) == []


# -- performance rules --------------------------------------------------------

def test_p401_flags_sorted_in_loop_body():
    src = ("def f(items, groups):\n"
           "    out = []\n"
           "    for group in groups:\n"
           "        for x in sorted(items):\n"
           "            out.append((group, x))\n"
           "    return out\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-P401"]
    assert "loop at line 3" in findings[0].message


def test_p401_accepts_loop_header_and_hoisted_sorts():
    src = ("def f(items, groups):\n"
           "    ordered = sorted(items)\n"
           "    for x in sorted(groups):\n"
           "        use(x, ordered)\n"
           "    while sorted(items) != items:\n"
           "        items = step(items)\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_p401_stops_at_function_boundaries():
    src = ("def f(groups):\n"
           "    for group in groups:\n"
           "        def key(item):\n"
           "            return sorted(item.tags)\n"
           "        use(group, key)\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_p401_only_in_perf_checked_dirs():
    src = ("def f(items, groups):\n"
           "    for group in groups:\n"
           "        use(sorted(items))\n")
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []


def test_p402_flags_list_membership_in_loop():
    src = ("def f(items):\n"
           "    wanted = [1, 2, 3]\n"
           "    for x in items:\n"
           "        if x in wanted:\n"
           "            use(x)\n"
           "        if x not in list(items):\n"
           "            use(x)\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-P402", "REP-P402"]


def test_p402_accepts_sets_dicts_and_untraceable_names():
    src = ("def f(items, wanted):\n"
           "    seen = {1, 2, 3}\n"
           "    for x in items:\n"
           "        if x in seen:\n"
           "            use(x)\n"
           "        if x in wanted:\n"  # parameter: untraceable, silent
           "            use(x)\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_p402_conservative_on_reassigned_names():
    src = ("def f(items):\n"
           "    wanted = [1, 2]\n"
           "    wanted = frozenset(wanted)\n"
           "    for x in items:\n"
           "        if x in wanted:\n"
           "            use(x)\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_p402_membership_outside_loop_is_fine():
    src = ("def f(x):\n"
           "    wanted = [1, 2, 3]\n"
           "    return x in wanted\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_p404_flags_nlargest_in_loop_body():
    src = ("import heapq\n"
           "def lbk(groups, k):\n"
           "    for values in groups:\n"
           "        top = heapq.nlargest(k, values)\n"
           "        use(top)\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-P404"]
    assert "loop at line 3" in findings[0].message


def test_p404_flags_from_import_alias_and_nsmallest():
    src = ("from heapq import nlargest, nsmallest as smallest\n"
           "def f(groups, k):\n"
           "    out = []\n"
           "    for values in groups:\n"
           "        out.append(nlargest(k, values))\n"
           "        out.append(smallest(k, values))\n"
           "    return out\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-P404", "REP-P404"]


def test_p404_accepts_hoisted_calls_and_incremental_heaps():
    src = ("import heapq\n"
           "def f(values, items, k):\n"
           "    top = heapq.nlargest(k, values)\n"  # once, outside any loop
           "    heap = []\n"
           "    for x in items:\n"
           "        heapq.heappush(heap, x)\n"  # incremental: the fix
           "        if len(heap) > k:\n"
           "            heapq.heappop(heap)\n"
           "    return top, heap\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_p404_stops_at_function_boundaries_and_checked_dirs():
    nested = ("import heapq\n"
              "def f(groups, k):\n"
              "    for group in groups:\n"
              "        def summarise(values):\n"
              "            return heapq.nlargest(k, values)\n"
              "        use(group, summarise)\n")
    assert lint_source(nested, relpath="repro/core/x.py", config=CONFIG) == []
    unchecked = ("import heapq\n"
                 "def f(groups, k):\n"
                 "    for values in groups:\n"
                 "        use(heapq.nlargest(k, values))\n")
    assert lint_source(unchecked, relpath="repro/eval/x.py",
                       config=CONFIG) == []


def test_p405_flags_scalar_kernel_in_loop_body():
    # Planted bug: the pre-vectorisation rasterisation loop, one scalar
    # exact-distance call per candidate cell.
    src = ("from repro.geometry.distance import segment_bbox_mindist\n"
           "def confirm(segments, boxes, eps):\n"
           "    hits = []\n"
           "    for seg, box in zip(segments, boxes):\n"
           "        if segment_bbox_mindist(*seg, box) <= eps:\n"
           "            hits.append(seg)\n"
           "    return hits\n")
    findings = lint_source(src, relpath="repro/index/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-P405"]
    assert "segment_bbox_mindist" in findings[0].message
    assert "loop at line 4" in findings[0].message
    assert "segments_bbox_mindist_batched" in findings[0].hint


def test_p405_flags_aliases_and_listed_files():
    # Alias-aware like REP-P404, and core/state_store.py is opted in by
    # file (geometry-checked-files) even though core/ is not a checked dir.
    src = ("import repro.geometry.distance as gdist\n"
           "from repro.geometry.distance import point_segment_distance as psd\n"
           "def walk(pois, segs):\n"
           "    for p in pois:\n"
           "        for s in segs:\n"
           "            use(psd(p.x, p.y, *s))\n"
           "            use(gdist.segment_segment_distance(*s, *s))\n")
    findings = lint_source(src, relpath="repro/core/state_store.py",
                           config=CONFIG)
    assert rules_of(findings) == ["REP-P405", "REP-P405"]


def test_p405_fixed_batched_twin_is_silent():
    # The fix: one batched kernel call over the packed candidate arrays.
    src = ("from repro.geometry.distance import (\n"
           "    segment_bbox_mindist,\n"
           "    segments_bbox_mindist_batched,\n"
           ")\n"
           "def confirm(ax, ay, bx, by, boxes, eps):\n"
           "    dist = segments_bbox_mindist_batched(ax, ay, bx, by, boxes)\n"
           "    anchor = segment_bbox_mindist(\n"  # once, outside any loop
           "        ax[0], ay[0], bx[0], by[0], boxes[0])\n"
           "    return (dist <= eps), anchor\n")
    assert lint_source(src, relpath="repro/index/x.py", config=CONFIG) == []


def test_p405_unchecked_dirs_and_suppression():
    src = ("from repro.geometry.distance import point_segment_distance\n"
           "def f(pois, seg):\n"
           "    for p in pois:\n"
           "        use(point_segment_distance(p.x, p.y, *seg))\n")
    # Outside geometry-checked-dirs/files the scalar loop is fine (eval
    # code paths are not the vectorised cold path).
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []
    suppressed = (
        "from repro.geometry.distance import point_segment_distance\n"
        "def f(pois, seg):\n"
        "    for p in pois:\n"
        "        use(point_segment_distance(p.x, p.y, *seg))  "
        "# repro-lint: disable=REP-P405 (scalar reference for REPRO_CHECK)\n")
    assert lint_source(suppressed, relpath="repro/index/x.py",
                       config=CONFIG) == []


def test_p403_flags_module_level_empty_containers():
    src = ("from collections import OrderedDict, defaultdict\n"
           "_SL2_CACHE = {}\n"
           "_RESULTS: list = []\n"
           "_SEEN = set()\n"
           "_BY_CELL = defaultdict(list)\n"
           "_LRU = OrderedDict()\n")
    findings = lint_source(src, relpath="repro/serve/x.py", config=CONFIG)
    assert rules_of(findings).count("REP-P403") == 5
    # _SL2_CACHE and _LRU are additionally cache-named with no eviction
    # bound, so the unbounded-cache rule stacks on top.
    assert rules_of(findings).count("REP-P406") == 2
    assert "_SL2_CACHE" in findings[0].message


def test_p403_flags_module_level_lru_cache():
    src = ("import functools\n"
           "from functools import cache\n"
           "@functools.lru_cache(maxsize=64)\n"
           "def profile(street_id):\n"
           "    return street_id\n"
           "@cache\n"
           "def vocab():\n"
           "    return ()\n")
    findings = lint_source(src, relpath="repro/index/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-P403", "REP-P403"]


def test_p403_accepts_constants_locals_and_class_state():
    src = ("TABLE = {'a': 1}\n"  # populated: a constant table, not a cache
           "NAMES = ['x', 'y']\n"
           "__all__ = []\n"  # dunder metadata, not runtime state
           "def f():\n"
           "    local_cache = {}\n"  # per-call: no cross-process hazard
           "    return local_cache\n"
           "class Engine:\n"
           "    def __init__(self):\n"
           "        self._cache = {}\n"  # instance state: the fix P403 asks for
           "    def _trim(self):\n"
           "        self._cache.popitem()\n")  # ...bounded, so P406 is quiet too
    assert lint_source(src, relpath="repro/serve/x.py", config=CONFIG) == []


def test_p403_only_in_serve_checked_dirs():
    src = "_ENGINES = {}\n"
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []
    assert rules_of(lint_source(src, relpath="repro/perf/x.py",
                                config=CONFIG)) == ["REP-P403"]


def test_p406_flags_unbounded_cache_named_containers():
    # Planted bug, both levels: a module-level memo and (alias-aware) an
    # instance OrderedDict, cache-named, read but never evicted.
    src = ("from collections import OrderedDict as OD\n"
           "_RESULT_MEMO = {}\n"
           "class Server:\n"
           "    def __init__(self):\n"
           "        self._lru = OD()\n"
           "    def get(self, key):\n"
           "        if key not in self._lru:\n"
           "            self._lru[key] = compute(key)\n"
           "        return self._lru[key]\n")
    findings = lint_source(src, relpath="repro/perf/x.py", config=CONFIG)
    flagged = [f.message for f in findings if f.rule == "REP-P406"]
    assert len(flagged) == 2
    assert any("_RESULT_MEMO" in message for message in flagged)
    assert any("self._lru" in message and "Server" in message
               for message in flagged)


def test_p406_accepts_caches_with_an_eviction_bound():
    # Fixed twin: the same shapes, each with one eviction idiom — LRU
    # popitem, a len() guard refusing inserts, and del on overflow.
    src = ("class Server:\n"
           "    def __init__(self):\n"
           "        self._cache = {}\n"
           "        self._memo = {}\n"
           "        self._lru_keys = {}\n"
           "    def put(self, key, value):\n"
           "        if len(self._memo) >= 64:\n"
           "            return\n"
           "        self._memo[key] = value\n"
           "    def insert(self, key, value, oldest):\n"
           "        self._cache[key] = value\n"
           "        del self._lru_keys[oldest]\n"
           "    def trim(self):\n"
           "        self._cache.popitem()\n")
    assert lint_source(src, relpath="repro/serve/x.py", config=CONFIG) == []
    # Non-cache-named instance state never triggers the rule.
    plain = ("class Server:\n"
             "    def __init__(self):\n"
             "        self._pending = {}\n")
    assert lint_source(plain, relpath="repro/serve/x.py", config=CONFIG) == []


def test_p406_only_in_cache_checked_dirs():
    src = ("class Engine:\n"
           "    def __init__(self):\n"
           "        self._interest_memo = {}\n")
    # core/ holds engine-lifetime state invalidated with the engine; only
    # the serve path's long-lived processes are in cache-checked-dirs.
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []
    assert rules_of(lint_source(src, relpath="repro/serve/x.py",
                                config=CONFIG)) == ["REP-P406"]
    assert rules_of(lint_source(src, relpath="repro/perf/x.py",
                                config=CONFIG)) == ["REP-P406"]


def test_p406_suppression_requires_a_reason():
    suppressed = (
        "_KIND_CACHE = {}  "
        "# repro-lint: disable=REP-P403,REP-P406 (keys = 3 request kinds)\n")
    assert lint_source(suppressed, relpath="repro/serve/x.py",
                       config=CONFIG) == []
    bare = ("_KIND_CACHE = {}  "
            "# repro-lint: disable=REP-P403,REP-P406\n")
    findings = lint_source(bare, relpath="repro/serve/x.py", config=CONFIG)
    # Reason-less suppressions are inert and themselves flagged.
    assert "REP-S001" in rules_of(findings)
    assert "REP-P406" in rules_of(findings)


# -- observability rules ------------------------------------------------------

def test_o501_flags_direct_timer_calls_in_checked_dirs():
    src = ("import time\n"
           "from time import perf_counter\n"
           "def f():\n"
           "    a = time.perf_counter()\n"
           "    b = perf_counter()\n"
           "    c = time.monotonic_ns()\n"
           "    return a, b, c\n")
    findings = lint_source(src, relpath="repro/serve/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-O501"] * 3


def test_o501_accepts_obs_clocks_and_unchecked_dirs():
    sanctioned = ("from repro.obs.tracer import perf_now\n"
                  "def f():\n"
                  "    return perf_now()\n")
    assert lint_source(sanctioned, relpath="repro/core/x.py",
                       config=CONFIG) == []
    # perf/ may keep its own timers: only core/ and serve/ are funnelled.
    direct = "import time\ns = time.perf_counter()\n"
    assert lint_source(direct, relpath="repro/perf/x.py",
                       config=CONFIG) == []
    assert lint_source(direct, relpath="repro/obs/tracer.py",
                       config=CONFIG) == []


def test_o502_flags_hand_rolled_counter_dicts():
    src = ("def f(keys):\n"
           "    counts = {}\n"
           "    for key in keys:\n"
           "        counts[key] = counts.get(key, 0) + 1\n"
           "    return counts\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-O502"]
    aug = ("def f(counts, key):\n"
           "    counts[key] += 1\n")
    findings = lint_source(aug, relpath="repro/serve/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-O502"]


def test_o502_accepts_non_counter_subscript_writes():
    src = ("def f(out, values, pos, key):\n"
           "    out[pos] = values[pos] + values[key]\n"  # not a .get default
           "    out[pos] += values[key]\n"               # not a constant bump
           "    out[key] = out.get(key, []) + [1]\n"     # list accumulation
           "    return out\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []
    # The same counter idioms are fine outside the funnelled packages.
    counter = "def f(c, k):\n    c[k] += 1\n"
    assert lint_source(counter, relpath="repro/eval/x.py",
                       config=CONFIG) == []


def test_o502_suppression_with_reason_is_honoured():
    src = ("def f(freq, k):\n"
           "    freq[k] += 1  # repro-lint: disable=REP-O502 (state)\n")
    assert lint_source(src, relpath="repro/core/x.py", config=CONFIG) == []


def test_o503_flags_unregistered_span_name():
    # Planted bug: a typo'd span name ("soi.fliter") would silently vanish
    # from every profile that filters by the registered name.
    src = ("from repro.obs.tracer import trace_span\n"
           "def f():\n"
           "    with trace_span('soi.fliter'):\n"
           "        pass\n")
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-O503"]
    assert "soi.fliter" in findings[0].message
    # Dynamic names are unbounded cardinality — also flagged.
    dynamic = ("from repro.obs.tracer import trace_span\n"
               "def f(name):\n"
               "    with trace_span('soi.' + name):\n"
               "        pass\n")
    findings = lint_source(dynamic, relpath="repro/serve/x.py", config=CONFIG)
    assert rules_of(findings) == ["REP-O503"]


def test_o503_fixed_silent_twin():
    # The fixed twin — a registered literal name — is silent, in every
    # checked dir and through either import path.
    for relpath in ("repro/core/x.py", "repro/serve/x.py", "repro/index/x.py"):
        src = ("from repro.obs.tracer import trace_span\n"
               "def f():\n"
               "    with trace_span('soi.filter', k=3):\n"
               "        pass\n")
        assert lint_source(src, relpath=relpath, config=CONFIG) == []
    via_package = ("from repro.obs import trace_span\n"
                   "def f():\n"
                   "    with trace_span('serve.request'):\n"
                   "        pass\n")
    assert lint_source(via_package, relpath="repro/serve/x.py",
                       config=CONFIG) == []
    # Outside the span-checked dirs the rule does not apply (eval/ may
    # trace ad-hoc), and decorator usage is checked like the CM form.
    unchecked = ("from repro.obs.tracer import trace_span\n"
                 "def f():\n"
                 "    with trace_span('anything.goes'):\n"
                 "        pass\n")
    assert lint_source(unchecked, relpath="repro/eval/x.py",
                       config=CONFIG) == []
    decorator = ("from repro.obs.tracer import trace_span\n"
                 "@trace_span('not.registered')\n"
                 "def f():\n"
                 "    pass\n")
    findings = lint_source(decorator, relpath="repro/index/x.py",
                           config=CONFIG)
    assert rules_of(findings) == ["REP-O503"]


# -- suppressions, parse errors, baseline -------------------------------------

def test_suppression_with_reason_silences_finding():
    src = ("def f(x):\n"
           "    if x == 0.5:  # repro-lint: disable=REP-N201 (exact "
           "sentinel: test)\n"
           "        return 1\n"
           "    return 0\n")
    assert lint_source(src, relpath="repro/eval/x.py", config=CONFIG) == []


def test_suppression_without_reason_is_inactive_and_flagged():
    src = ("def f(x):\n"
           "    if x == 0.5:  # repro-lint: disable=REP-N201\n"
           "        return 1\n"
           "    return 0\n")
    findings = lint_source(src, relpath="repro/eval/x.py", config=CONFIG)
    assert sorted(rules_of(findings)) == ["REP-N201", "REP-S001"]


def test_parse_error_yields_single_e000():
    findings = lint_source("def broken(:\n", relpath="repro/eval/x.py",
                           config=CONFIG)
    assert rules_of(findings) == ["REP-E000"]


def test_baseline_round_trip(tmp_path):
    src = "def f(a, b):\n    return a / b\n"
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    assert len(findings) == 1
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    kept, matched = apply_baseline(findings, baseline)
    assert kept == [] and matched == 1
    # A different finding is not absorbed by the stale entry.
    other = lint_source("def g(a, c):\n    return a / c\n",
                        relpath="repro/core/x.py", config=CONFIG)
    kept, matched = apply_baseline(other, baseline)
    assert len(kept) == 1 and matched == 0


# -- reporters and CLI --------------------------------------------------------

def test_reporters_shape():
    findings = lint_source("def f(a, b):\n    return a / b\n",
                           relpath="repro/core/x.py", config=CONFIG)
    result = LintResult(findings=findings, files_checked=1)
    text = render_text(result, show_hints=True)
    assert "REP-N202" in text and "hint:" in text
    payload = json.loads(render_json(result))
    assert payload["summary"] == {
        "count": 1, "files_checked": 1, "baselined": 0, "clean": False}
    assert payload["findings"][0]["rule"] == "REP-N202"
    assert payload["findings"][0]["line"] == 2


def test_cli_lint_clean_repo_exits_zero(capsys):
    assert repro.cli.main(["lint", str(SRC)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_lint_finding_exits_one(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(a, b):\n    return a / b\n", encoding="utf-8")
    assert repro.cli.main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["count"] == 1


def test_cli_lint_missing_path_exits_two(tmp_path, capsys):
    assert repro.cli.main(["lint", str(tmp_path / "nowhere")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert repro.cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP-D101", "REP-D102", "REP-D103", "REP-N201",
                    "REP-N202", "REP-N203", "REP-H301", "REP-H302",
                    "REP-H303", "REP-H304",
                    "REP-C601", "REP-C602", "REP-C603",
                    "REP-F701", "REP-F702", "REP-R801", "REP-R802"):
        assert rule_id in out


def test_module_entry_point():
    from repro.analysis.cli import main as analysis_main

    assert analysis_main([str(SRC)]) == 0


# -- reporter golden output ----------------------------------------------------

def test_render_text_golden():
    findings = lint_source("def f(a, b):\n    return a / b\n",
                           relpath="repro/core/x.py", config=CONFIG)
    result = LintResult(findings=findings, files_checked=3, baselined=2)
    text = render_text(result, show_hints=False)
    assert text.splitlines() == [
        "repro/core/x.py:2:12: REP-N202 [error] division by 'b' has no "
        "visible zero-guard in the enclosing scope",
        "1 finding (3 files checked, 2 baselined)",
    ]


def test_render_text_clean_golden():
    text = render_text(LintResult(files_checked=7), show_hints=True)
    assert text == "0 findings (7 files checked)"


def test_render_json_golden():
    findings = lint_source("def f(a, b):\n    return a / b\n",
                           relpath="repro/core/x.py", config=CONFIG)
    payload = json.loads(render_json(LintResult(findings=findings,
                                                files_checked=1)))
    assert set(payload) == {"findings", "summary"}
    (entry,) = payload["findings"]
    assert entry["rule"] == "REP-N202"
    assert entry["path"] == "repro/core/x.py"
    assert entry["line"] == 2 and entry["col"] == 12
    assert entry["severity"] == "error"
    assert entry["fingerprint"] and len(entry["fingerprint"]) == 16
    assert payload["summary"] == {
        "count": 1, "files_checked": 1, "baselined": 0, "clean": False}


# -- baseline edge cases -------------------------------------------------------

def test_empty_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [])
    baseline = load_baseline(path)
    assert sum(baseline.values()) == 0
    findings = lint_source("def f(a, b):\n    return a / b\n",
                           relpath="repro/core/x.py", config=CONFIG)
    kept, matched = apply_baseline(findings, baseline)
    assert len(kept) == 1 and matched == 0


def test_stale_fingerprint_no_longer_matches(tmp_path):
    src = "def f(a, b):\n    return a / b\n"
    findings = lint_source(src, relpath="repro/core/x.py", config=CONFIG)
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    # The offending line changed: same rule+path, new fingerprint.
    edited = lint_source("def f(a, bb):\n    return a / bb\n",
                         relpath="repro/core/x.py", config=CONFIG)
    kept, matched = apply_baseline(edited, load_baseline(path))
    assert len(kept) == 1 and matched == 0


def test_unknown_baseline_schema_rejected(tmp_path):
    from repro.analysis.baseline import BaselineFormatError

    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}),
                    encoding="utf-8")
    with pytest.raises(BaselineFormatError, match="unknown schema"):
        load_baseline(path)
    path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
    with pytest.raises(BaselineFormatError, match="not a JSON object"):
        load_baseline(path)


def test_cli_rejects_unknown_baseline_schema(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(a, b):\n    return a / b\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 99, "findings": []}),
                        encoding="utf-8")
    assert repro.cli.main(["lint", str(bad),
                           "--baseline", str(baseline)]) == 2
    assert "unknown schema" in capsys.readouterr().err


# -- cross-module CLI: --changed / --graph / --no-cross-module ----------------

def test_cli_changed_scopes_reporting_to_git_diff(tmp_path, capsys):
    import subprocess

    root = tmp_path / "proj"
    (root / "repro" / "core").mkdir(parents=True)
    (root / "pyproject.toml").write_text("[tool.repro.lint]\n",
                                         encoding="utf-8")
    clean = root / "repro" / "core" / "clean.py"
    clean.write_text("def g(a, b):\n    return a / b\n", encoding="utf-8")
    subprocess.run(["git", "init", "-q"], cwd=root, check=True)
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    "add", "-A"], cwd=root, check=True)
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    "commit", "-q", "-m", "init"], cwd=root, check=True)
    # A second offending file, not yet committed: only it is reported.
    touched = root / "repro" / "core" / "touched.py"
    touched.write_text("def h(a, b):\n    return a / b\n", encoding="utf-8")
    assert repro.cli.main(["lint", str(root / "repro"),
                           "--changed", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["count"] == 1
    assert payload["findings"][0]["path"].endswith("touched.py")


def test_cli_changed_without_git_repo_exits_two(tmp_path, capsys):
    target = tmp_path / "repro" / "core"
    target.mkdir(parents=True)
    (target / "x.py").write_text("X = 1\n", encoding="utf-8")
    assert repro.cli.main(["lint", str(target), "--changed"]) == 2
    assert "--changed needs a git work tree" in capsys.readouterr().err


def test_cli_graph_dump(capsys):
    assert repro.cli.main(["lint", str(SRC), "--graph"]) == 0
    out = capsys.readouterr().out
    assert "functions:" in out and "edges:" in out
    assert "entrypoint reachability:" in out
    assert "repro.serve.server.serve_request" in out
    assert "MISSING" not in out


def test_cli_no_cross_module_skips_project_rules(tmp_path, capsys):
    bad = tmp_path / "repro" / "serve" / "server.py"
    bad.parent.mkdir(parents=True)
    # Non-empty literal: stays below REP-P403's radar so only the
    # cross-module rule distinguishes the two runs.
    bad.write_text("CACHE = {'seed': 1}\n"
                   "def _worker_main(task):\n"
                   "    CACHE[task] = 1\n", encoding="utf-8")
    assert repro.cli.main(["lint", str(bad.parent)]) == 1
    assert "REP-C601" in capsys.readouterr().out
    assert repro.cli.main(["lint", str(bad.parent),
                           "--no-cross-module"]) == 0
