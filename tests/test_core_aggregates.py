"""Tests for :mod:`repro.core.aggregates` (street-interest alternatives)."""

from __future__ import annotations

import pytest

from repro.core.aggregates import (
    StreetAggregate,
    aggregate_street_interest,
    rank_streets,
)
from repro.core.interest import buffer_area
from repro.core.soi_baseline import BaselineSOI


class TestAggregateValues:
    def test_max_is_definition_3(self, cross_network):
        interests = {0: 1.0, 1: 5.0, 2: 2.0, 3: 0.5, 4: 0.0}
        main = cross_network.street_by_name("Main Street")
        assert aggregate_street_interest(
            cross_network, main.id, interests,
            StreetAggregate.MAX, 0.1) == 5.0

    def test_mean(self, cross_network):
        interests = {0: 1.0, 1: 5.0, 2: 3.0, 3: 0.0, 4: 0.0}
        main = cross_network.street_by_name("Main Street")
        assert aggregate_street_interest(
            cross_network, main.id, interests,
            StreetAggregate.MEAN, 0.1) == pytest.approx(3.0)

    def test_length_weighted(self, cross_network):
        interests = {0: 2.0, 1: 4.0, 2: 6.0, 3: 0.0, 4: 0.0}
        main = cross_network.street_by_name("Main Street")
        segments = cross_network.segments_of_street(main.id)
        expected = (sum(interests[s.id] * s.length for s in segments)
                    / sum(s.length for s in segments))
        assert aggregate_street_interest(
            cross_network, main.id, interests,
            StreetAggregate.LENGTH_WEIGHTED, 0.1) == pytest.approx(expected)

    def test_total_density(self, cross_network):
        eps = 0.1
        interests = {0: 2.0, 1: 4.0, 2: 6.0, 3: 0.0, 4: 0.0}
        main = cross_network.street_by_name("Main Street")
        segments = cross_network.segments_of_street(main.id)
        mass = sum(interests[s.id] * buffer_area(s.length, eps)
                   for s in segments)
        area = sum(buffer_area(s.length, eps) for s in segments)
        assert aggregate_street_interest(
            cross_network, main.id, interests,
            StreetAggregate.TOTAL_DENSITY, eps) == pytest.approx(mass / area)

    def test_max_dominates_other_aggregates(self, cross_network):
        interests = {0: 1.0, 1: 5.0, 2: 2.0, 3: 3.0, 4: 1.0}
        main = cross_network.street_by_name("Main Street")
        max_value = aggregate_street_interest(
            cross_network, main.id, interests, StreetAggregate.MAX, 0.1)
        for aggregate in (StreetAggregate.MEAN,
                          StreetAggregate.LENGTH_WEIGHTED,
                          StreetAggregate.TOTAL_DENSITY):
            assert aggregate_street_interest(
                cross_network, main.id, interests, aggregate, 0.1) \
                <= max_value + 1e-12


class TestRankStreets:
    def test_omits_zero_interest(self, cross_network):
        interests = {0: 0.0, 1: 0.0, 2: 0.0, 3: 1.0, 4: 1.0}
        ranked = rank_streets(cross_network, interests,
                              StreetAggregate.MAX, 0.1, k=5)
        cross = cross_network.street_by_name("Cross Street")
        assert ranked == [(cross.id, 1.0)]

    def test_ordering_descending(self, small_city, small_engine):
        baseline = BaselineSOI(small_engine)
        interests = baseline.all_segment_interests(["food"], eps=0.0005)
        for aggregate in StreetAggregate:
            ranked = rank_streets(small_city.network, interests,
                                  aggregate, 0.0005, k=10)
            values = [value for _sid, value in ranked]
            assert values == sorted(values, reverse=True)


class TestBaselineIntegration:
    def test_default_equals_max(self, small_engine):
        baseline = BaselineSOI(small_engine)
        default = baseline.top_k(["shop"], k=5, eps=0.0005)
        explicit = baseline.top_k(["shop"], k=5, eps=0.0005,
                                  aggregate=StreetAggregate.MAX)
        assert [(r.street_id, r.interest) for r in default] == \
            [(r.street_id, r.interest) for r in explicit]

    @pytest.mark.parametrize("aggregate", list(StreetAggregate))
    def test_all_aggregates_produce_valid_rankings(self, small_engine,
                                                   aggregate):
        baseline = BaselineSOI(small_engine)
        results = baseline.top_k(["food"], k=8, eps=0.0005,
                                 aggregate=aggregate)
        assert results
        values = [r.interest for r in results]
        assert values == sorted(values, reverse=True)
        assert all(v > 0 for v in values)

    def test_aggregates_disagree_on_ranking(self, small_engine):
        """The choice matters: MAX and MEAN rank streets differently."""
        baseline = BaselineSOI(small_engine)
        by_max = [r.street_id for r in baseline.top_k(
            ["food"], k=10, eps=0.0005, aggregate=StreetAggregate.MAX)]
        by_mean = [r.street_id for r in baseline.top_k(
            ["food"], k=10, eps=0.0005, aggregate=StreetAggregate.MEAN)]
        assert by_max != by_mean
