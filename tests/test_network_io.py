"""Round-trip tests for :mod:`repro.network.io`."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.data.photo import Photo, PhotoSet
from repro.data.poi import POI, POISet
from repro.network.io import (
    load_network_json,
    load_photos_json,
    load_pois_json,
    save_network_json,
    save_photos_json,
    save_pois_json,
)

from tests.conftest import random_networks


class TestNetworkRoundTrip:
    def test_cross_network(self, cross_network, tmp_path):
        path = tmp_path / "network.json"
        save_network_json(cross_network, path)
        loaded = load_network_json(path)
        assert set(loaded.vertices) == set(cross_network.vertices)
        assert set(loaded.segments) == set(cross_network.segments)
        for sid, seg in cross_network.segments.items():
            other = loaded.segment(sid)
            assert (other.u, other.v) == (seg.u, seg.v)
            assert other.street_id == seg.street_id
            assert other.length == pytest.approx(seg.length)
        for stid, street in cross_network.streets.items():
            assert loaded.street(stid).name == street.name
            assert loaded.street(stid).segment_ids == street.segment_ids

    @given(random_networks())
    def test_random_networks(self, tmp_path_factory, network):
        path = tmp_path_factory.mktemp("io") / "network.json"
        save_network_json(network, path)
        loaded = load_network_json(path)
        assert loaded.stats() == pytest.approx(network.stats())


class TestPOIRoundTrip:
    def test_preserves_fields(self, tmp_path):
        pois = POISet([
            POI(3, 1.5, 2.5, frozenset({"shop", "mall"}), weight=2.0),
            POI(7, -1.0, 0.0, frozenset(), weight=0.5),
        ])
        path = tmp_path / "pois.json"
        save_pois_json(pois, path)
        loaded = load_pois_json(path)
        assert len(loaded) == 2
        poi = loaded.by_id(3)
        assert (poi.x, poi.y) == (1.5, 2.5)
        assert poi.keywords == frozenset({"shop", "mall"})
        assert poi.weight == 2.0
        assert loaded.by_id(7).keywords == frozenset()


class TestPhotoRoundTrip:
    def test_preserves_fields(self, tmp_path):
        photos = PhotoSet([
            Photo(0, 0.1, 0.2, frozenset({"sunset", "river"})),
            Photo(9, 4.0, 4.0, frozenset()),
        ])
        path = tmp_path / "photos.json"
        save_photos_json(photos, path)
        loaded = load_photos_json(path)
        assert len(loaded) == 2
        assert loaded.by_id(0).keywords == frozenset({"sunset", "river"})
        assert (loaded.by_id(9).x, loaded.by_id(9).y) == (4.0, 4.0)
