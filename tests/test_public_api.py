"""The public API surface: everything in ``repro.__all__`` importable and
the README quickstart flow working end to end."""

from __future__ import annotations

import pytest

import repro


class TestSurface:
    def test_all_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_error_hierarchy(self):
        assert issubclass(repro.NetworkError, repro.ReproError)
        assert issubclass(repro.DataError, repro.ReproError)
        assert issubclass(repro.QueryError, repro.ReproError)
        assert issubclass(repro.GridIndexError, repro.ReproError)
        assert issubclass(repro.ContractViolation, repro.ReproError)

    def test_deprecated_index_error_alias(self):
        # IndexError_ was renamed to GridIndexError; the alias must stay
        # importable and identical so existing except clauses keep working.
        assert repro.IndexError_ is repro.GridIndexError


class TestQuickstartFlow:
    def test_end_to_end(self, small_city):
        engine = repro.SOIEngine(small_city.network, small_city.pois)
        results = engine.top_k(["shop"], k=3)
        assert results
        profile = repro.build_street_profile(
            small_city.network, results[0].street_id, small_city.photos,
            eps=repro.DEFAULT_EPS)
        summary = repro.STRelDivDescriber(profile).select(k=3)
        assert len(summary) == min(3, len(profile))
        # baseline agreement end to end
        assert repro.GreedyDescriber(profile).select(k=3) == summary

    def test_soi_query_record(self):
        query = repro.SOIQuery(frozenset({"Shop"}), k=5, eps=0.0005)
        assert query.keywords == frozenset({"shop"})
        with pytest.raises(repro.QueryError):
            repro.SOIQuery(frozenset(), k=5, eps=0.0005)
