"""Tests for :mod:`repro.core.interest` (Definitions 1-3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.interest import (
    RelevantCellCache,
    buffer_area,
    segment_interest,
    segment_mass,
    segment_mass_bruteforce,
    street_interest_bruteforce,
    validate_query,
)
from repro.core.soi import SOIEngine
from repro.errors import QueryError

from tests.conftest import random_networks, random_pois


class TestBufferArea:
    def test_formula(self):
        # 2 * eps * len + pi * eps^2
        assert buffer_area(10.0, 0.5) == pytest.approx(
            2 * 0.5 * 10 + math.pi * 0.25)

    def test_zero_length_is_disk(self):
        assert buffer_area(0.0, 1.0) == pytest.approx(math.pi)

    @given(st.floats(min_value=0, max_value=100),
           st.floats(min_value=1e-6, max_value=10))
    def test_positive(self, length, eps):
        assert buffer_area(length, eps) > 0


class TestValidateQuery:
    def test_normalises_keywords(self):
        assert validate_query([" Shop", "FOOD"], 1, 0.1) == \
            frozenset({"shop", "food"})

    def test_empty_keywords_raise(self):
        with pytest.raises(QueryError):
            validate_query([], 1, 0.1)
        with pytest.raises(QueryError):
            validate_query(["  "], 1, 0.1)

    def test_bad_k(self):
        with pytest.raises(QueryError):
            validate_query(["shop"], 0, 0.1)

    def test_bad_eps(self):
        with pytest.raises(QueryError):
            validate_query(["shop"], 1, 0.0)
        with pytest.raises(QueryError):
            validate_query(["shop"], 1, -0.5)


class TestMass:
    def test_bruteforce_counts_within_eps(self, cross_network, cross_pois):
        segment = cross_network.segment(1)  # centre -> east along y=0
        mass = segment_mass_bruteforce(
            segment, cross_pois, frozenset({"shop"}), eps=0.1)
        # POIs 0 (0.1, 0.05) and 1 (0.2, -0.05) are within 0.1 of the
        # segment; 3 and 5 are far; 6 is far; 2/4/7 have no "shop".
        assert mass == 2.0

    def test_bruteforce_weighted(self, cross_network, cross_pois):
        from repro.data.poi import POI, POISet

        weighted = POISet([POI(0, 0.1, 0.05, frozenset({"shop"}), weight=2.5),
                           POI(1, 0.2, -0.05, frozenset({"shop"}),
                               weight=0.5)])
        segment = cross_network.segment(1)
        mass = segment_mass_bruteforce(
            segment, weighted, frozenset({"shop"}), eps=0.1, weighted=True)
        assert mass == pytest.approx(3.0)

    def test_indexed_matches_bruteforce_on_fixture(self, cross_network,
                                                   cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        query = frozenset({"shop"})
        cache = RelevantCellCache(engine.poi_index, query)
        for segment in cross_network.iter_segments():
            indexed = segment_mass(segment, engine.poi_index,
                                   engine.cell_maps, query, 0.15,
                                   cache=cache)
            brute = segment_mass_bruteforce(segment, cross_pois, query, 0.15)
            assert indexed == brute

    @given(random_networks(), random_pois(max_size=25),
           st.sampled_from([0.0004, 0.001, 0.0025]))
    def test_indexed_matches_bruteforce_property(self, network, pois, eps):
        engine = SOIEngine(network, pois, cell_size=0.0015)
        for query in (frozenset({"shop"}), frozenset({"shop", "bar"})):
            cache = RelevantCellCache(engine.poi_index, query)
            for segment in network.iter_segments():
                indexed = segment_mass(segment, engine.poi_index,
                                       engine.cell_maps, query, eps,
                                       cache=cache)
                brute = segment_mass_bruteforce(segment, pois, query, eps)
                assert indexed == brute


class TestInterest:
    def test_segment_interest_is_density(self):
        assert segment_interest(10.0, 2.0, 0.5) == pytest.approx(
            10.0 / buffer_area(2.0, 0.5))

    def test_zero_mass_zero_interest(self):
        assert segment_interest(0.0, 5.0, 0.1) == 0.0

    def test_street_interest_is_max_over_segments(self, cross_network,
                                                  cross_pois):
        query = frozenset({"shop"})
        eps = 0.15
        street = cross_network.street_by_name("Main Street")
        per_segment = [
            segment_interest(
                segment_mass_bruteforce(seg, cross_pois, query, eps),
                seg.length, eps)
            for seg in cross_network.segments_of_street(street.id)]
        assert street_interest_bruteforce(
            cross_network, street.id, cross_pois, query, eps) == \
            pytest.approx(max(per_segment))


class TestRelevantCellCache:
    def test_caches_entries(self, cross_network, cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        cache = RelevantCellCache(engine.poi_index, frozenset({"shop"}))
        cell = engine.poi_index.grid.cell_of(0.1, 0.05)
        first = cache.get(cell)
        second = cache.get(cell)
        assert first is second
        assert len(cache) == 1

    def test_irrelevant_cell_is_empty(self, cross_network, cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        cache = RelevantCellCache(engine.poi_index, frozenset({"zoo"}))
        cell = engine.poi_index.grid.cell_of(0.1, 0.05)
        positions, xs, ys, weights = cache.get(cell)
        assert len(positions) == 0
        assert len(xs) == len(ys) == len(weights) == 0
