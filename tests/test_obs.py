"""The repro.obs stack: tracer, metrics registry, exporters, slow log.

Ends with the PR's acceptance checks: every preset city's traced k-SOI
query covers the filter / mass-kernel / refinement phases with
self-times summing to (at least) 80% of the traced wall time, query
payloads are bit-identical with tracing on and off (with and without the
runtime contracts), and the disabled instrumentation path stays cheap.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.contracts import enable_contracts
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.soi import SOIEngine
from repro.datagen.presets import CITY_PRESETS, build_preset
from repro.eval.experiments import PAPER_QUERY_KEYWORDS
from repro.obs.export import (
    build_tree,
    roots,
    self_time_by_name,
    self_times_ns,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.obs.metrics import (
    MAX_EXP,
    MIN_EXP,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_exponent,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracer import (
    TRACER,
    Tracer,
    perf_now,
    trace_span,
    tracing_enabled,
    tracing_scope,
)


@pytest.fixture()
def traced():
    """Tracing on for the test, window restricted to spans it creates."""
    mark = TRACER.mark()
    with tracing_scope(True):
        yield lambda: TRACER.spans_since(mark)


# -- span tree well-formedness ------------------------------------------------

def test_nested_spans_form_a_well_formed_tree(traced):
    with trace_span("root", kind="test"):
        with trace_span("child_a"):
            with trace_span("grandchild"):
                pass
        with trace_span("child_b"):
            pass
    spans = traced()
    by_name = {span.name: span for span in spans}
    assert set(by_name) == {"root", "child_a", "grandchild", "child_b"}
    root = by_name["root"]
    assert root.parent_id == -1
    assert by_name["child_a"].parent_id == root.span_id
    assert by_name["child_b"].parent_id == root.span_id
    assert by_name["grandchild"].parent_id == by_name["child_a"].span_id
    # Buffer order: a span is appended on exit, so children come first.
    assert [s.name for s in spans] == \
        ["grandchild", "child_a", "child_b", "root"]
    # Intervals nest: every child lies inside its parent.
    tree = build_tree(spans)
    for span in spans:
        for child in tree.get(span.span_id, ()):
            assert span.start_ns <= child.start_ns
            assert child.end_ns <= span.end_ns
    assert [s.name for s in roots(spans)] == ["root"]
    assert root.attrs == {"kind": "test"}


def test_exception_unwinds_spans_and_marks_error(traced):
    with pytest.raises(ValueError):
        with trace_span("outer"):
            with trace_span("inner"):
                raise ValueError("boom")
    spans = traced()
    by_name = {span.name: span for span in spans}
    assert by_name["inner"].attrs["error"] == "ValueError"
    assert by_name["outer"].attrs["error"] == "ValueError"
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    # The stack fully unwound: the next span is a fresh root.
    with trace_span("after"):
        pass
    assert traced()[-1].parent_id == -1


def test_decorator_form_traces_and_reraises(traced):
    @trace_span("worker", tagged=True)
    def work(x):
        return x * 2

    @trace_span("failing")
    def fail():
        raise KeyError("nope")

    assert work(21) == 42
    with pytest.raises(KeyError):
        fail()
    names = [span.name for span in traced()]
    assert names == ["worker", "failing"]
    assert traced()[0].attrs == {"tagged": True}


def test_disabled_tracing_records_nothing():
    mark = TRACER.mark()
    with tracing_scope(False):
        assert not tracing_enabled()
        with trace_span("invisible"):
            pass

        @trace_span("also_invisible")
        def fn():
            return 1

        assert fn() == 1
    assert TRACER.spans_since(mark) == []


def test_ring_buffer_caps_spans_and_counts_drops():
    tracer = Tracer(capacity=4)
    for index in range(7):
        tracer.finish(tracer.begin(f"s{index}"))
    assert len(tracer) == 4
    assert tracer.finished_total == 7
    assert tracer.dropped == 3
    assert [span.name for span in tracer.spans()] == \
        ["s3", "s4", "s5", "s6"]
    drained = tracer.drain()
    assert len(drained) == 4 and len(tracer) == 0


def test_self_times_decompose_parent_duration(traced):
    with trace_span("parent"):
        with trace_span("child"):
            pass
    spans = traced()
    selfs = self_times_ns(spans)
    by_name = {span.name: span for span in spans}
    parent, child = by_name["parent"], by_name["child"]
    assert selfs[child.span_id] == child.duration_ns
    assert selfs[parent.span_id] == \
        parent.duration_ns - child.duration_ns
    named = self_time_by_name(spans)
    assert sum(named.values()) == parent.duration_ns


# -- histogram buckets --------------------------------------------------------

def test_bucket_exponent_boundaries_are_exact():
    # Bucket e covers (2**(e-1), 2**e]: exact powers land on the closed
    # upper edge, the next float after belongs to the next bucket.
    assert bucket_exponent(1.0) == 0
    assert bucket_exponent(2.0) == 1
    assert bucket_exponent(math.nextafter(2.0, math.inf)) == 2
    assert bucket_exponent(math.nextafter(2.0, 0.0)) == 1
    assert bucket_exponent(0.5) == -1
    assert bucket_exponent(0.75) == 0
    assert bucket_exponent(2.0 ** 10) == 10
    assert bucket_exponent(0.0) == MIN_EXP
    assert bucket_exponent(-3.0) == MIN_EXP
    assert bucket_exponent(2.0 ** 300) == MAX_EXP
    assert bucket_exponent(2.0 ** -300) == MIN_EXP


def test_bucket_bounds_bracket_their_values():
    for value in (1e-9, 0.25, 1.0, 3.7, 1024.0):
        exponent = bucket_exponent(value)
        low, high = bucket_bounds(exponent)
        if MIN_EXP < exponent < MAX_EXP:
            assert low < value <= high


def test_histogram_observe_and_roundtrip():
    hist = Histogram()
    for value in (0.5, 1.0, 1.5, 2.0, 3.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(8.0)
    assert hist.mean == pytest.approx(1.6)
    dump = hist.to_dict()
    # 0.5 -> (0.25, 0.5]; 1.0 -> (0.5, 1]; 1.5 and 2.0 -> (1, 2]; 3.0 -> (2, 4]
    assert dump["buckets"] == {"-1": 1, "0": 1, "1": 2, "2": 1}
    other = Histogram()
    other.merge_dict(dump)
    assert other.to_dict() == dump


# -- registry merge determinism -----------------------------------------------

def _worker_dump(seed: int) -> dict:
    registry = MetricsRegistry()
    registry.inc("serve.requests", seed + 1)
    registry.inc(f"worker.{seed}.only")
    registry.set_gauge("session.pool_size", float(seed))
    for value in (0.001 * (seed + 1), 0.1, 1.5):
        registry.observe("serve.request_s", value)
    return registry.to_dict()


def test_registry_merge_is_order_independent():
    dumps = [_worker_dump(seed) for seed in range(4)]
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for dump in dumps:
        forward.merge(dump)
    for dump in reversed(dumps):
        backward.merge(dump)
    assert forward.to_dict() == backward.to_dict()
    merged = forward.to_dict()
    assert merged["counters"]["serve.requests"] == 1 + 2 + 3 + 4
    assert merged["gauges"]["session.pool_size"] == 3.0  # max wins
    assert merged["histograms"]["serve.request_s"]["count"] == 12


def test_record_serve_batch_counts_grouped_requests():
    from repro.obs.metrics import record_serve_batch

    registry = MetricsRegistry()
    record_serve_batch(4, 2, registry=registry)  # 2 rode a shared group
    record_serve_batch(3, 3, registry=registry)  # all distinct: no grouping
    record_serve_batch(1, 1, registry=registry)
    assert registry.counter("serve.batches") == 3
    assert registry.counter("serve.batch_grouped") == 2
    hist = registry.histogram("serve.batch_size")
    assert hist is not None
    assert hist.count == 3 and hist.sum == 8.0


def test_registry_counter_and_gauge_api():
    registry = MetricsRegistry()
    registry.inc_many({"a": 2, "b": 3}, prefix="soi.")
    registry.inc("soi.a")
    assert registry.counter("soi.a") == 3
    assert registry.counters_with_prefix("soi.") == {"a": 3, "b": 3}
    registry.reset()
    assert registry.to_dict() == \
        {"counters": {}, "gauges": {}, "histograms": {}, "sketches": {}}


# -- exporters ----------------------------------------------------------------

def test_jsonl_and_chrome_exports_are_well_formed(traced):
    with trace_span("export.root", city="vienna"):
        with trace_span("export.child"):
            pass
    spans = traced()
    lines = spans_to_jsonl(spans).splitlines()
    assert len(lines) == 2
    decoded = [json.loads(line) for line in lines]
    assert {d["name"] for d in decoded} == {"export.root", "export.child"}
    assert all(d["duration_ns"] >= 0 for d in decoded)

    chrome = spans_to_chrome(spans)
    assert chrome["displayTimeUnit"] == "ms"
    events = chrome["traceEvents"]
    assert len(events) == 2
    assert all(event["ph"] == "X" for event in events)
    # Events are sorted by start; the root starts first at ts == 0.
    assert events[0]["name"] == "export.root" and events[0]["ts"] == 0.0
    assert events[0]["args"]["city"] == "vienna"
    json.dumps(chrome)  # fully serialisable


def test_chrome_export_of_nothing():
    assert spans_to_chrome([]) == \
        {"traceEvents": [], "displayTimeUnit": "ms"}


# -- slow-query log -----------------------------------------------------------

def test_slowlog_threshold_zero_records_everything(traced):
    with trace_span("slow.query"):
        pass
    log = SlowQueryLog(threshold_s=0.0, capacity=2)
    assert log.enabled
    assert log.maybe_record("soi", {"k": 5}, 0.001,
                            counters={"pulls": 3}, spans=traced())
    record = log.records()[0]
    assert record["kind"] == "soi"
    assert record["descriptor"] == {"k": 5}
    assert record["counters"] == {"pulls": 3}
    assert [s["name"] for s in record["spans"]] == ["slow.query"]
    # Capacity bounds the log.
    assert log.maybe_record("soi", {"k": 6}, 0.002)
    assert log.maybe_record("soi", {"k": 7}, 0.003)
    assert [r["descriptor"]["k"] for r in log.records()] == [6, 7]


def test_slowlog_threshold_filters_and_disables():
    log = SlowQueryLog()
    assert not log.enabled
    assert not log.maybe_record("soi", {}, 100.0)
    log.configure(0.5)
    assert not log.maybe_record("soi", {}, 0.4)
    assert log.maybe_record("soi", {}, 0.6)
    assert len(log) == 1


def test_soi_slow_query_log_captures_span_tree(small_engine):
    from repro.obs.slowlog import SLOWLOG

    previous = SLOWLOG.threshold_s
    SLOWLOG.configure(0.0)
    try:
        SLOWLOG.clear()
        with tracing_scope(True):
            small_engine.top_k(["food"], k=5)
        records = [r for r in SLOWLOG.records() if r["kind"] == "soi"]
        assert records, "threshold 0.0 must capture the query"
        record = records[-1]
        assert record["descriptor"]["keywords"] == ["food"]
        assert any(s["name"] == "soi.filter" for s in record["spans"])
        assert record["counters"]["segments_popped"] > 0
    finally:
        SLOWLOG.configure(previous)
        SLOWLOG.clear()


# -- bit-identity and overhead ------------------------------------------------

def test_soi_results_bit_identical_tracing_on_off(small_engine):
    keywords, k = ["food", "shop"], 10
    with tracing_scope(False):
        baseline = small_engine.top_k(keywords, k=k)
    with tracing_scope(True):
        traced_result = small_engine.top_k(keywords, k=k)
    assert traced_result == baseline
    # And under the runtime contracts (REPRO_CHECK=1 equivalent).
    enable_contracts(True)
    try:
        with tracing_scope(True):
            checked = small_engine.top_k(keywords, k=k)
    finally:
        enable_contracts(False)
    assert checked == baseline


def test_describe_results_bit_identical_tracing_on_off(small_city):
    from repro.core.describe.profile import build_street_profile

    engine = SOIEngine(small_city.network, small_city.pois)
    street_id = engine.top_k(["food"], k=1)[0].street_id
    profile = build_street_profile(
        small_city.network, street_id, small_city.photos, eps=0.0005)
    describer = STRelDivDescriber(profile)
    with tracing_scope(False):
        baseline = describer.select(3, 0.5, 0.5)
    with tracing_scope(True):
        traced_result = describer.select(3, 0.5, 0.5)
    assert traced_result == baseline


def test_disabled_tracer_overhead_is_small():
    """The off-switch path must stay branch-cheap (lenient regression net)."""

    def plain(n):
        total = 0
        for i in range(n):
            total += i
        return total

    def instrumented(n):
        total = 0
        for i in range(n):
            with trace_span("overhead.probe"):
                total += i
        return total

    n = 20000
    with tracing_scope(False):
        plain(n); instrumented(n)  # warm up
        t0 = perf_now()
        plain(n)
        plain_s = perf_now() - t0
        t0 = perf_now()
        instrumented(n)
        instrumented_s = perf_now() - t0
    per_span = (instrumented_s - plain_s) / n
    # Generous bound: a disabled span is two method calls and one module
    # attribute read — microseconds would mean the switch regressed.
    assert per_span < 5e-6, f"disabled span costs {per_span * 1e9:.0f}ns"


# -- acceptance: phase coverage on every preset city --------------------------

@pytest.mark.parametrize("preset", sorted(CITY_PRESETS))
def test_traced_soi_query_covers_phases_on_preset(preset):
    city = build_preset(preset, scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    keywords = list(PAPER_QUERY_KEYWORDS[:3])
    mark = TRACER.mark()
    with tracing_scope(True):
        results = engine.top_k(keywords, k=10)
    assert results, f"{preset}: query must return streets"
    spans = TRACER.spans_since(mark)
    query_roots = [s for s in roots(spans) if s.name == "soi.query"]
    assert len(query_roots) == 1
    root = query_roots[0]
    tree = build_tree(spans)

    subtree = []
    frontier = [root]
    while frontier:
        span = frontier.pop()
        subtree.append(span)
        frontier.extend(tree.get(span.span_id, ()))

    names = {span.name for span in subtree}
    assert {"soi.build_source_lists", "soi.filter", "soi.refine"} <= names
    assert "soi.mass_kernel" in names or "soi.pull" in names, \
        f"{preset}: no work spans under the query root"
    # Self-times telescope: they must account for >= 80% of the traced
    # wall time of the query (exactly 100% up to clock granularity).
    selfs = self_times_ns(spans)
    covered = sum(selfs[span.span_id] for span in subtree)
    assert covered >= 0.8 * root.duration_ns
