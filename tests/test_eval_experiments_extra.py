"""Additional coverage for :mod:`repro.eval.experiments` drivers."""

from __future__ import annotations

import pytest

from repro.eval.experiments import (
    PAPER_QUERY_KEYWORDS,
    engine_for,
    soi_timing_sweep_k,
    soi_timing_sweep_keywords,
    top_soi_profile,
)


class TestEngineCache:
    def test_engine_for_returns_same_instance(self, small_city):
        assert engine_for(small_city) is engine_for(small_city)

    def test_engine_for_distinguishes_cities(self, small_city):
        from repro.datagen.city import CitySpec, generate_city

        other_spec = CitySpec(name="elsewhere", seed=5, n_horizontal=6,
                              n_vertical=6, n_background_pois=50,
                              misc_street_pois=50,
                              street_pois_per_category=20,
                              n_background_photos=20, street_photos=50,
                              n_landmarks=2, n_event_bursts=1)
        other = generate_city(other_spec)
        assert engine_for(other) is not engine_for(small_city)


class TestTimingSweeps:
    def test_sweep_k_shape(self, small_city):
        rows = soi_timing_sweep_k(small_city, ks=(2, 5))
        assert [k for k, _s, _b in rows] == [2, 5]
        assert all(s > 0 and b > 0 for _k, s, b in rows)

    def test_sweep_keywords_shape(self, small_city):
        rows = soi_timing_sweep_keywords(small_city, sizes=(1, 2), k=5)
        assert [p for p, _s, _b in rows] == [1, 2]
        assert all(s > 0 and b > 0 for _p, s, b in rows)

    def test_paper_keyword_order(self):
        # Table 4's cumulative sets build in exactly this order.
        assert PAPER_QUERY_KEYWORDS == ("religion", "education", "food",
                                        "services")


class TestTopSOIProfile:
    def test_unmatched_category_raises(self, small_city):
        with pytest.raises(Exception):
            top_soi_profile(small_city, "warpdrive")

    def test_profile_extent_covers_photos(self, small_city):
        profile = top_soi_profile(small_city, "shop")
        extent = profile.extent
        for pos in range(len(profile)):
            x = float(profile.photos.xs[pos])
            y = float(profile.photos.ys[pos])
            assert extent.contains_point(x, y)
