"""Tests for :mod:`repro.network.builder`."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.builder import RoadNetworkBuilder


class TestVertices:
    def test_sequential_ids(self):
        builder = RoadNetworkBuilder()
        assert builder.add_vertex(0, 0) == 0
        assert builder.add_vertex(1, 0) == 1
        assert builder.vertex_count() == 2

    def test_deduplication(self):
        builder = RoadNetworkBuilder()
        a = builder.add_vertex(0.5, 0.5)
        b = builder.add_vertex(0.5, 0.5)
        assert a == b
        assert builder.vertex_count() == 1


class TestAddStreet:
    def test_creates_segments_between_consecutive_vertices(self):
        builder = RoadNetworkBuilder()
        ids = [builder.add_vertex(float(i), 0.0) for i in range(4)]
        street_id = builder.add_street("Long Street", ids)
        network = builder.build()
        street = network.street(street_id)
        assert len(street) == 3
        segs = network.segments_of_street(street_id)
        assert [(s.u, s.v) for s in segs] == [(0, 1), (1, 2), (2, 3)]

    def test_crossing_streets_share_vertex(self):
        builder = RoadNetworkBuilder()
        w = builder.add_vertex(-1, 0)
        c = builder.add_vertex(0, 0)
        e = builder.add_vertex(1, 0)
        n = builder.add_vertex(0, 1)
        s = builder.add_vertex(0, -1)
        builder.add_street("EW", [w, c, e])
        builder.add_street("NS", [n, c, s])
        network = builder.build()
        graph = network.as_networkx()
        assert graph.degree[c] == 4

    def test_too_few_vertices(self):
        builder = RoadNetworkBuilder()
        v = builder.add_vertex(0, 0)
        with pytest.raises(NetworkError, match="at least two"):
            builder.add_street("Dot", [v])

    def test_unknown_vertex(self):
        builder = RoadNetworkBuilder()
        builder.add_vertex(0, 0)
        with pytest.raises(NetworkError, match="unknown vertex"):
            builder.add_street("Bad", [0, 7])

    def test_repeated_consecutive_vertex(self):
        builder = RoadNetworkBuilder()
        a = builder.add_vertex(0, 0)
        b = builder.add_vertex(1, 0)
        with pytest.raises(NetworkError, match="repeats"):
            builder.add_street("Loop", [a, b, b])


class TestAddStreetFromSegments:
    def test_accepts_mixed_orientation(self):
        builder = RoadNetworkBuilder()
        a = builder.add_vertex(0, 0)
        b = builder.add_vertex(1, 0)
        c = builder.add_vertex(2, 0)
        # second pair reversed: (c, b) still chains with (a, b) via b
        street_id = builder.add_street_from_segments("Zig", [(a, b), (c, b)])
        network = builder.build()
        assert len(network.street(street_id)) == 2

    def test_zero_length_segment(self):
        builder = RoadNetworkBuilder()
        a = builder.add_vertex(0, 0)
        with pytest.raises(NetworkError, match="zero-length"):
            builder.add_street_from_segments("Dot", [(a, a)])

    def test_empty(self):
        builder = RoadNetworkBuilder()
        with pytest.raises(NetworkError, match="at least one"):
            builder.add_street_from_segments("Empty", [])

    def test_disconnected_pairs_fail_validation(self):
        builder = RoadNetworkBuilder()
        a = builder.add_vertex(0, 0)
        b = builder.add_vertex(1, 0)
        c = builder.add_vertex(5, 5)
        d = builder.add_vertex(6, 5)
        builder.add_street_from_segments("Teleport", [(a, b), (c, d)])
        with pytest.raises(NetworkError, match="not a path"):
            builder.build()


class TestBuild:
    def test_build_validates_by_default(self, cross_network):
        # the fixture itself exercises a successful build
        assert len(cross_network.segments) == 5
        assert len(cross_network.streets) == 2

    def test_built_network_is_consistent(self, cross_network):
        cross_network.validate()  # idempotent re-validation

    def test_ids_are_dense(self, cross_network):
        assert sorted(cross_network.segments) == list(
            range(len(cross_network.segments)))
        assert sorted(cross_network.streets) == list(
            range(len(cross_network.streets)))
