"""Tests for :mod:`repro.core.describe.profile`."""

from __future__ import annotations

import pytest

from repro.core.describe.profile import (
    StreetProfile,
    build_street_profile,
    photos_near_street,
)
from repro.data.keywords import KeywordFrequencyVector
from repro.data.photo import Photo, PhotoSet
from repro.data.poi import POI, POISet
from repro.errors import QueryError
from repro.geometry.bbox import BBox


def _photos() -> PhotoSet:
    return PhotoSet([
        Photo(0, 0.1, 0.02, frozenset({"shop", "street"})),
        Photo(1, 0.12, 0.03, frozenset({"shop"})),
        Photo(2, 0.5, -0.02, frozenset({"protest", "crowd"})),
        Photo(3, 0.0, 0.9, frozenset({"church"})),      # on Cross Street
        Photo(4, 5.0, 5.0, frozenset({"far"})),          # nowhere near
    ])


class TestPhotosNearStreet:
    def test_selects_within_eps(self, cross_network):
        photos = _photos()
        main = cross_network.street_by_name("Main Street")
        positions = photos_near_street(cross_network, main.id, photos,
                                       eps=0.1)
        assert positions == [0, 1, 2]

    def test_empty_photoset(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        assert photos_near_street(cross_network, main.id, PhotoSet([]),
                                  eps=0.1) == []


class TestBuildStreetProfile:
    def test_profile_contents(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        profile = build_street_profile(cross_network, main.id, _photos(),
                                       eps=0.1, rho=0.05)
        assert len(profile) == 3
        assert profile.street_name == "Main Street"
        assert profile.phi["shop"] == 2
        assert profile.phi["protest"] == 1
        assert "far" not in profile.phi
        expected_extent = cross_network.street_bbox(main.id).expanded(0.1)
        assert profile.max_d == pytest.approx(expected_extent.diagonal)

    def test_phi_includes_pois_when_requested(self, cross_network,
                                              cross_pois):
        main = cross_network.street_by_name("Main Street")
        profile = build_street_profile(
            cross_network, main.id, _photos(), eps=0.1, rho=0.05,
            pois=cross_pois, poi_keyword_weight=0.5)
        # POIs 0, 1, 3 carry "shop" within 0.1 of Main Street.
        assert profile.phi["shop"] == pytest.approx(2 + 3 * 0.5)

    def test_spatial_rel_counts_neighbours(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        profile = build_street_profile(cross_network, main.id, _photos(),
                                       eps=0.1, rho=0.05)
        # photos 0 and 1 are within rho of each other; photo 2 is alone.
        assert profile.spatial_rel[0] == pytest.approx(2 / 3)
        assert profile.spatial_rel[1] == pytest.approx(2 / 3)
        assert profile.spatial_rel[2] == pytest.approx(1 / 3)

    def test_textual_rel_is_normalised_phi_weight(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        profile = build_street_profile(cross_network, main.id, _photos(),
                                       eps=0.1, rho=0.05)
        # Phi: shop=2, street=1, protest=1, crowd=1 -> norm 5
        assert profile.textual_rel[0] == pytest.approx((2 + 1) / 5)
        assert profile.textual_rel[2] == pytest.approx((1 + 1) / 5)

    def test_relevances_in_unit_interval(self, small_city, small_engine):
        top = small_engine.top_k(["shop"], k=1, eps=0.0005)[0]
        profile = build_street_profile(small_city.network, top.street_id,
                                       small_city.photos, eps=0.0005)
        assert ((profile.spatial_rel >= 0) & (profile.spatial_rel <= 1)).all()
        assert ((profile.textual_rel >= 0) & (profile.textual_rel <= 1)).all()


class TestValidation:
    def _minimal(self, rho=0.1, max_d=1.0):
        return StreetProfile(
            photos=PhotoSet([Photo(0, 0, 0, frozenset({"a"}))]),
            phi=KeywordFrequencyVector({"a": 1.0}),
            max_d=max_d,
            extent=BBox(0, 0, 1, 1),
            rho=rho)

    def test_valid(self):
        profile = self._minimal()
        assert profile.spatial_rel[0] == 1.0
        assert profile.textual_rel[0] == 1.0

    def test_bad_rho(self):
        with pytest.raises(QueryError):
            self._minimal(rho=0.0)

    def test_bad_max_d(self):
        with pytest.raises(QueryError):
            self._minimal(max_d=0.0)

    def test_empty_phi_gives_zero_textual_rel(self):
        profile = StreetProfile(
            photos=PhotoSet([Photo(0, 0, 0, frozenset({"a"}))]),
            phi=KeywordFrequencyVector({}),
            max_d=1.0, extent=BBox(0, 0, 1, 1), rho=0.1)
        assert profile.textual_rel[0] == 0.0
