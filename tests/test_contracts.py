"""Runtime invariant contracts: unit, property and mutation tests.

Three layers:

* unit tests of the check helpers and the enable/disable switch;
* property tests running the full k-SOI and ST_Rel+Div pipelines over
  small random cities with contracts enabled — no violation may fire on
  correct code;
* mutation tests that deliberately corrupt a bound (via monkeypatching
  :class:`~repro.core.describe.bounds.BoundsComputer` and the SOI upper
  bound) and assert the contracts catch the corruption.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.analysis import contracts
from repro.analysis.contracts import (
    SOIContractMonitor,
    check_definition2,
    check_describe_selection,
    enable_contracts,
)
from repro.core.describe.bounds import BoundsComputer, RelevanceBounds
from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.profile import build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.soi import SOIEngine, _SOIRun
from repro.errors import ContractViolation

from tests.conftest import random_networks, random_photos, random_pois

EPS = 0.002


@pytest.fixture()
def checked():
    """Contracts on for the duration of one test."""
    previous = contracts.ENABLED
    enable_contracts()
    yield
    enable_contracts(previous)


@pytest.fixture()
def unchecked():
    """Contracts off for the duration of one test."""
    previous = contracts.ENABLED
    enable_contracts(False)
    yield
    enable_contracts(previous)


def profile_with_photos(city, min_photos=5):
    """First street profile of the city holding enough photos."""
    for street_id in city.network.streets:
        profile = build_street_profile(city.network, street_id, city.photos,
                                       eps=0.001)
        if len(profile) >= min_photos:
            return profile
    pytest.skip("no street with enough photos in the test city")


# -- switch semantics ---------------------------------------------------------

class TestSwitch:
    def test_default_tracks_environment(self):
        # The process-start default is decided by REPRO_CHECK; tests must
        # pass both with and without it (the suite runs under both).
        expected = contracts._env_enabled(os.environ.get("REPRO_CHECK"))
        assert contracts.ENABLED is expected

    def test_enable_disable_round_trip(self):
        previous = contracts.ENABLED
        try:
            repro.enable_contracts()
            assert repro.contracts_enabled()
            repro.enable_contracts(False)
            assert not repro.contracts_enabled()
        finally:
            enable_contracts(previous)

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("yes", True), ("on", True),
        ("", False), ("0", False), ("false", False), ("no", False),
        ("off", False), (None, False),
    ])
    def test_env_parsing(self, value, expected):
        assert contracts._env_enabled(value) is expected


# -- unit tests of the check helpers ------------------------------------------

class TestDefinition2:
    def test_valid_inputs_pass(self):
        check_definition2(mass=3.0, length=0.01, eps=0.0005)
        check_definition2(mass=0.0, length=0.0, eps=0.0005)

    @pytest.mark.parametrize("mass,length,eps", [
        (1.0, 0.01, 0.0),     # eps must be positive
        (1.0, 0.01, -1.0),
        (1.0, -0.01, 0.001),  # negative length
        (-1.0, 0.01, 0.001),  # negative mass
    ])
    def test_invalid_inputs_raise(self, mass, length, eps):
        with pytest.raises(ContractViolation):
            check_definition2(mass, length, eps)


class TestSOIMonitor:
    def test_monotone_sequence_passes(self):
        monitor = SOIContractMonitor()
        monitor.observe_threshold(0.0, 100.0)
        monitor.observe_threshold(5.0, 80.0)
        monitor.observe_threshold(5.0, 80.0)
        monitor.observe_threshold(9.0, 20.0)
        assert monitor.observations == 4

    def test_decreasing_lbk_raises(self):
        monitor = SOIContractMonitor()
        monitor.observe_threshold(5.0, 100.0)
        with pytest.raises(ContractViolation, match="LBk decreased"):
            monitor.observe_threshold(4.0, 90.0)

    def test_increasing_ub_raises(self):
        monitor = SOIContractMonitor()
        monitor.observe_threshold(0.0, 100.0)
        with pytest.raises(ContractViolation, match="UB increased"):
            monitor.observe_threshold(1.0, 101.0)

    def test_negative_lbk_raises(self):
        with pytest.raises(ContractViolation, match="negative"):
            SOIContractMonitor().observe_threshold(-0.1, 1.0)


def test_describe_selection_guard():
    check_describe_selection(0, 1)
    with pytest.raises(ContractViolation, match="eliminated all"):
        check_describe_selection(-1, 2)


# -- correct pipelines never violate ------------------------------------------

class TestPipelinesUnderContracts:
    def test_soi_results_identical_with_contracts(self, small_engine,
                                                  checked):
        enable_contracts(False)
        plain = small_engine.top_k(["shop", "food"], k=5, eps=EPS)
        enable_contracts()
        guarded = small_engine.top_k(["shop", "food"], k=5, eps=EPS)
        assert [(r.street_id, r.interest) for r in plain] == \
            [(r.street_id, r.interest) for r in guarded]

    def test_describe_identical_with_contracts(self, small_city, checked):
        profile = profile_with_photos(small_city)
        enable_contracts(False)
        plain = STRelDivDescriber(profile).select(3)
        enable_contracts()
        guarded = STRelDivDescriber(profile).select(3)
        assert plain == guarded
        # and still equal to the naive reference
        assert guarded == GreedyDescriber(profile).select(3)

    @settings(max_examples=20)
    @given(network=random_networks(), pois=random_pois(min_size=5),
           photos=random_photos(min_size=5),
           k=st.integers(min_value=1, max_value=4),
           lam=st.sampled_from([0.0, 0.5, 1.0]),
           w=st.sampled_from([0.0, 0.5, 1.0]))
    def test_random_cities_never_violate(self, network, pois, photos,
                                         k, lam, w):
        previous = contracts.ENABLED
        enable_contracts()
        try:
            engine = SOIEngine(network, pois)
            results = engine.top_k(["shop", "food", "bar"], k=k, eps=EPS)
            street_ids = list(network.streets)
            if results:
                street_ids = [results[0].street_id, *street_ids]
            for street_id in street_ids[:2]:
                profile = build_street_profile(network, street_id, photos,
                                               eps=EPS)
                if len(profile):
                    STRelDivDescriber(profile).select(k, lam, w)
        finally:
            enable_contracts(previous)


# -- mutation tests: corrupted bounds must be caught --------------------------

class TestMutations:
    def test_corrupted_relevance_bound_detected(self, small_city, checked,
                                                monkeypatch):
        profile = profile_with_photos(small_city)
        original = BoundsComputer.relevance_bounds

        def corrupted(self, cell):
            real = original(self, cell)
            # An inflated lower bound claims every photo in the cell is
            # more relevant than it can be (relevances are <= 1).
            return RelevanceBounds(
                spatial_lo=2.0, spatial_hi=2.0,
                textual_lo=real.textual_lo, textual_hi=real.textual_hi)

        monkeypatch.setattr(BoundsComputer, "relevance_bounds", corrupted)
        with pytest.raises(ContractViolation, match="spatial-rel"):
            STRelDivDescriber(profile).select(3)

    def test_corrupted_mmr_upper_bound_detected(self, small_city, checked,
                                                monkeypatch):
        profile = profile_with_photos(small_city)
        original = BoundsComputer.mmr_bounds

        def corrupted(self, cell, selected, lam, w, k):
            lo, hi = original(self, cell, selected, lam, w, k)
            # A shrunk upper bound silently prunes viable candidates.
            return lo, lo * 0.5

        monkeypatch.setattr(BoundsComputer, "mmr_bounds", corrupted)
        with pytest.raises(ContractViolation):
            STRelDivDescriber(profile).select(3)

    def test_corrupted_soi_upper_bound_detected(self, small_engine, checked,
                                                monkeypatch):
        original = _SOIRun._compute_ub
        drift = {"calls": 0}

        def corrupted(self):
            # A growing UB breaks the Lemma 1 non-increase obligation.
            drift["calls"] += 1
            return original(self) + drift["calls"] * 1e15

        monkeypatch.setattr(_SOIRun, "_compute_ub", corrupted)
        with pytest.raises(ContractViolation, match="UB increased"):
            small_engine.top_k(["shop", "food"], k=3, eps=EPS)

    def test_mutations_invisible_when_disabled(self, small_city, unchecked,
                                               monkeypatch):
        # The same corruption goes unnoticed with contracts off: the
        # describer still returns (a possibly wrong) summary silently.
        profile = profile_with_photos(small_city)
        monkeypatch.setattr(
            BoundsComputer, "relevance_bounds",
            lambda self, cell: RelevanceBounds(2.0, 2.0, 2.0, 2.0))
        assert not contracts.ENABLED
        result = STRelDivDescriber(profile).select(3)
        assert len(result) == 3
