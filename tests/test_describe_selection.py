"""Tests for greedy selection and ST_Rel+Div (Algorithm 2).

The central property: ST_Rel+Div selects *exactly* the same photos as the
naive greedy (both maximise the same exact ``mmr`` with the same
smallest-position tie-break); the cell bounds only reduce work.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.measures import mmr_value, objective_value
from repro.core.describe.profile import StreetProfile, build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.data.keywords import KeywordFrequencyVector
from repro.data.photo import Photo, PhotoSet
from repro.errors import QueryError
from repro.geometry.bbox import BBox

from tests.conftest import random_photos


def _profile(photos: PhotoSet, rho: float = 0.004) -> StreetProfile:
    extent = BBox(-0.005, -0.005, 0.025, 0.025)
    phi = KeywordFrequencyVector.from_keyword_sets(
        p.keywords for p in photos)
    return StreetProfile(photos=photos, phi=phi, max_d=extent.diagonal,
                         extent=extent, rho=rho)


class TestGreedy:
    def test_selects_k_photos(self):
        photos = PhotoSet([Photo(i, 0.001 * i, 0.0005 * i,
                                 frozenset({f"t{i}"})) for i in range(6)])
        selected = GreedyDescriber(_profile(photos)).select(3)
        assert len(selected) == 3
        assert len(set(selected)) == 3

    def test_caps_at_photo_count(self):
        photos = PhotoSet([Photo(0, 0, 0, frozenset({"a"})),
                           Photo(1, 0.001, 0, frozenset({"b"}))])
        assert len(GreedyDescriber(_profile(photos)).select(10)) == 2

    def test_first_pick_maximises_relevance(self):
        photos = PhotoSet([
            Photo(0, 0.0, 0.0, frozenset({"rare"})),
            Photo(1, 0.001, 0.0, frozenset({"popular"})),
            Photo(2, 0.0011, 0.0001, frozenset({"popular"})),
            Photo(3, 0.0012, 0.0002, frozenset({"popular"})),
        ])
        profile = _profile(photos)
        first = GreedyDescriber(profile).select(1, lam=0.0, w=0.5)[0]
        rels = [mmr_value(profile, pos, [], 0.0, 0.5, 1)
                for pos in range(4)]
        assert rels[first] == max(rels)

    def test_greedy_each_step_maximises_mmr(self):
        photos = PhotoSet([
            Photo(i, 0.0007 * (i % 5), 0.0009 * (i // 5),
                  frozenset({f"t{i % 3}", "common"}))
            for i in range(12)])
        profile = _profile(photos)
        lam, w, k = 0.5, 0.5, 4
        selected = GreedyDescriber(profile).select(k, lam, w)
        chosen: list[int] = []
        for pick in selected:
            values = {pos: mmr_value(profile, pos, chosen, lam, w, k)
                      for pos in range(len(photos)) if pos not in chosen}
            best = max(values.values())
            assert values[pick] == pytest.approx(best)
            chosen.append(pick)

    def test_parameter_validation(self):
        photos = PhotoSet([Photo(0, 0, 0, frozenset({"a"}))])
        describer = GreedyDescriber(_profile(photos))
        with pytest.raises(QueryError):
            describer.select(0)
        with pytest.raises(QueryError):
            describer.select(1, lam=1.5)
        with pytest.raises(QueryError):
            describer.select(1, w=-0.1)


class TestSTRelDivEquivalence:
    @given(random_photos(min_size=1, max_size=40),
           st.integers(min_value=1, max_value=6),
           st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
           st.sampled_from([0.0, 0.5, 1.0]))
    @settings(max_examples=50)
    def test_matches_greedy_exactly(self, photos, k, lam, w):
        profile = _profile(photos)
        greedy = GreedyDescriber(profile).select(k, lam, w)
        fast = STRelDivDescriber(profile).select(k, lam, w)
        assert fast == greedy

    def test_matches_greedy_at_exact_rho_boundary(self):
        # Two photos exactly rho apart, both on photo-grid cell
        # boundaries: floating-point cell assignment can separate them by
        # three cells, and without the spatial_reach_count guard the
        # Equation 12 upper bound missed the neighbour, pruning the true
        # best photo.
        photos = PhotoSet([Photo(0, 0.0001, 0.0, frozenset()),
                           Photo(1, 0.0, 0.0, frozenset())])
        extent = BBox(-0.001, -0.001, 0.021, 0.021)
        profile = StreetProfile(photos=photos,
                                phi=KeywordFrequencyVector({}),
                                max_d=extent.diagonal, extent=extent)
        greedy = GreedyDescriber(profile).select(2)
        assert STRelDivDescriber(profile).select(2) == greedy == [0, 1]

    def test_matches_greedy_on_real_profile(self, small_city, small_engine):
        top = small_engine.top_k(["shop"], k=1, eps=0.0005)[0]
        profile = build_street_profile(small_city.network, top.street_id,
                                       small_city.photos, eps=0.0005)
        for lam, w, k in [(0.5, 0.5, 5), (0.0, 1.0, 3), (1.0, 0.0, 4)]:
            greedy = GreedyDescriber(profile).select(k, lam, w)
            fast = STRelDivDescriber(profile).select(k, lam, w)
            assert fast == greedy


class TestSTRelDivBehaviour:
    def test_stats_recorded(self):
        photos = PhotoSet([Photo(i, 0.0007 * (i % 6), 0.0011 * (i // 6),
                                 frozenset({f"t{i % 4}"}))
                           for i in range(24)])
        describer = STRelDivDescriber(_profile(photos))
        selected, stats = describer.select_with_stats(4)
        assert len(selected) == 4
        assert stats.iterations == 4
        assert stats.photos_examined <= 4 * len(photos)
        assert stats.cells_considered > 0
        assert stats.cells_pruned_filter >= 0

    def test_pruning_examines_fewer_photos_than_naive(self):
        # Cluster of near-identical photos far from a relevant dense spot:
        # the filter should discard cells without touching their photos.
        photos = []
        for i in range(30):
            photos.append(Photo(i, 0.001 + 0.00001 * i, 0.001,
                                frozenset({"hot", "spot"})))
        for i in range(30, 40):
            photos.append(Photo(i, 0.02, 0.02 + 0.00001 * i,
                                frozenset({"cold"})))
        profile = _profile(PhotoSet(photos))
        _selected, stats = STRelDivDescriber(profile).select_with_stats(
            3, lam=0.0, w=0.5)
        naive_work = 3 * len(photos)
        assert stats.photos_examined < naive_work

    def test_duplicate_photos_never_selected_twice(self):
        photos = PhotoSet([Photo(i, 0.001, 0.001, frozenset({"same"}))
                           for i in range(5)])
        selected = STRelDivDescriber(_profile(photos)).select(5)
        assert sorted(selected) == [0, 1, 2, 3, 4]

    def test_empty_profile_returns_empty(self):
        profile = _profile(PhotoSet([]))
        assert STRelDivDescriber(profile).select(3) == []

    def test_objective_never_negative(self):
        photos = PhotoSet([Photo(i, 0.0005 * i, 0.0, frozenset({"x"}))
                           for i in range(8)])
        profile = _profile(photos)
        selected = STRelDivDescriber(profile).select(4)
        assert objective_value(profile, selected, 0.5, 0.5) >= 0.0
