"""Smoke tests: every example script must run cleanly.

The examples double as integration tests of the public API — they are run
in-process (scaled presets make them fast) with stdout captured.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "shopping_streets", "photo_summary",
            "explore_city"} <= names
