"""Tests for :mod:`repro.geometry.distance` — the exactness of these
kernels underpins both Definition 1 (mass) and the index augmentation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.bbox import BBox
from repro.geometry.distance import (
    point_bbox_maxdist,
    point_bbox_mindist,
    point_distance,
    point_segment_distance,
    points_segment_distance,
    segment_bbox_mindist,
    segment_segment_distance,
)

finite = st.floats(min_value=-20, max_value=20,
                   allow_nan=False, allow_infinity=False)


class TestPointSegment:
    def test_perpendicular_foot_inside(self):
        assert point_segment_distance(1, 1, 0, 0, 2, 0) == pytest.approx(1.0)

    def test_nearest_is_endpoint(self):
        assert point_segment_distance(-3, 4, 0, 0, 2, 0) == pytest.approx(5.0)

    def test_point_on_segment(self):
        assert point_segment_distance(1, 0, 0, 0, 2, 0) == 0.0

    def test_degenerate_segment(self):
        assert point_segment_distance(3, 4, 0, 0, 0, 0) == pytest.approx(5.0)

    @given(finite, finite, finite, finite, finite, finite)
    def test_not_larger_than_endpoint_distances(self, px, py, ax, ay, bx, by):
        d = point_segment_distance(px, py, ax, ay, bx, by)
        assert d <= point_distance(px, py, ax, ay) + 1e-9
        assert d <= point_distance(px, py, bx, by) + 1e-9

    @given(finite, finite, finite, finite, finite, finite,
           st.floats(min_value=0, max_value=1))
    def test_lower_bound_via_sampled_points(self, px, py, ax, ay, bx, by, t):
        """The distance to any sampled point of the segment is >= the min."""
        sx = ax + t * (bx - ax)
        sy = ay + t * (by - ay)
        d = point_segment_distance(px, py, ax, ay, bx, by)
        assert d <= point_distance(px, py, sx, sy) + 1e-9


class TestVectorised:
    def test_matches_scalar(self):
        xs = np.array([1.0, -3.0, 1.0, 10.0])
        ys = np.array([1.0, 4.0, 0.0, 0.0])
        batch = points_segment_distance(xs, ys, 0, 0, 2, 0)
        for i in range(len(xs)):
            scalar = point_segment_distance(
                float(xs[i]), float(ys[i]), 0, 0, 2, 0)
            assert batch[i] == pytest.approx(scalar)

    def test_degenerate_segment(self):
        xs = np.array([3.0])
        ys = np.array([4.0])
        assert points_segment_distance(xs, ys, 1, 1, 1, 1)[0] == \
            pytest.approx(math.hypot(2, 3))

    def test_empty_input(self):
        out = points_segment_distance(np.empty(0), np.empty(0), 0, 0, 1, 0)
        assert out.shape == (0,)

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=8),
           finite, finite, finite, finite)
    def test_property_matches_scalar(self, points, ax, ay, bx, by):
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        batch = points_segment_distance(xs, ys, ax, ay, bx, by)
        for i, (px, py) in enumerate(points):
            assert batch[i] == pytest.approx(
                point_segment_distance(px, py, ax, ay, bx, by), abs=1e-9)


class TestPointBox:
    BOX = BBox(0, 0, 2, 1)

    def test_inside_is_zero(self):
        assert point_bbox_mindist(1, 0.5, self.BOX) == 0.0

    def test_outside_side(self):
        assert point_bbox_mindist(3, 0.5, self.BOX) == pytest.approx(1.0)

    def test_outside_corner(self):
        assert point_bbox_mindist(3, 2, self.BOX) == pytest.approx(
            math.hypot(1, 1))

    def test_maxdist_from_center(self):
        assert point_bbox_maxdist(1, 0.5, self.BOX) == pytest.approx(
            math.hypot(1, 0.5))

    def test_maxdist_from_corner(self):
        assert point_bbox_maxdist(0, 0, self.BOX) == pytest.approx(
            math.hypot(2, 1))

    @given(finite, finite)
    def test_min_le_max(self, px, py):
        assert point_bbox_mindist(px, py, self.BOX) <= \
            point_bbox_maxdist(px, py, self.BOX) + 1e-9

    @given(finite, finite,
           st.floats(min_value=0, max_value=2),
           st.floats(min_value=0, max_value=1))
    def test_bounds_cover_sampled_box_points(self, px, py, qx, qy):
        d = math.hypot(px - qx, py - qy)
        assert point_bbox_mindist(px, py, self.BOX) <= d + 1e-9
        assert point_bbox_maxdist(px, py, self.BOX) >= d - 1e-9


class TestSegmentSegment:
    def test_crossing_is_zero(self):
        assert segment_segment_distance(0, 0, 2, 2, 0, 2, 2, 0) == 0.0

    def test_parallel(self):
        assert segment_segment_distance(0, 0, 1, 0, 0, 1, 1, 1) == \
            pytest.approx(1.0)

    def test_collinear_gap(self):
        assert segment_segment_distance(0, 0, 1, 0, 3, 0, 4, 0) == \
            pytest.approx(2.0)

    @given(finite, finite, finite, finite, finite, finite, finite, finite)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        d1 = segment_segment_distance(ax, ay, bx, by, cx, cy, dx, dy)
        d2 = segment_segment_distance(cx, cy, dx, dy, ax, ay, bx, by)
        assert d1 == pytest.approx(d2, abs=1e-9)


class TestSegmentBox:
    BOX = BBox(0, 0, 1, 1)

    def test_crossing_is_zero(self):
        assert segment_bbox_mindist(-1, 0.5, 2, 0.5, self.BOX) == 0.0

    def test_endpoint_inside_is_zero(self):
        assert segment_bbox_mindist(0.5, 0.5, 5, 5, self.BOX) == 0.0

    def test_parallel_above(self):
        assert segment_bbox_mindist(0, 2, 1, 2, self.BOX) == pytest.approx(1.0)

    def test_diagonal_off_corner(self):
        d = segment_bbox_mindist(2, 2, 3, 3, self.BOX)
        assert d == pytest.approx(math.hypot(1, 1))

    @given(finite, finite, finite, finite,
           st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    def test_lower_bounds_sampled_pairs(self, ax, ay, bx, by, t, qx, qy):
        """mindist(seg, box) <= distance(point on seg, point in box)."""
        sx = ax + t * (bx - ax)
        sy = ay + t * (by - ay)
        d = segment_bbox_mindist(ax, ay, bx, by, self.BOX)
        assert d <= math.hypot(sx - qx, sy - qy) + 1e-9
