"""Tests for :mod:`repro.core.routes` (the future-work extension)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.routes import Route, recommend_route
from repro.errors import QueryError


class TestRecommendRoute:
    def test_visits_all_streets(self, small_city, small_engine):
        results = small_engine.top_k(["shop"], k=4, eps=0.0005)
        route = recommend_route(small_city.network, results)
        assert set(route.visited_street_ids) == \
            {r.street_id for r in results}

    def test_route_is_walkable(self, small_city, small_engine):
        """Consecutive route vertices must share a network edge."""
        results = small_engine.top_k(["food"], k=3, eps=0.0005)
        route = recommend_route(small_city.network, results)
        graph = small_city.network.as_networkx()
        for u, v in zip(route.vertex_ids, route.vertex_ids[1:]):
            assert graph.has_edge(u, v), f"no edge between {u} and {v}"

    def test_total_length_matches_edges(self, small_city, small_engine):
        results = small_engine.top_k(["shop"], k=3, eps=0.0005)
        route = recommend_route(small_city.network, results)
        graph = small_city.network.as_networkx()
        walked = sum(graph.edges[u, v]["length"]
                     for u, v in zip(route.vertex_ids, route.vertex_ids[1:]))
        assert route.total_length == pytest.approx(walked)

    def test_explicit_start_vertex(self, small_city, small_engine):
        results = small_engine.top_k(["shop"], k=2, eps=0.0005)
        start = next(iter(small_city.network.vertices))
        route = recommend_route(small_city.network, results,
                                start_vertex=start)
        assert route.vertex_ids[0] == start

    def test_unknown_start_vertex(self, small_city, small_engine):
        results = small_engine.top_k(["shop"], k=1, eps=0.0005)
        with pytest.raises(QueryError):
            recommend_route(small_city.network, results, start_vertex=-99)

    def test_empty_results(self, small_city):
        with pytest.raises(QueryError):
            recommend_route(small_city.network, [])

    def test_single_street_route(self, small_city, small_engine):
        results = small_engine.top_k(["shop"], k=1, eps=0.0005)
        route = recommend_route(small_city.network, results)
        assert isinstance(route, Route)
        assert route.visited_street_ids == (results[0].street_id,)
        assert route.total_length == 0.0
