"""Tests for :mod:`repro.network.model`."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network.model import (
    RoadNetwork,
    Segment,
    Street,
    Vertex,
    street_names,
)


def _simple_parts():
    vertices = [Vertex(0, 0.0, 0.0), Vertex(1, 1.0, 0.0), Vertex(2, 2.0, 0.0),
                Vertex(3, 1.0, 1.0)]
    segments = [
        Segment(0, 0, 0, 1, 0.0, 0.0, 1.0, 0.0),
        Segment(1, 0, 1, 2, 1.0, 0.0, 2.0, 0.0),
        Segment(2, 1, 1, 3, 1.0, 0.0, 1.0, 1.0),
    ]
    streets = [Street(0, "A Street", (0, 1)), Street(1, "B Lane", (2,))]
    return vertices, segments, streets


class TestAccessors:
    def test_lookup(self):
        network = RoadNetwork(*_simple_parts())
        assert network.vertex(1).x == 1.0
        assert network.segment(2).street_id == 1
        assert network.street(0).name == "A Street"

    def test_street_of_segment(self):
        network = RoadNetwork(*_simple_parts())
        assert network.street_of_segment(1).id == 0
        assert network.street_of_segment(2).id == 1

    def test_segments_of_street_order(self):
        network = RoadNetwork(*_simple_parts())
        assert [s.id for s in network.segments_of_street(0)] == [0, 1]

    def test_street_by_name(self):
        network = RoadNetwork(*_simple_parts())
        assert network.street_by_name("B Lane").id == 1
        with pytest.raises(KeyError):
            network.street_by_name("Missing Road")

    def test_street_names_helper(self):
        network = RoadNetwork(*_simple_parts())
        assert street_names(network, [1, 0]) == ["B Lane", "A Street"]


class TestDerived:
    def test_segment_length_precomputed(self):
        network = RoadNetwork(*_simple_parts())
        assert network.segment(0).length == pytest.approx(1.0)

    def test_street_length_sums_segments(self):
        network = RoadNetwork(*_simple_parts())
        assert network.street_length(0) == pytest.approx(2.0)

    def test_total_length(self):
        network = RoadNetwork(*_simple_parts())
        assert network.total_length() == pytest.approx(3.0)

    def test_street_bbox(self):
        network = RoadNetwork(*_simple_parts())
        box = network.street_bbox(0)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 2, 0)

    def test_network_bbox(self):
        network = RoadNetwork(*_simple_parts())
        box = network.bbox()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 2, 1)

    def test_stats_shape(self):
        stats = RoadNetwork(*_simple_parts()).stats()
        assert stats["num_segments"] == 3
        assert stats["num_streets"] == 2
        assert stats["min_segment_length"] == pytest.approx(1.0)
        assert stats["max_segment_length"] == pytest.approx(1.0)

    def test_segment_mbr(self):
        seg = Segment(0, 0, 0, 1, 2.0, 3.0, 0.0, 1.0)
        box = seg.mbr
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 1, 2, 3)

    def test_as_networkx(self):
        graph = RoadNetwork(*_simple_parts()).as_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.edges[0, 1]["street_id"] == 0
        assert graph.edges[1, 3]["length"] == pytest.approx(1.0)


class TestValidation:
    def test_valid_network_passes(self):
        RoadNetwork(*_simple_parts())  # should not raise

    def test_segment_with_unknown_vertex(self):
        vertices, segments, streets = _simple_parts()
        segments[0] = Segment(0, 0, 99, 1, 0.0, 0.0, 1.0, 0.0)
        with pytest.raises(NetworkError, match="unknown vertex"):
            RoadNetwork(vertices, segments, streets)

    def test_street_with_unknown_segment(self):
        vertices, segments, streets = _simple_parts()
        streets[1] = Street(1, "B Lane", (2, 42))
        with pytest.raises(NetworkError, match="unknown segment"):
            RoadNetwork(vertices, segments, streets)

    def test_segment_claimed_by_two_streets(self):
        vertices, segments, streets = _simple_parts()
        streets[1] = Street(1, "B Lane", (2, 1))
        with pytest.raises(NetworkError):
            RoadNetwork(vertices, segments, streets)

    def test_orphan_segment(self):
        vertices, segments, streets = _simple_parts()
        streets[1] = Street(1, "B Lane", (2,))
        segments.append(Segment(3, 1, 0, 3, 0.0, 0.0, 1.0, 1.0))
        with pytest.raises(NetworkError, match="belongs to no street"):
            RoadNetwork(vertices, segments, streets)

    def test_empty_street(self):
        vertices, segments, streets = _simple_parts()
        streets.append(Street(2, "Ghost Alley", ()))
        with pytest.raises(NetworkError, match="no segments"):
            RoadNetwork(vertices, segments, streets)

    def test_non_path_street(self):
        vertices, segments, streets = _simple_parts()
        # Segment 2 (1->3) does not touch segment... make street (0, 2) then
        # break the chain by using segments 0 (0-1) and a new distant one.
        vertices.append(Vertex(4, 9.0, 9.0))
        vertices.append(Vertex(5, 9.0, 8.0))
        segments.append(Segment(3, 2, 4, 5, 9.0, 9.0, 9.0, 8.0))
        streets.append(Street(2, "Broken Street", (3,)))
        # valid so far
        RoadNetwork(list(vertices), list(segments), list(streets))
        # now chain two disconnected segments in one street
        bad_streets = [Street(0, "A Street", (0, 3)),
                       Street(1, "B Lane", (2,)),
                       Street(2, "C", (1,))]
        bad_segments = [
            Segment(0, 0, 0, 1, 0.0, 0.0, 1.0, 0.0),
            Segment(1, 2, 1, 2, 1.0, 0.0, 2.0, 0.0),
            Segment(2, 1, 1, 3, 1.0, 0.0, 1.0, 1.0),
            Segment(3, 0, 4, 5, 9.0, 9.0, 9.0, 8.0),
        ]
        with pytest.raises(NetworkError, match="not a path"):
            RoadNetwork(vertices, bad_segments, bad_streets)

    def test_coordinate_mismatch(self):
        vertices, segments, streets = _simple_parts()
        segments[0] = Segment(0, 0, 0, 1, 0.5, 0.0, 1.0, 0.0)
        with pytest.raises(NetworkError, match="disagree"):
            RoadNetwork(vertices, segments, streets)

    def test_validate_false_skips_checks(self):
        vertices, segments, streets = _simple_parts()
        streets[1] = Street(1, "B Lane", (2, 42))
        # does not raise when validation is off
        RoadNetwork(vertices, segments, streets, validate=False)

    def test_empty_network_bbox_raises(self):
        network = RoadNetwork([], [], [], validate=False)
        with pytest.raises(NetworkError):
            network.bbox()
