"""Tests for the SOI algorithm (Algorithm 1) against the BL baseline.

The SOI algorithm must return *a* correct top-k: the same interest values
as exhaustive evaluation, and the same streets except possibly for ties at
the k-th value (Problem 1 permits any tie-breaking).
"""

from __future__ import annotations

import pytest

from repro.core.interest import street_interest_bruteforce
from repro.core.soi import AccessStrategy, SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.errors import QueryError


def assert_topk_equivalent(result, expected, tol: float = 1e-9) -> None:
    """Same interests (sorted desc); same streets above the boundary tie."""
    got = [r.interest for r in result]
    want = [r.interest for r in expected]
    assert got == pytest.approx(want), "interest values differ"
    if not want:
        return
    boundary = want[-1]
    got_ids = {r.street_id for r in result if r.interest > boundary + tol}
    want_ids = {r.street_id for r in expected
                if r.interest > boundary + tol}
    assert got_ids == want_ids, "streets above the tie boundary differ"


def brute_force_topk(network, pois, keywords, k, eps, weighted=False):
    """Reference answer straight from Definitions 1-3."""
    scored = []
    for street_id in network.streets:
        interest = street_interest_bruteforce(
            network, street_id, pois, frozenset(keywords), eps, weighted)
        if interest > 0:
            scored.append((interest, street_id))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return scored[:k]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("keywords", [["shop"], ["shop", "food"],
                                          ["food"], ["museum"]])
    def test_cross_fixture(self, cross_network, cross_pois, keywords):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        results = engine.top_k(keywords, k=2, eps=0.15)
        expected = brute_force_topk(cross_network, cross_pois, keywords,
                                    2, 0.15)
        assert [r.interest for r in results] == pytest.approx(
            [interest for interest, _sid in expected])
        assert [r.street_id for r in results] == \
            [sid for _interest, sid in expected]

    def test_unknown_keyword_returns_empty(self, cross_network, cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        assert engine.top_k(["nonexistent"], k=3, eps=0.15) == []

    def test_k_larger_than_interesting_streets(self, cross_network,
                                               cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        results = engine.top_k(["museum"], k=10, eps=0.15)
        # only Main Street has the museum POI nearby
        assert len(results) == 1
        assert results[0].street_name == "Main Street"


class TestAgainstBaseline:
    QUERIES = [
        (["shop"], 10),
        (["religion"], 5),
        (["food", "services"], 25),
        (["religion", "education", "food", "services"], 50),
        (["shop"], 1),
    ]

    @pytest.mark.parametrize("keywords,k", QUERIES)
    def test_small_city_equivalence(self, small_city, small_engine,
                                    keywords, k):
        baseline = BaselineSOI(small_engine)
        results = small_engine.top_k(keywords, k=k, eps=0.0005)
        expected = baseline.top_k(keywords, k=k, eps=0.0005)
        assert_topk_equivalent(results, expected)

    @pytest.mark.parametrize("strategy", list(AccessStrategy))
    def test_all_access_strategies_agree(self, small_city, small_engine,
                                         strategy):
        baseline = BaselineSOI(small_engine).top_k(["shop"], k=10,
                                                   eps=0.0005)
        results = small_engine.top_k(["shop"], k=10, eps=0.0005,
                                     strategy=strategy)
        assert_topk_equivalent(results, baseline)

    @pytest.mark.parametrize("prune", [True, False])
    def test_refinement_pruning_is_transparent(self, small_engine, prune):
        baseline = BaselineSOI(small_engine).top_k(["food"], k=15,
                                                   eps=0.0005)
        results = small_engine.top_k(["food"], k=15, eps=0.0005,
                                     prune_refinement=prune)
        assert_topk_equivalent(results, baseline)

    @pytest.mark.parametrize("eps", [0.0002, 0.0005, 0.0012])
    def test_eps_variations(self, small_engine, eps):
        baseline = BaselineSOI(small_engine).top_k(["shop"], k=10, eps=eps)
        results = small_engine.top_k(["shop"], k=10, eps=eps)
        assert_topk_equivalent(results, baseline)


class TestResultContract:
    def test_sorted_descending_with_id_ties(self, small_engine):
        results = small_engine.top_k(["food"], k=20, eps=0.0005)
        for prev, nxt in zip(results, results[1:]):
            assert (prev.interest, -prev.street_id) >= \
                (nxt.interest, -nxt.street_id) or \
                prev.interest > nxt.interest

    def test_no_zero_interest_streets(self, small_engine):
        results = small_engine.top_k(["religion"], k=100, eps=0.0005)
        assert all(r.interest > 0 for r in results)

    def test_best_segment_belongs_to_street(self, small_city, small_engine):
        for res in small_engine.top_k(["shop"], k=10, eps=0.0005):
            segment = small_city.network.segment(res.best_segment_id)
            assert segment.street_id == res.street_id

    def test_best_segment_attains_interest(self, small_city, small_engine):
        for res in small_engine.top_k(["shop"], k=5, eps=0.0005):
            exact = small_engine.segment_exact_interest(
                res.best_segment_id, ["shop"], eps=0.0005)
            assert exact == pytest.approx(res.interest)

    def test_street_names_populated(self, small_engine):
        for res in small_engine.top_k(["shop"], k=5, eps=0.0005):
            assert res.street_name


class TestWeightedQueries:
    def test_weighted_matches_weighted_bruteforce(self, cross_network):
        from repro.data.poi import POI, POISet

        pois = POISet([
            POI(0, 0.1, 0.05, frozenset({"shop"}), weight=5.0),
            POI(1, 0.01, 0.6, frozenset({"shop"}), weight=1.0),
            POI(2, 0.01, -0.6, frozenset({"shop"}), weight=1.0),
        ])
        engine = SOIEngine(cross_network, pois, cell_size=0.2)
        weighted = engine.top_k(["shop"], k=2, eps=0.15, weighted=True)
        expected = brute_force_topk(cross_network, pois, ["shop"], 2,
                                    0.15, weighted=True)
        assert [r.interest for r in weighted] == pytest.approx(
            [interest for interest, _sid in expected])

    def test_weighted_changes_ranking(self, cross_network):
        from repro.data.poi import POI, POISet

        # One heavy POI on Cross Street vs two light ones on Main Street.
        pois = POISet([
            POI(0, 0.02, 0.5, frozenset({"shop"}), weight=10.0),
            POI(1, 0.5, 0.02, frozenset({"shop"})),
            POI(2, 0.6, -0.02, frozenset({"shop"})),
        ])
        engine = SOIEngine(cross_network, pois, cell_size=0.2)
        unweighted = engine.top_k(["shop"], k=1, eps=0.1)
        weighted = engine.top_k(["shop"], k=1, eps=0.1, weighted=True)
        assert unweighted[0].street_name == "Main Street"
        assert weighted[0].street_name == "Cross Street"


class TestStatsAndValidation:
    def test_stats_phases_recorded(self, small_engine):
        _results, stats = small_engine.top_k_with_stats(["shop"], k=5,
                                                        eps=0.0005)
        assert set(stats.phase_seconds) == {"build", "filter", "refine"}
        assert stats.total_seconds > 0
        assert stats.segments_seen >= stats.segments_finalized_in_filter

    def test_soi_examines_fewer_segments_for_selective_queries(
            self, small_city, small_engine):
        _res, stats = small_engine.top_k_with_stats(["religion"], k=5,
                                                    eps=0.0005)
        assert stats.segments_seen < len(small_city.network.segments)

    def test_invalid_queries_raise(self, small_engine):
        with pytest.raises(QueryError):
            small_engine.top_k([], k=5)
        with pytest.raises(QueryError):
            small_engine.top_k(["shop"], k=0)
        with pytest.raises(QueryError):
            small_engine.top_k(["shop"], k=5, eps=-1.0)
