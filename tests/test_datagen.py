"""Tests for :mod:`repro.datagen` — determinism, structure, ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import vocab
from repro.datagen.city import City, CitySpec, generate_city
from repro.datagen.pois import CATEGORY_VOLUME
from repro.datagen.presets import CITY_PRESETS, build_preset, preset_spec

from tests.conftest import TEST_SPEC


class TestVocab:
    def test_categories_have_head_keywords(self):
        for category, pool in vocab.CATEGORIES.items():
            assert pool[0] == vocab.head_keyword(category)
            assert len(pool) >= 5

    def test_category_pools_disjoint(self):
        seen: dict[str, str] = {}
        for category, pool in vocab.CATEGORIES.items():
            for keyword in pool:
                assert keyword not in seen, (
                    f"{keyword!r} in both {seen.get(keyword)} and {category}")
                seen[keyword] = category

    def test_longtail_disjoint_from_categories(self):
        rng = np.random.default_rng(0)
        tokens = set()
        for _ in range(50):
            tokens |= vocab.longtail_keywords(rng)
        category_keywords = {k for pool in vocab.CATEGORIES.values()
                             for k in pool}
        assert not tokens & category_keywords

    def test_street_names_unique_for_many_indices(self):
        names = [vocab.street_name(i) for i in range(600)]
        assert len(set(names)) == len(names)

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            vocab.category_keywords("spaceport")


class TestGeneration:
    def test_deterministic(self):
        a = generate_city(TEST_SPEC)
        b = generate_city(TEST_SPEC)
        assert a.network.stats() == b.network.stats()
        assert len(a.pois) == len(b.pois)
        assert a.pois.xs.tolist() == b.pois.xs.tolist()
        assert [p.keywords for p in a.pois] == [p.keywords for p in b.pois]
        assert a.photos.xs.tolist() == b.photos.xs.tolist()
        assert a.ground_truth == b.ground_truth

    def test_different_seed_differs(self):
        spec = CitySpec(**{**_spec_dict(TEST_SPEC), "seed": 123})
        other = generate_city(spec)
        base = generate_city(TEST_SPEC)
        assert other.pois.xs.tolist() != base.pois.xs.tolist()

    def test_network_is_valid(self, small_city):
        small_city.network.validate()

    def test_ground_truth_streets_exist(self, small_city):
        for category, streets in small_city.ground_truth.items():
            assert len(streets) == TEST_SPEC.destinations_per_category
            for street_id in streets:
                assert street_id in small_city.network.streets

    def test_ground_truth_ranked_by_planted_density(self, small_city,
                                                    small_engine):
        """The top planted shopping street should rank high for 'shop'."""
        results = small_engine.top_k(["shop"], k=5, eps=0.0005)
        top_truth = small_city.ground_truth["shop"][0]
        assert top_truth in {r.street_id for r in results}

    def test_landmarks_on_streets(self, small_city):
        for landmark in small_city.landmarks:
            assert landmark.street_id in small_city.network.streets
            assert landmark.tag.startswith("landmark")

    def test_photo_population_structure(self, small_city):
        tags = small_city.photos.vocabulary()
        assert any(t.startswith("event") for t in tags)
        assert any(t.startswith("landmark") for t in tags)

    def test_authoritative_sources(self, small_city):
        sources = small_city.authoritative_sources("shop", size=3)
        assert len(sources) == 2
        truth = set(small_city.ground_truth["shop"])
        for source in sources:
            assert len(source) == 3
            assert set(source) <= truth


class TestPresets:
    def test_presets_ordered_london_berlin_vienna(self):
        sizes = {}
        for name in ("london", "berlin", "vienna"):
            spec = CITY_PRESETS[name]
            sizes[name] = (spec.n_horizontal * spec.n_vertical,
                           spec.n_background_pois + spec.misc_street_pois)
        assert sizes["london"] > sizes["berlin"] > sizes["vienna"]

    def test_preset_spec_scaling(self):
        half = preset_spec("vienna", scale=0.5)
        full = CITY_PRESETS["vienna"]
        assert half.n_background_pois < full.n_background_pois
        assert half.n_horizontal < full.n_horizontal
        assert half.seed == full.seed

    def test_preset_scale_validation(self):
        with pytest.raises(ValueError):
            preset_spec("vienna", scale=0.0)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset_spec("atlantis")

    def test_build_preset_cached(self):
        a = build_preset("vienna", scale=0.1)
        b = build_preset("vienna", scale=0.1)
        assert a is b
        assert isinstance(a, City)

    def test_category_volumes_cover_all_categories(self):
        assert set(CATEGORY_VOLUME) == set(vocab.CATEGORIES)


def _spec_dict(spec: CitySpec) -> dict:
    return {field: getattr(spec, field)
            for field in spec.__dataclass_fields__}
