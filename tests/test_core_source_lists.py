"""Tests for :mod:`repro.core.source_lists`."""

from __future__ import annotations

import pytest

from repro.core.source_lists import CellSourceList, SegmentSourceList


class TestCellSourceList:
    def test_pop_order_count_descending(self):
        sl1 = CellSourceList([((0, 0), 3), ((1, 1), 9), ((2, 2), 5)])
        assert sl1.pop() == (1, 1)
        assert sl1.pop() == (2, 2)
        assert sl1.pop() == (0, 0)
        assert sl1.pop() is None

    def test_tie_breaks_on_coordinates(self):
        sl1 = CellSourceList([((5, 5), 2), ((1, 1), 2)])
        assert sl1.pop() == (1, 1)

    def test_top_tracks_next_entry(self):
        sl1 = CellSourceList([((0, 0), 3), ((1, 1), 9)])
        assert sl1.top() == 9
        sl1.pop()
        assert sl1.top() == 3
        sl1.pop()
        assert sl1.top() == 0
        assert sl1.exhausted

    def test_empty_list(self):
        sl1 = CellSourceList([])
        assert sl1.top() == 0
        assert sl1.pop() is None
        assert len(sl1) == 0


class TestSegmentSourceList:
    def _make(self, descending: bool, final: set[int], seen: set[int]):
        entries = [(0, 5.0), (1, 1.0), (2, 3.0), (3, 4.0)]
        return SegmentSourceList(entries, descending,
                                 is_final=lambda sid: sid in final,
                                 is_seen=lambda sid: sid in seen)

    def test_pop_descending(self):
        sl = self._make(True, set(), set())
        assert [sl.pop() for _ in range(5)] == [0, 3, 2, 1, None]

    def test_pop_ascending(self):
        sl = self._make(False, set(), set())
        assert [sl.pop() for _ in range(5)] == [1, 2, 3, 0, None]

    def test_pop_skips_final_segments(self):
        final = {0, 2}
        sl = self._make(True, final, set())
        assert sl.pop() == 3
        final.add(1)
        assert sl.pop() is None

    def test_top_skips_seen_segments(self):
        seen = set()
        sl = self._make(True, set(), seen)
        assert sl.top() == 5.0
        seen.add(0)
        assert sl.top() == 4.0
        seen.update({3, 2, 1})
        assert sl.top() is None

    def test_top_and_pop_independent(self):
        seen = set()
        final = set()
        sl = self._make(False, final, seen)
        # A segment seen (but not final) is skipped by top but returned
        # by pop (accessing it finalises it).
        seen.add(1)
        assert sl.top() == 3.0
        assert sl.pop() == 1

    def test_exhausted_property(self):
        final = set()
        sl = self._make(True, final, set())
        assert not sl.exhausted
        final.update({0, 1, 2, 3})
        assert sl.exhausted
        assert sl.pop() is None

    def test_ties_break_on_id(self):
        sl = SegmentSourceList([(7, 2.0), (3, 2.0)], descending=True,
                               is_final=lambda s: False,
                               is_seen=lambda s: False)
        assert sl.pop() == 3

    def test_presorted_entries_respected(self):
        entries = ((2, 9.0), (0, 1.0))  # deliberately "wrong" order
        sl = SegmentSourceList(entries, descending=False,
                               is_final=lambda s: False,
                               is_seen=lambda s: False, presorted=True)
        assert sl.pop() == 2  # presorted order kept verbatim
