"""Tests for the project-wide analysis engine and interprocedural rules.

Covers the three tentpole layers (project index / AST cache, call graph,
reachability) plus a planted-bug + fixed-code pair for every
REP-C6xx/F7xx/R8xx rule, mirroring how ``tests/test_static_analysis.py``
exercises the file-local families.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.callgraph import CallGraph
from repro.analysis.config import LintConfig
from repro.analysis.engine import lint_project_sources
from repro.analysis.project import ASTCache, ProjectIndex, parse_source
from repro.analysis.reach import (
    backward_closure,
    call_path,
    fixed_point,
    reachable,
)

CONFIG = LintConfig()


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


# -- project index / module naming --------------------------------------------

def test_module_naming():
    assert parse_source("", "src/repro/serve/server.py").module == \
        "repro.serve.server"
    assert parse_source("", "src/repro/obs/__init__.py").module == "repro.obs"
    assert parse_source("", "tests/test_x.py").module == "tests.test_x"
    assert parse_source("", "benchmarks/bench_a.py").module == \
        "benchmarks.bench_a"


def test_in_package_classification():
    assert parse_source("", "src/repro/core/soi.py").in_package
    assert not parse_source("", "tests/test_x.py").in_package
    assert not parse_source("", "benchmarks/bench_a.py").in_package


def test_import_graph_tracks_internal_imports_only():
    project = ProjectIndex.from_sources({
        "repro/a.py": "import os\nfrom repro.b import helper\n",
        "repro/b.py": "def helper():\n    return 1\n",
        "repro/c.py": "from repro import a\n",
    })
    assert project.import_graph["repro.a"] == {"repro.b"}
    assert project.import_graph["repro.b"] == set()
    assert project.import_graph["repro.c"] == {"repro.a"}


def test_relative_import_resolution():
    project = ProjectIndex.from_sources({
        "repro/serve/server.py": "from .snapshot import IndexSnapshot\n",
        "repro/serve/snapshot.py": "class IndexSnapshot:\n    pass\n",
    })
    assert project.import_graph["repro.serve.server"] == \
        {"repro.serve.snapshot"}


def test_syntax_error_files_are_excluded_from_project():
    project = ProjectIndex.from_sources({
        "repro/ok.py": "x = 1\n",
        "repro/bad.py": "def broken(:\n",
    })
    assert len(project) == 1
    assert "repro.ok" in project.by_module


# -- AST cache ----------------------------------------------------------------

def test_ast_cache_hits_on_unchanged_content(tmp_path):
    cache = ASTCache()
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    first = cache.get(target, "mod.py")
    second = cache.get(target, "mod.py")
    assert cache.misses == 1 and cache.hits == 1
    assert second.tree is first.tree  # the parse is shared, not repeated


def test_ast_cache_invalidates_on_content_change(tmp_path):
    cache = ASTCache()
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    first = cache.get(target, "mod.py")
    target.write_text("x = 2\n", encoding="utf-8")
    second = cache.get(target, "mod.py")
    assert cache.misses == 2
    assert second.tree is not first.tree
    assert second.sha1 != first.sha1


def test_ast_cache_shares_tree_across_relpaths(tmp_path):
    cache = ASTCache()
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    first = cache.get(target, "a/mod.py")
    second = cache.get(target, "b/mod.py")
    assert second.tree is first.tree
    assert second.relpath == "b/mod.py"


# -- call graph ---------------------------------------------------------------

def _graph(sources: dict[str, str]) -> CallGraph:
    return CallGraph(ProjectIndex.from_sources(sources))


def test_callgraph_resolves_module_and_imported_functions():
    graph = _graph({
        "repro/a.py": ("from repro.b import helper\n"
                       "def run():\n"
                       "    helper()\n"
                       "    local()\n"
                       "def local():\n    pass\n"),
        "repro/b.py": "def helper():\n    pass\n",
    })
    assert graph.edges["repro.a.run"] == {"repro.b.helper", "repro.a.local"}


def test_callgraph_resolves_self_methods_and_mro():
    graph = _graph({
        "repro/a.py": (
            "class Base:\n"
            "    def shared(self):\n        pass\n"
            "class Child(Base):\n"
            "    def go(self):\n"
            "        self.shared()\n"
            "        self.own()\n"
            "    def own(self):\n        pass\n"),
    })
    assert graph.edges["repro.a.Child.go"] == \
        {"repro.a.Base.shared", "repro.a.Child.own"}


def test_callgraph_resolves_module_level_singletons():
    graph = _graph({
        "repro/obs.py": (
            "class Tracer:\n"
            "    def mark(self):\n        pass\n"
            "TRACER = Tracer()\n"),
        "repro/user.py": ("from repro.obs import TRACER\n"
                          "def use():\n"
                          "    TRACER.mark()\n"),
    })
    assert graph.instances["repro.obs.TRACER"] == "repro.obs.Tracer"
    assert graph.edges["repro.user.use"] == {"repro.obs.Tracer.mark"}


def test_callgraph_resolves_annotated_parameters():
    graph = _graph({
        "repro/snap.py": ("class Snapshot:\n"
                          "    def array(self, name):\n        pass\n"),
        "repro/view.py": (
            "from repro.snap import Snapshot\n"
            "def attach(snapshot: 'Snapshot'):\n"
            "    return snapshot.array('mass')\n"),
    })
    assert graph.edges["repro.view.attach"] == {"repro.snap.Snapshot.array"}


def test_callgraph_resolves_local_constructor_types():
    graph = _graph({
        "repro/a.py": (
            "class Pool:\n"
            "    def get(self):\n        pass\n"
            "def run():\n"
            "    pool = Pool()\n"
            "    pool.get()\n"),
    })
    assert "repro.a.Pool.get" in graph.edges["repro.a.run"]


def test_callgraph_instantiation_edges_to_init():
    graph = _graph({
        "repro/a.py": (
            "class Server:\n"
            "    def __init__(self):\n        pass\n"
            "def boot():\n"
            "    Server()\n"),
    })
    assert graph.edges["repro.a.boot"] == {"repro.a.Server.__init__"}


def test_callgraph_counts_unresolved_dynamic_dispatch():
    graph = _graph({
        "repro/a.py": ("def run(callback):\n"
                       "    callback.fire()\n"),
    })
    assert graph.unresolved.get("repro.a", 0) == 1


def test_callgraph_is_conservative_on_rebound_locals():
    graph = _graph({
        "repro/a.py": (
            "class A:\n"
            "    def hit(self):\n        pass\n"
            "def run(flag):\n"
            "    obj = A()\n"
            "    obj = flag\n"
            "    obj.hit()\n"),
    })
    # No method edge: the receiver was rebound, so its type is unknown
    # (and A defines no __init__ for the constructor call to land on).
    assert graph.edges["repro.a.run"] == set()


# -- reachability -------------------------------------------------------------

def test_reachable_and_call_path():
    edges = {"a": ["b"], "b": ["c"], "c": [], "d": ["a"]}
    parents = reachable(edges, ["a"])
    assert set(parents) == {"a", "b", "c"}
    assert call_path(parents, "c") == ["a", "b", "c"]


def test_reachable_handles_cycles_and_missing_roots():
    edges = {"a": ["b"], "b": ["a"]}
    parents = reachable(edges, ["a", "ghost"])
    assert set(parents) == {"a", "b", "ghost"}


def test_backward_closure():
    edges = {"a": ["b"], "b": ["c"], "x": ["c"]}
    assert backward_closure(edges, ["c"]) == {"a", "b", "c", "x"}


def test_fixed_point_propagates_facts():
    edges = {"a": ["b"], "b": ["c"]}
    facts = fixed_point(
        ["a", "b", "c"], edges,
        init=lambda n: frozenset({"seed"}) if n == "a" else frozenset(),
        transfer=lambda callee, facts: facts)
    assert facts["c"] == frozenset({"seed"})


# -- REP-C601: worker shared-state writes -------------------------------------

def test_c601_fires_on_transitive_module_state_write():
    findings = lint_project_sources({
        "repro/serve/server.py": (
            "CACHE = {}\n"
            "def _worker_main(tasks):\n"
            "    helper(tasks)\n"
            "def helper(x):\n"
            "    CACHE[x] = 1\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-C601"]
    assert "via repro.serve.server._worker_main" in findings[0].message


def test_c601_fires_on_mutator_call_and_global_rebind():
    findings = lint_project_sources({
        "repro/serve/server.py": (
            "SEEN = []\n"
            "GEN = {}\n"
            "def _worker_main(task):\n"
            "    global GEN\n"
            "    SEEN.append(task)\n"
            "    GEN = {}\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-C601", "REP-C601"]


def test_c601_silent_on_local_state_and_unreachable_writers():
    findings = lint_project_sources({
        "repro/serve/server.py": (
            "CACHE = {}\n"
            "def _worker_main(tasks):\n"
            "    cache = {}\n"
            "    cache[tasks] = 1\n"
            "def not_reachable(x):\n"
            "    CACHE[x] = 1\n"),
    }, config=CONFIG)
    assert findings == []


# -- REP-C602: snapshot view mutation -----------------------------------------

def test_c602_fires_on_view_write_and_writeable_flip():
    findings = lint_project_sources({
        "repro/serve/views.py": (
            "def attach(snapshot):\n"
            "    arr = snapshot.array('mass')\n"
            "    arr[0] = 1.0\n"
            "    arr.flags.writeable = True\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-C602", "REP-C602"]


def test_c602_fires_on_array_mutator_via_annotation():
    findings = lint_project_sources({
        "repro/serve/snapshot.py": ("class IndexSnapshot:\n"
                                    "    def array(self, name):\n"
                                    "        pass\n"),
        "repro/serve/views.py": (
            "from repro.serve.snapshot import IndexSnapshot\n"
            "def attach(s: IndexSnapshot):\n"
            "    view = s.array('mass')\n"
            "    view.fill(0.0)\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-C602"]


def test_c602_silent_on_reads_and_readonly_marking():
    findings = lint_project_sources({
        "repro/serve/views.py": (
            "def attach(snapshot):\n"
            "    arr = snapshot.array('mass')\n"
            "    arr.flags.writeable = False\n"
            "    return arr[0]\n"),
    }, config=CONFIG)
    assert findings == []


# -- REP-C603: lock-guard discipline ------------------------------------------

_LOCKED_CLASS = (
    "import threading\n"
    "class Ring:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._items = []\n"
    "    def push(self, item):\n"
    "        with self._lock:\n"
    "            self._items.append(item)\n"
)


def test_c603_fires_on_unlocked_access():
    findings = lint_project_sources({
        "repro/obs/ring.py": _LOCKED_CLASS + (
            "    def __len__(self):\n"
            "        return len(self._items)\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-C603"]
    assert "Ring._items" in findings[0].message


def test_c603_silent_when_access_is_locked_or_in_init():
    findings = lint_project_sources({
        "repro/obs/ring.py": _LOCKED_CLASS + (
            "    def __len__(self):\n"
            "        with self._lock:\n"
            "            return len(self._items)\n"),
    }, config=CONFIG)
    assert findings == []


def test_c603_ignores_classes_without_locks():
    findings = lint_project_sources({
        "repro/obs/plain.py": (
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._items = []\n"
            "    def push(self, item):\n"
            "        self._items.append(item)\n"),
    }, config=CONFIG)
    assert findings == []


# -- REP-F701/F702: determinism flow ------------------------------------------

def test_f701_fires_on_transitive_wall_clock():
    findings = lint_project_sources({
        "repro/core/soi.py": (
            "import time\n"
            "class SOIEngine:\n"
            "    def top_k(self, q):\n"
            "        return self._score(q)\n"
            "    def _score(self, q):\n"
            "        return time.time()\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-F701"]
    assert "repro.core.soi.SOIEngine.top_k" in findings[0].message


def test_f701_fires_on_unseeded_rng():
    findings = lint_project_sources({
        "repro/serve/server.py": (
            "import random\n"
            "def serve_request(engine, photos, request, describers):\n"
            "    return random.random()\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-F701"]


def test_f701_silent_on_monotonic_timers_and_exempt_modules():
    findings = lint_project_sources({
        "repro/core/soi.py": (
            "import time\n"
            "from repro.obs.clock import stamp\n"
            "class SOIEngine:\n"
            "    def top_k(self, q):\n"
            "        t = time.perf_counter()\n"
            "        stamp()\n"
            "        return t\n"),
        # obs is flow-exempt: sanctioned telemetry may read the wall clock
        "repro/obs/clock.py": ("import time\n"
                               "def stamp():\n"
                               "    return time.time()\n"),
    }, config=CONFIG)
    assert findings == []


def test_f702_fires_on_env_reads_in_hot_path():
    findings = lint_project_sources({
        "repro/core/soi.py": (
            "import os\n"
            "class SOIEngine:\n"
            "    def top_k(self, q):\n"
            "        a = os.getenv('REPRO_MODE')\n"
            "        b = os.environ['HOME']\n"
            "        return (a, b)\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-F702", "REP-F702"]


def test_f702_silent_off_the_hot_path():
    findings = lint_project_sources({
        "repro/core/soi.py": (
            "import os\n"
            "def startup_config():\n"
            "    return os.getenv('REPRO_MODE')\n"),
    }, config=CONFIG)
    assert findings == []


# -- REP-R801: SharedMemory lifecycle -----------------------------------------

def test_r801_fires_without_exception_edge_release():
    findings = lint_project_sources({
        "repro/serve/snapshot.py": (
            "from multiprocessing import shared_memory\n"
            "def export(name):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True,"
            " size=64)\n"
            "    shm.buf[0] = 1\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-R801"]


def test_r801_silent_with_close_on_exception_edge():
    findings = lint_project_sources({
        "repro/serve/snapshot.py": (
            "from multiprocessing import shared_memory\n"
            "def export(name):\n"
            "    shm = shared_memory.SharedMemory(name=name, create=True,"
            " size=64)\n"
            "    try:\n"
            "        shm.buf[0] = 1\n"
            "    except BaseException:\n"
            "        shm.close()\n"
            "        shm.unlink()\n"
            "        raise\n"),
    }, config=CONFIG)
    assert findings == []


def test_r801_fires_on_escape_to_class_without_release():
    findings = lint_project_sources({
        "repro/serve/snapshot.py": (
            "from multiprocessing import shared_memory\n"
            "class Holder:\n"
            "    def __init__(self, shm):\n"
            "        self._shm = shm\n"
            "def attach(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return Holder(shm)\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-R801"]
    assert "Holder" in findings[0].message


def test_r801_silent_when_owner_class_can_release():
    findings = lint_project_sources({
        "repro/serve/snapshot.py": (
            "from multiprocessing import shared_memory\n"
            "class Holder:\n"
            "    def __init__(self, shm):\n"
            "        self._shm = shm\n"
            "    def close(self):\n"
            "        self._shm.close()\n"
            "def attach(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return Holder(shm)\n"),
    }, config=CONFIG)
    assert findings == []


def test_r801_silent_when_handle_is_returned_raw():
    findings = lint_project_sources({
        "repro/serve/snapshot.py": (
            "from multiprocessing import shared_memory\n"
            "def attach(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return shm\n"),
    }, config=CONFIG)
    assert findings == []


# -- REP-R802: unclosed handles -----------------------------------------------

def test_r802_fires_on_unmanaged_open():
    findings = lint_project_sources({
        "benchmarks/out.py": (
            "def dump(path, rows):\n"
            "    f = open(path, 'w')\n"
            "    f.write(str(rows))\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-R802"]


def test_r802_fires_on_open_without_binding():
    findings = lint_project_sources({
        "benchmarks/out.py": ("def slurp(path):\n"
                              "    return open(path).read()\n"),
    }, config=CONFIG)
    assert rules_of(findings) == ["REP-R802"]


def test_r802_silent_with_with_or_close():
    findings = lint_project_sources({
        "benchmarks/out.py": (
            "def dump(path, rows):\n"
            "    with open(path, 'w') as f:\n"
            "        f.write(str(rows))\n"
            "def dump2(path, rows):\n"
            "    f = open(path, 'w')\n"
            "    try:\n"
            "        f.write(str(rows))\n"
            "    finally:\n"
            "        f.close()\n"),
    }, config=CONFIG)
    assert findings == []


# -- suppressions over project findings ---------------------------------------

def test_project_findings_honour_inline_suppressions():
    findings = lint_project_sources({
        "repro/obs/ring.py": _LOCKED_CLASS + (
            "    def __len__(self):\n"
            "        return len(self._items)"
            "  # repro-lint: disable=REP-C603 (benchmarked lock-free read)\n"),
    }, config=CONFIG)
    assert findings == []


def test_project_findings_carry_fingerprints():
    findings = lint_project_sources({
        "repro/obs/ring.py": _LOCKED_CLASS + (
            "    def __len__(self):\n"
            "        return len(self._items)\n"),
    }, config=CONFIG)
    assert findings and all(f.fingerprint for f in findings)
