"""Tests for :mod:`repro.data.photo`."""

from __future__ import annotations

import pytest

from repro.data.photo import Photo, PhotoSet
from repro.errors import DataError


class TestPhoto:
    def test_keywords_normalised(self):
        photo = Photo(0, 0.0, 0.0, frozenset({" Sunset", "RIVER "}))
        assert photo.keywords == frozenset({"sunset", "river"})

    def test_distance_to(self):
        a = Photo(0, 0.0, 0.0)
        b = Photo(1, 3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_empty_tags_allowed(self):
        assert Photo(0, 0, 0).keywords == frozenset()


class TestPhotoSet:
    def _sample(self) -> PhotoSet:
        return PhotoSet([
            Photo(5, 0.0, 0.0, frozenset({"a"})),
            Photo(6, 1.0, 0.0, frozenset({"b", "c"})),
            Photo(7, 0.0, 1.0, frozenset()),
        ])

    def test_container_protocol(self):
        photos = self._sample()
        assert len(photos) == 3
        assert [p.id for p in photos] == [5, 6, 7]
        assert photos[2].id == 7
        assert photos.by_id(6).keywords == frozenset({"b", "c"})
        assert photos.position_of(7) == 2

    def test_duplicate_ids_raise(self):
        with pytest.raises(DataError, match="duplicate"):
            PhotoSet([Photo(1, 0, 0), Photo(1, 1, 1)])

    def test_subset_preserves_order(self):
        photos = self._sample()
        sub = photos.subset([2, 0])
        assert [p.id for p in sub] == [7, 5]
        assert sub.xs.tolist() == [0.0, 0.0]
        assert sub.ys.tolist() == [1.0, 0.0]

    def test_vocabulary(self):
        assert self._sample().vocabulary() == frozenset({"a", "b", "c"})

    def test_empty(self):
        photos = PhotoSet([])
        assert len(photos) == 0
        assert photos.vocabulary() == frozenset()
