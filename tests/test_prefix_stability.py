"""The prefix-stability property behind dominated-k cache reuse.

The result cache answers a k′-request from a cached k-entry (k′ ≤ k) by
slicing, which is only sound if the payload kind is *prefix-stable*:
k-SOI ranks ``sorted(..., key=(-interest, street_id))`` then slices, so
``top_k(k′) == top_k(k)[:k′]`` under the deterministic tie-break.  These
tests state that property directly — over Hypothesis-generated inputs,
over the Figure 4 preset city, plain and with runtime contracts enabled
(``REPRO_CHECK=1`` semantics).

Describe selections are **not** prefix-stable: Equation 10 normalises
the diversity term by ``λ / (k - 1)``, so the requested summary size
changes every marginal value and the greedy argmax can flip between
``k`` and ``k′`` runs.  ``test_describe_selection_is_not_prefix_stable``
pins a concrete counterexample (found by Hypothesis against an earlier
draft that assumed the property) — it is why
:func:`repro.perf.result_cache.request_cache_key` keeps ``k`` in
describe keys and restricts their reuse to exact-signature hits.  What
*does* hold for describers, and what exact-k caching relies on, is
determinism: the same profile and parameters always select the same
photos, in the same order, for Greedy and ST_Rel+Div alike.

The runtime side of the same guarantee (a poisoned cache entry must not
be served silently under contracts) lives in ``test_result_cache.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import contracts
from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.profile import StreetProfile, build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.soi import AccessStrategy, SOIEngine
from repro.data.keywords import KeywordFrequencyVector
from repro.geometry.bbox import BBox

from tests.conftest import random_networks, random_photos, random_pois


class check_mode:
    """Toggle runtime contracts for one example (``REPRO_CHECK`` semantics)."""

    def __init__(self, on: bool) -> None:
        self.on = on

    def __enter__(self) -> None:
        self.previous = contracts.ENABLED
        contracts.enable_contracts(self.on)

    def __exit__(self, *exc) -> None:
        contracts.enable_contracts(self.previous)


# -- k-SOI --------------------------------------------------------------------

@given(network=random_networks(),
       pois=random_pois(min_size=1, max_size=25),
       k=st.integers(min_value=2, max_value=12),
       strategy=st.sampled_from(list(AccessStrategy)),
       keywords=st.lists(st.sampled_from(["shop", "food", "bar", "art"]),
                         min_size=1, max_size=3, unique=True))
@settings(max_examples=40, deadline=None)
def test_soi_ranking_is_prefix_stable(network, pois, k, strategy, keywords):
    engine = SOIEngine(network, pois, cell_size=0.0015)
    full = engine.top_k(keywords, k=k, eps=0.001, strategy=strategy)
    for k_prime in range(1, k + 1):
        assert engine.top_k(keywords, k=k_prime, eps=0.001,
                            strategy=strategy) == full[:k_prime]


@pytest.fixture(scope="module")
def fig4_engine():
    """The scaled-down Figure 4 city preset (built once per module)."""
    from repro.datagen import build_preset

    city = build_preset("vienna", 0.1)
    return city, SOIEngine(city.network, city.pois)


@pytest.mark.parametrize("check", [False, True], ids=["plain", "contracts"])
@given(k=st.integers(min_value=2, max_value=100),
       num_keywords=st.integers(min_value=1, max_value=4),
       weighted=st.booleans(),
       data=st.data())
@settings(max_examples=25, deadline=None)
def test_soi_prefix_stable_on_fig4_preset(fig4_engine, check, k,
                                          num_keywords, weighted, data):
    from repro.eval.experiments import PAPER_QUERY_KEYWORDS

    _, engine = fig4_engine
    keywords = PAPER_QUERY_KEYWORDS[:num_keywords]
    k_prime = data.draw(st.integers(min_value=1, max_value=k - 1))
    with check_mode(check):
        full = engine.top_k(keywords, k=k, eps=0.0005, weighted=weighted)
        assert engine.top_k(keywords, k=k_prime, eps=0.0005,
                            weighted=weighted) == full[:k_prime]


# -- describe -----------------------------------------------------------------

def photo_profile(photos, rho: float = 0.004) -> StreetProfile:
    extent = BBox(-0.005, -0.005, 0.025, 0.025)
    phi = KeywordFrequencyVector.from_keyword_sets(
        p.keywords for p in photos)
    return StreetProfile(photos=photos, phi=phi, max_d=extent.diagonal,
                         extent=extent, rho=rho)


def test_describe_selection_is_not_prefix_stable():
    """The counterexample behind exact-k describe caching.

    Photo 0 is relevant-but-near, photos 2/3 are textual twins far
    apart.  At k=3 relevance wins round 3 (diversity is scaled by
    ``λ/2``); at k=4 the scale drops to ``λ/3``... the argmax of round 3
    flips, so ``select(3) != select(4)[:3]``.  Slicing a cached k=4
    describe payload for a k=3 request would therefore serve a wrong
    (non-bit-identical) summary — which is why describe cache keys carry
    ``k`` and are only reused on exact hits.
    """
    from repro.data.photo import Photo, PhotoSet

    photos = PhotoSet([
        Photo(0, 0.012517660204964776, 0.008459959023698522, frozenset()),
        Photo(1, 0.00850151342202751, 0.001262539107874532,
              frozenset({"food"})),
        Photo(2, 0.0008917558544087002, 0.0018597921558449262,
              frozenset({"bank", "club", "park", "shop"})),
        Photo(3, 0.0, 0.019384269015494535,
              frozenset({"bank", "club", "park", "shop"})),
        Photo(4, 0.00850151342202751, 0.001262539107874532,
              frozenset({"food"})),
        Photo(5, 0.0, 0.0, frozenset()),
    ])
    profile = photo_profile(photos)
    describer = GreedyDescriber(profile)
    assert describer.select(3, 0.7, 0.0) == [2, 1, 0]
    assert describer.select(4, 0.7, 0.0) == [2, 1, 3, 0]
    # Same counterexample through the bounded method: both describers
    # stay bit-identical to each other at every fixed k.
    fast = STRelDivDescriber(profile)
    assert fast.select(3, 0.7, 0.0) == [2, 1, 0]
    assert fast.select(4, 0.7, 0.0) == [2, 1, 3, 0]


@given(photos=random_photos(min_size=2, max_size=30),
       k=st.integers(min_value=1, max_value=10),
       lam=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
       w=st.sampled_from([0.0, 0.5, 1.0]))
@settings(max_examples=40, deadline=None)
def test_describe_selection_is_deterministic_at_fixed_k(photos, k, lam, w):
    """Exact-k reuse is sound: repeated selection is bit-identical."""
    profile = photo_profile(photos)
    for describer in (GreedyDescriber(profile), STRelDivDescriber(profile)):
        first = describer.select(k, lam, w)
        assert describer.select(k, lam, w) == first


@pytest.mark.parametrize("check", [False, True], ids=["plain", "contracts"])
@given(k=st.integers(min_value=1, max_value=20),
       lam=st.sampled_from([0.2, 0.5, 0.8]),
       w=st.sampled_from([0.3, 0.5, 0.7]))
@settings(max_examples=15, deadline=None)
def test_describe_deterministic_on_fig6_preset(fig4_engine, check, k, lam, w):
    """Figure 6's setting: repeat MMR selections over a preset street."""
    city, engine = fig4_engine
    top = engine.top_k(["shop"], k=1, eps=0.0005)[0]
    profile = build_street_profile(city.network, top.street_id,
                                   city.photos, eps=0.0005)
    with check_mode(check):
        greedy = GreedyDescriber(profile).select(k, lam, w)
        assert GreedyDescriber(profile).select(k, lam, w) == greedy
        assert STRelDivDescriber(profile).select(k, lam, w) == greedy
