"""Obs v2: quantile sketches, trace context, OpenMetrics, trace stitching.

The Hypothesis properties pin the two guarantees the serve layer leans
on: sketch quantiles bracket the exact order statistic within one log2
bucket, and merging worker dumps is order-independent — the parent's
live percentiles cannot depend on response arrival order.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.obs.export import (
    spans_to_chrome,
    stitch_serve_requests,
    validate_serve_trace,
)
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    QuantileSketch,
    bucket_exponent,
    record_serve_request,
)
from repro.obs.openmetrics import (
    SUMMARY_QUANTILES,
    metric_name,
    registry_to_openmetrics,
    write_openmetrics,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracer import (
    DROPPED_SPANS_METRIC,
    SPAN_NAMES,
    TRACER,
    Tracer,
    current_trace_id,
    mint_trace_id,
    trace_context,
    trace_span,
    tracing_scope,
)

# -- quantile sketch ---------------------------------------------------------

latencies = st.lists(
    st.floats(min_value=1e-9, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)

# Integer-valued observations keep every partial sum exact (< 2**53), so
# order-invariance can be asserted with == instead of approx.
exact_latencies = st.lists(st.integers(min_value=1, max_value=2**40),
                           min_size=1, max_size=60)


@given(latencies, st.sampled_from([0.5, 0.9, 0.99]))
def test_sketch_quantiles_bracket_exact_percentile(values, q):
    """quantile_bounds bracket np.percentile within one log2 bucket."""
    sketch = QuantileSketch()
    for value in values:
        sketch.observe(value)
    exact = float(np.percentile(values, q * 100, method="inverted_cdf"))
    low, high = sketch.quantile_bounds(q)
    assert low <= exact <= high
    # The bracket never spans more than the one bucket holding the rank.
    assert bucket_exponent(low) == bucket_exponent(high)
    # quantile() is the bracket's upper (conservative) edge.
    assert sketch.quantile(q) == high


@given(exact_latencies, st.integers(min_value=0, max_value=60))
def test_sketch_merge_and_observe_order_never_change_the_result(values, cut):
    """Worker dumps merge commutatively; observation order is irrelevant."""
    cut = min(cut, len(values))

    def build(chunk, offset):
        sketch = QuantileSketch()
        for i, value in enumerate(chunk):
            sketch.observe(float(value),
                           exemplar=mint_trace_id(offset + i))
        return sketch

    first = build(values[:cut], 0).to_dict()
    second = build(values[cut:], cut).to_dict()
    ab = QuantileSketch()
    ab.merge_dict(first)
    ab.merge_dict(second)
    ba = QuantileSketch()
    ba.merge_dict(second)
    ba.merge_dict(first)
    assert ab.to_dict() == ba.to_dict()

    whole = build(values, 0)
    assert ab.to_dict() == whole.to_dict()
    reverse = QuantileSketch()
    for i, value in reversed(list(enumerate(values))):
        reverse.observe(float(value), exemplar=mint_trace_id(i))
    assert reverse.to_dict() == whole.to_dict()


def test_sketch_exemplar_tie_break_is_deterministic():
    forward = QuantileSketch()
    forward.observe(1.5, exemplar="req-000002")
    forward.observe(1.5, exemplar="req-000001")
    backward = QuantileSketch()
    backward.observe(1.5, exemplar="req-000001")
    backward.observe(1.5, exemplar="req-000002")
    assert forward.exemplar(1.0) == backward.exemplar(1.0) == "req-000001"
    # A concrete id always beats None, in either order.
    anon = QuantileSketch()
    anon.observe(1.5)
    anon.observe(1.5, exemplar="req-000009")
    assert anon.exemplar(1.0) == "req-000009"


def test_empty_sketch_answers_zero():
    sketch = QuantileSketch()
    assert sketch.quantile(0.99) == 0.0
    assert sketch.quantile_bounds(0.5) == (0.0, 0.0)
    assert sketch.exemplar(0.5) is None
    assert sketch.mean == 0.0


def test_record_serve_request_feeds_per_kind_sketch():
    registry = MetricsRegistry()
    record_serve_request("soi", 0.5, trace_id="req-000001",
                         registry=registry)
    record_serve_request("describe", 0.25, trace_id="req-000002",
                         error=True, registry=registry)
    assert registry.counter("serve.requests") == 2
    assert registry.counter("serve.errors") == 1
    sketch = registry.sketch("serve.latency.soi_s")
    assert sketch is not None and sketch.count == 1
    assert sketch.exemplar(1.0) == "req-000001"
    assert registry.sketch_names(prefix="serve.latency.") == [
        "serve.latency.describe_s", "serve.latency.soi_s"]


# -- trace context -----------------------------------------------------------

def test_mint_trace_id_is_deterministic():
    assert mint_trace_id(7) == "req-000007"
    assert mint_trace_id(7) == mint_trace_id(7)
    assert mint_trace_id(3, namespace="bench") == "bench-000003"


def test_trace_context_binds_nests_and_restores():
    assert current_trace_id() is None
    with trace_context("req-000001"):
        assert current_trace_id() == "req-000001"
        with trace_context("req-000002"):
            assert current_trace_id() == "req-000002"
        assert current_trace_id() == "req-000001"
    assert current_trace_id() is None


def test_finished_spans_carry_the_bound_trace_id():
    assert "serve.request" in SPAN_NAMES
    mark = TRACER.mark()
    with tracing_scope(True):
        with trace_context("req-000042"):
            with trace_span("soi.filter"):
                pass
        with trace_span("soi.refine"):
            pass
    spans = {span.name: span for span in TRACER.spans_since(mark)}
    assert spans["soi.filter"].trace_id == "req-000042"
    assert spans["soi.refine"].trace_id is None
    round_trip = type(spans["soi.filter"]).from_dict(
        spans["soi.filter"].to_dict())
    assert round_trip.trace_id == "req-000042"


def test_ring_buffer_eviction_bumps_the_dropped_counter():
    tracer = Tracer(capacity=1)
    before = REGISTRY.counter(DROPPED_SPANS_METRIC)
    tracer.finish(tracer.begin("a"))
    assert tracer.dropped == 0
    tracer.finish(tracer.begin("b"))
    assert tracer.dropped == 1
    assert REGISTRY.counter(DROPPED_SPANS_METRIC) == before + 1


# -- slowlog trace ids -------------------------------------------------------

def test_slowlog_entries_default_to_the_bound_trace_id():
    log = SlowQueryLog(threshold_s=0.0)
    with trace_context("req-000042"):
        assert log.maybe_record("soi", {"k": 5}, 0.01)
    assert log.maybe_record("soi", {}, 0.01, trace_id="req-explicit")
    assert log.maybe_record("soi", {}, 0.01)  # outside any context
    ids = [record["trace_id"] for record in log.records()]
    assert ids == ["req-000042", "req-explicit", None]


# -- OpenMetrics exposition --------------------------------------------------

def test_metric_name_sanitisation():
    assert metric_name("serve.request_s") == "repro_serve_request_s"
    assert metric_name("soi.phase.pull-2_s") == "repro_soi_phase_pull_2_s"
    assert metric_name("repro_already") == "repro_already"


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("serve.requests", 3)
    registry.set_gauge("session.pool_size", 2.0)
    registry.observe("serve.request_s", 0.75)
    registry.observe("serve.request_s", 3.0)
    registry.observe_sketch("serve.latency.soi_s", 0.75,
                            exemplar="req-000001")
    registry.observe_sketch("serve.latency.soi_s", 3.0,
                            exemplar="req-000002")
    return registry


def test_openmetrics_families_and_terminator():
    text = registry_to_openmetrics(sample_registry())
    lines = text.splitlines()
    assert "# TYPE repro_serve_requests counter" in lines
    assert "repro_serve_requests_total 3" in lines
    assert "# TYPE repro_session_pool_size gauge" in lines
    assert "repro_session_pool_size 2" in lines
    assert "# TYPE repro_serve_request_s histogram" in lines
    # 0.75 lands in (0.5, 1], 3.0 in (2, 4]; buckets are cumulative.
    assert 'repro_serve_request_s_bucket{le="1"} 1' in lines
    assert 'repro_serve_request_s_bucket{le="4"} 2' in lines
    assert 'repro_serve_request_s_bucket{le="+Inf"} 2' in lines
    assert "repro_serve_request_s_count 2" in lines
    assert "# TYPE repro_serve_latency_soi_s summary" in lines
    assert 'repro_serve_latency_soi_s{quantile="0.5"} 0.75' in lines
    assert 'repro_serve_latency_soi_s{quantile="0.99"} 3' in lines
    assert "repro_serve_latency_soi_s_count 2" in lines
    assert text.endswith("# EOF\n")


def test_openmetrics_output_is_stable_and_timestamp_free():
    registry = sample_registry()
    text = registry_to_openmetrics(registry)
    assert text == registry_to_openmetrics(registry)
    assert text == registry_to_openmetrics(registry.to_dict())
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        # OpenMetrics timestamps would be a third token; we never emit them.
        assert len(line.split(" ")) == 2, line


def test_openmetrics_summary_matches_sketch_quantiles():
    registry = sample_registry()
    sketch = registry.sketch("serve.latency.soi_s")
    text = registry_to_openmetrics(registry)
    for q in SUMMARY_QUANTILES:
        needle = f'repro_serve_latency_soi_s{{quantile="{q}"}}'
        line = next(line for line in text.splitlines()
                    if line.startswith(needle))
        assert float(line.split(" ")[1]) == sketch.quantile(q)


def test_write_openmetrics_round_trips(tmp_path):
    registry = sample_registry()
    path = write_openmetrics(tmp_path / "metrics.prom", registry)
    assert path.read_text(encoding="utf-8") == \
        registry_to_openmetrics(registry)


# -- cross-process stitching -------------------------------------------------

def worker_span(span_id, parent_id, name, start_ns, end_ns, **attrs):
    """A shipped worker span dict (``SpanRecord.to_dict`` shape)."""
    out = {"span_id": span_id, "parent_id": parent_id, "name": name,
           "start_ns": start_ns, "end_ns": end_ns,
           "duration_ns": end_ns - start_ns, "thread_id": 1234}
    if attrs:
        out["attrs"] = attrs
    return out


def fake_request(seq, worker, worker_spans, submit_ns, arrival_ns):
    return {"seq": seq, "trace_id": mint_trace_id(seq), "worker": worker,
            "kind": "soi", "submit_ns": submit_ns, "arrival_ns": arrival_ns,
            "queue_wait_s": 0.001, "batch_group": "('soi', ('x',))",
            "worker_spans": worker_spans}


def two_request_log():
    # Worker clocks start at wildly different origins than the parent's.
    worker0 = [worker_span(0, 1, "soi.filter",
                           7_000_000_100, 7_000_000_600, k=5),
               worker_span(1, -1, "soi.query", 7_000_000_000, 7_000_001_000)]
    worker1 = [worker_span(0, -1, "describe.select",
                           99_000_000_000, 99_000_002_000)]
    return [fake_request(0, 0, worker0, submit_ns=1_000, arrival_ns=5_000),
            fake_request(1, 1, worker1, submit_ns=2_000, arrival_ns=9_000)]


def test_stitching_rebases_worker_spans_onto_the_parent_clock():
    stitched = stitch_serve_requests(two_request_log())
    by_name = {span.name: span for span in stitched}
    roots = [span for span in stitched if span.parent_id == -1]
    assert [span.name for span in roots] == ["serve.request"] * 2
    assert [span.attrs["seq"] for span in roots] == [0, 1]
    assert roots[0].attrs["worker"] == 0
    assert roots[0].attrs["queue_wait_s"] == 0.001
    assert roots[0].trace_id == "req-000000"
    # The worker window ends exactly at the parent-observed arrival, and
    # origin-free durations survive the shift bit-for-bit.
    query = by_name["soi.query"]
    assert query.end_ns == 5_000
    assert query.duration_ns == 1_000
    assert query.parent_id == roots[0].span_id
    child = by_name["soi.filter"]
    assert child.parent_id == query.span_id
    assert child.duration_ns == 500
    assert child.attrs == {"k": 5}
    assert child.trace_id == "req-000000"  # inherited from the request
    # Each worker renders on its own synthetic track; parents on track 0.
    assert roots[0].thread_id == 0
    assert child.thread_id == 1
    assert by_name["describe.select"].thread_id == 2
    # Ids were re-keyed into one space (workers reuse ids across processes).
    ids = [span.span_id for span in stitched]
    assert len(ids) == len(set(ids))


def test_stitching_widens_the_parent_when_the_window_pokes_left():
    # A 5000ns worker window cannot fit in [8000, 9000]ns of parent time:
    # scheduler jitter made the queue-wait estimate too small.  The parent
    # span widens left rather than truncating the child.
    spans = [worker_span(0, -1, "soi.query", 50_000, 55_000)]
    stitched = stitch_serve_requests(
        [fake_request(0, 0, spans, submit_ns=8_000, arrival_ns=9_000)])
    parent, child = stitched
    assert child.start_ns == 4_000 and child.end_ns == 9_000
    assert parent.start_ns == 4_000 and parent.end_ns == 9_000
    assert validate_serve_trace(spans_to_chrome(stitched)) == []


def test_stitched_trace_validates_and_catches_planted_defects():
    stitched = stitch_serve_requests(two_request_log())
    trace = spans_to_chrome(stitched)
    assert validate_serve_trace(trace) == []
    # Planted defect 1: a root missing its worker annotation.
    broken = json.loads(json.dumps(trace))
    root = next(event for event in broken["traceEvents"]
                if event["args"]["parent_id"] == -1)
    del root["args"]["worker"]
    assert any("missing 'worker'" in problem
               for problem in validate_serve_trace(broken))
    # Planted defect 2: a child pointing at an absent parent.
    broken = json.loads(json.dumps(trace))
    child = next(event for event in broken["traceEvents"]
                 if event["args"]["parent_id"] != -1)
    child["args"]["parent_id"] = 9999
    assert any("orphan parent" in problem
               for problem in validate_serve_trace(broken))
    # Planted defect 3: a root that is not a serve.request span.
    broken = json.loads(json.dumps(trace))
    next(event for event in broken["traceEvents"]
         if event["args"]["parent_id"] == -1)["name"] = "soi.query"
    assert any("not serve.request" in problem
               for problem in validate_serve_trace(broken))
    assert validate_serve_trace({}) == ["traceEvents missing or not a list"]


def test_stitching_untraced_requests_yields_bare_parents():
    request = fake_request(3, 1, [], submit_ns=100, arrival_ns=900)
    request["worker_spans"] = None  # untraced: no shipment at all
    stitched = stitch_serve_requests([request])
    assert len(stitched) == 1
    assert stitched[0].name == "serve.request"
    assert stitched[0].start_ns == 100 and stitched[0].end_ns == 900
    assert validate_serve_trace(spans_to_chrome(stitched)) == []
    assert stitch_serve_requests([]) == []
