"""Tests for :mod:`repro.geometry.primitives`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.primitives import (
    Point,
    interpolate,
    midpoint,
    project_onto_segment,
    segment_length,
    segments_intersect,
)

finite = st.floats(min_value=-100, max_value=100,
                   allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_unpacking(self):
        x, y = Point(1.0, 2.0)
        assert (x, y) == (1.0, 2.0)

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_equality_by_value(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)

    def test_usable_as_dict_key(self):
        d = {Point(0, 0): "origin"}
        assert d[Point(0, 0)] == "origin"


class TestSegmentLength:
    def test_axis_aligned(self):
        assert segment_length(0, 0, 3, 0) == 3.0
        assert segment_length(0, 0, 0, 4) == 4.0

    def test_diagonal(self):
        assert segment_length(0, 0, 3, 4) == pytest.approx(5.0)

    def test_zero_length(self):
        assert segment_length(1, 1, 1, 1) == 0.0

    @given(finite, finite, finite, finite)
    def test_symmetry(self, ax, ay, bx, by):
        assert segment_length(ax, ay, bx, by) == pytest.approx(
            segment_length(bx, by, ax, ay))


class TestMidpointInterpolate:
    def test_midpoint(self):
        assert midpoint(0, 0, 2, 4) == Point(1, 2)

    def test_interpolate_endpoints(self):
        assert interpolate(1, 2, 5, 6, 0.0) == Point(1, 2)
        assert interpolate(1, 2, 5, 6, 1.0) == Point(5, 6)

    def test_interpolate_middle(self):
        assert interpolate(0, 0, 4, 2, 0.5) == Point(2, 1)

    @given(finite, finite, finite, finite)
    def test_midpoint_is_interpolate_half(self, ax, ay, bx, by):
        m = midpoint(ax, ay, bx, by)
        i = interpolate(ax, ay, bx, by, 0.5)
        assert m.x == pytest.approx(i.x)
        assert m.y == pytest.approx(i.y)


class TestProjection:
    def test_projects_inside(self):
        assert project_onto_segment(1, 1, 0, 0, 2, 0) == pytest.approx(0.5)

    def test_clamps_before_start(self):
        assert project_onto_segment(-5, 1, 0, 0, 2, 0) == 0.0

    def test_clamps_after_end(self):
        assert project_onto_segment(9, 1, 0, 0, 2, 0) == 1.0

    def test_degenerate_segment(self):
        assert project_onto_segment(3, 3, 1, 1, 1, 1) == 0.0

    @given(finite, finite, finite, finite, finite, finite)
    def test_always_in_unit_interval(self, px, py, ax, ay, bx, by):
        t = project_onto_segment(px, py, ax, ay, bx, by)
        assert 0.0 <= t <= 1.0


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_parallel_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_touching_endpoint(self):
        assert segments_intersect(0, 0, 1, 0, 1, 0, 2, 5)

    def test_collinear_overlapping(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_t_shape(self):
        # One endpoint lies in the interior of the other segment.
        assert segments_intersect(0, 0, 2, 0, 1, -1, 1, 0)

    def test_far_apart(self):
        assert not segments_intersect(0, 0, 1, 1, 10, 10, 11, 11)

    @given(finite, finite, finite, finite, finite, finite, finite, finite)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        assert segments_intersect(ax, ay, bx, by, cx, cy, dx, dy) == \
            segments_intersect(cx, cy, dx, dy, ax, ay, bx, by)
