"""End-to-end integration tests over a mid-sized synthetic city.

These exercise the full pipeline the way the examples and benches do —
generate, index, identify, describe, compare, route — and pin down
cross-module contracts that unit tests cannot see.
"""

from __future__ import annotations

import pytest

from repro import (
    BaselineSOI,
    GreedyDescriber,
    RegionQuery,
    SOIEngine,
    STRelDivDescriber,
    StreetAggregate,
    build_street_profile,
    recommend_route,
)
from repro.core.describe.measures import objective_value
from repro.datagen.presets import build_preset
from repro.eval.experiments import PAPER_QUERY_KEYWORDS


@pytest.fixture(scope="module")
def city():
    return build_preset("vienna", scale=0.4)


@pytest.fixture(scope="module")
def engine(city):
    return SOIEngine(city.network, city.pois)


class TestIdentifyPipeline:
    def test_engine_is_deterministic_across_queries(self, engine):
        first = engine.top_k(["shop"], k=10, eps=0.0005)
        # interleave other queries to stress shared caches
        engine.top_k(["food"], k=5, eps=0.0005)
        engine.top_k(["shop", "food"], k=5, eps=0.001)
        second = engine.top_k(["shop"], k=10, eps=0.0005)
        assert [(r.street_id, r.interest) for r in first] == \
            [(r.street_id, r.interest) for r in second]

    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_matches_baseline_at_paper_selectivities(self, engine, size):
        keywords = PAPER_QUERY_KEYWORDS[:size]
        soi = engine.top_k(keywords, k=20, eps=0.0005)
        bl = BaselineSOI(engine).top_k(keywords, k=20, eps=0.0005)
        assert [round(r.interest, 6) for r in soi] == \
            [round(r.interest, 6) for r in bl]

    def test_stats_are_internally_consistent(self, city, engine):
        _res, stats = engine.top_k_with_stats(["shop"], k=10, eps=0.0005)
        total_segments = len(city.network.segments)
        assert stats.segments_seen <= total_segments
        assert stats.segments_finalized_in_filter <= stats.segments_seen
        assert stats.refinement_finalized + stats.refinement_pruned <= \
            stats.segments_seen
        assert stats.iterations >= stats.cells_popped

    def test_interest_decreases_with_larger_eps_denominator(self, engine):
        """For a fixed dense street, widening eps adds area faster than
        mass once the cluster is fully covered, so interest eventually
        drops."""
        top = engine.top_k(["shop"], k=1, eps=0.0005)[0]
        tight = engine.segment_exact_interest(
            top.best_segment_id, ["shop"], eps=0.0005)
        loose = engine.segment_exact_interest(
            top.best_segment_id, ["shop"], eps=0.01)
        assert loose < tight


class TestDescribePipeline:
    def test_top_streets_all_describable(self, city, engine):
        for res in engine.top_k(["shop"], k=3, eps=0.0005):
            profile = build_street_profile(
                city.network, res.street_id, city.photos, eps=0.0005)
            if len(profile) == 0:
                continue
            k = min(4, len(profile))
            fast = STRelDivDescriber(profile).select(k)
            naive = GreedyDescriber(profile).select(k)
            assert fast == naive
            assert len(set(fast)) == k

    def test_diversified_beats_random_prefix(self, city, engine):
        """The greedy summary should score no worse than the first-k
        photos under the full objective."""
        top = engine.top_k(["shop"], k=1, eps=0.0005)[0]
        profile = build_street_profile(city.network, top.street_id,
                                       city.photos, eps=0.0005)
        k = min(5, len(profile))
        selected = STRelDivDescriber(profile).select(k, 0.5, 0.5)
        baseline = list(range(k))
        assert objective_value(profile, selected, 0.5, 0.5) >= \
            objective_value(profile, baseline, 0.5, 0.5) - 1e-9


class TestComparatorsAndExtensions:
    def test_region_query_contains_dense_street(self, city, engine):
        top = engine.top_k(["food"], k=1, eps=0.0005)[0]
        region = RegionQuery(engine).best_region(["food"],
                                                 max_length=0.05,
                                                 eps=0.0005)
        streets = {city.network.segment(sid).street_id
                   for sid in region.segment_ids}
        assert top.street_id in streets

    def test_route_over_all_aggregates(self, city, engine):
        baseline = BaselineSOI(engine)
        for aggregate in StreetAggregate:
            results = baseline.top_k(["shop"], k=3, eps=0.0005,
                                     aggregate=aggregate)
            route = recommend_route(city.network, results)
            assert set(route.visited_street_ids) <= \
                {r.street_id for r in results}
            assert len(route.visited_street_ids) >= 1

    def test_weighted_and_unweighted_rankings_consistent(self, engine):
        """With all weights 1.0 (the generator default), weighted mass
        equals counting, so rankings coincide."""
        plain = engine.top_k(["shop"], k=10, eps=0.0005)
        weighted = engine.top_k(["shop"], k=10, eps=0.0005, weighted=True)
        assert [(r.street_id, round(r.interest, 6)) for r in plain] == \
            [(r.street_id, round(r.interest, 6)) for r in weighted]


class TestIndexReuse:
    def test_multiple_eps_values_share_engine(self, engine):
        for eps in (0.0003, 0.0005, 0.001):
            results = engine.top_k(["food"], k=5, eps=eps)
            assert results
        # cached augmentations must not leak between eps values
        a = engine.top_k(["food"], k=5, eps=0.0003)
        b = engine.top_k(["food"], k=5, eps=0.001)
        assert [r.interest for r in a] != [r.interest for r in b]
