"""Snapshot lifecycle: bit-identical round-trips, generations, shm cleanup.

The acceptance bar for ``repro.serve`` is *exact* equality: every query
answered through a shared-memory-attached engine must return the same
bits as the original in-process engine, on the Figure 4 (k-SOI sweep)
and Figure 6 (describe sweep) configurations, with and without the
runtime contracts enabled.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import contracts
from repro.core.soi import DEFAULT_EPS, AccessStrategy, SOIEngine
from repro.errors import SnapshotError
from repro.serve import IndexSnapshot, attach_engine, attach_photo_set
from repro.serve.server import DescribeRequest, SOIRequest, serve_request

FIG4_KS = (10, 25, 50, 100)
FIG6_KS = (10, 20, 30, 40, 50)
CATEGORIES = ("food", "shop", "services", "culture")
SIGNATURES = tuple(CATEGORIES[:n] for n in range(1, len(CATEGORIES) + 1))


@pytest.fixture(scope="module")
def snapshot(small_engine, small_city):
    snap = IndexSnapshot.export(small_engine, small_city.photos,
                                warm_eps=(DEFAULT_EPS,))
    yield snap
    snap.close()


@pytest.fixture(scope="module")
def attached(snapshot):
    """(engine, photos) views reconstructed from the shm block."""
    return attach_engine(snapshot), attach_photo_set(snapshot)


def fig4_requests():
    for keywords in SIGNATURES:
        for k in FIG4_KS:
            yield SOIRequest(keywords=tuple(keywords), k=k)


def fig6_requests(engine):
    streets = [r.street_id
               for r in engine.top_k(["food"], k=3, eps=DEFAULT_EPS)]
    assert streets, "testville must answer the food query"
    for street_id in streets:
        for k in FIG6_KS:
            yield DescribeRequest(street_id=street_id, k=k)


# -- bit-identity -------------------------------------------------------------

def test_fig4_round_trip_is_bit_identical(small_engine, small_city, attached):
    engine_view, _ = attached
    for request in fig4_requests():
        expected = serve_request(small_engine, small_city.photos, request)
        got = serve_request(engine_view, None, request)
        assert got == expected  # dataclass ==: exact floats, exact order


def test_fig4_strategies_and_weighted_round_trip(small_engine, attached):
    engine_view, _ = attached
    for strategy in AccessStrategy:
        for weighted in (False, True):
            request = SOIRequest(keywords=("food", "shop"), k=25,
                                 strategy=strategy.value, weighted=weighted)
            assert serve_request(engine_view, None, request) == \
                serve_request(small_engine, None, request)


def test_fig6_round_trip_is_bit_identical(small_engine, small_city, attached):
    engine_view, photos_view = attached
    for request in fig6_requests(small_engine):
        expected = serve_request(small_engine, small_city.photos, request)
        got = serve_request(engine_view, photos_view, request)
        assert got == expected


def test_round_trip_under_contracts(small_engine, small_city, attached):
    """A fig4/fig6 sample stays identical with REPRO_CHECK semantics on."""
    engine_view, photos_view = attached
    requests = [SOIRequest(keywords=("food", "shop"), k=10),
                next(iter(fig6_requests(small_engine)))]
    prior = contracts.ENABLED
    contracts.enable_contracts(True)
    try:
        for request in requests:
            assert serve_request(engine_view, photos_view, request) == \
                serve_request(small_engine, small_city.photos, request)
    finally:
        contracts.enable_contracts(prior)


# -- layout properties --------------------------------------------------------

def test_attached_columns_are_zero_copy_and_read_only(snapshot, attached):
    engine_view, _ = attached
    xs = engine_view.pois.xs
    assert isinstance(xs, np.ndarray) and not xs.flags.writeable
    # A view into the shm block, not a copy: same memory as the snapshot's.
    assert np.shares_memory(xs, snapshot.array("poi_xs"))
    with pytest.raises(ValueError):
        xs[0] = 0.0


def test_snapshot_records_generation(small_city, snapshot):
    assert snapshot.generation == 0
    engine = SOIEngine(small_city.network, small_city.pois)
    engine.rebuild_indexes()
    with IndexSnapshot.export(engine) as rebuilt:
        assert rebuilt.generation == 1
        assert attach_engine(rebuilt).index_generation == 1


def test_attach_rejects_unknown_name():
    with pytest.raises(SnapshotError):
        IndexSnapshot.attach("repro-snap-does-not-exist")


# -- cleanup ------------------------------------------------------------------

def test_close_unlinks_the_block(small_engine):
    snap = IndexSnapshot.export(small_engine)
    name = snap.name
    assert os.path.exists(f"/dev/shm/{name}")
    snap.close()
    assert not os.path.exists(f"/dev/shm/{name}")
    with pytest.raises(SnapshotError):
        IndexSnapshot.attach(name)


def test_reader_close_keeps_the_block(small_engine):
    snap = IndexSnapshot.export(small_engine)
    try:
        reader = IndexSnapshot.attach(snap.name)
        reader.close()  # non-owner: must not unlink
        assert os.path.exists(f"/dev/shm/{snap.name}")
    finally:
        snap.close()
    assert not os.path.exists(f"/dev/shm/{snap.name}")
