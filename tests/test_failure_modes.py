"""Failure injection and degenerate-input behaviour across modules.

A production library must fail loudly on bad input and degrade gracefully
on empty-but-valid input; these tests pin both down for every layer.
"""

from __future__ import annotations

import pytest

from repro import (
    POI,
    POISet,
    Photo,
    PhotoSet,
    QueryError,
    SOIEngine,
    STRelDivDescriber,
    StreetProfile,
    build_street_profile,
)
from repro.core.soi_baseline import BaselineSOI
from repro.data.keywords import KeywordFrequencyVector
from repro.geometry.bbox import BBox


class TestEmptyData:
    def test_engine_with_no_pois(self, cross_network):
        engine = SOIEngine(cross_network, POISet([]), cell_size=0.2)
        assert engine.top_k(["shop"], k=3, eps=0.1) == []
        assert BaselineSOI(engine).top_k(["shop"], k=3, eps=0.1) == []

    def test_engine_with_keywordless_pois(self, cross_network):
        pois = POISet([POI(0, 0.1, 0.1), POI(1, 0.2, 0.2)])
        engine = SOIEngine(cross_network, pois, cell_size=0.2)
        assert engine.top_k(["shop"], k=3, eps=0.1) == []

    def test_profile_with_no_photos(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        profile = build_street_profile(cross_network, main.id,
                                       PhotoSet([]), eps=0.1)
        assert len(profile) == 0
        assert STRelDivDescriber(profile).select(3) == []

    def test_profile_with_tagless_photos(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        photos = PhotoSet([Photo(i, 0.1 * i, 0.0) for i in range(4)])
        profile = build_street_profile(cross_network, main.id, photos,
                                       eps=0.5)
        selected = STRelDivDescriber(profile).select(2)
        assert len(selected) == 2
        # tagless photos: textual relevance must be all-zero, not NaN
        assert profile.textual_rel.tolist() == [0.0] * len(profile)

    def test_single_photo_summary(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        photos = PhotoSet([Photo(0, 0.1, 0.0, frozenset({"only"}))])
        profile = build_street_profile(cross_network, main.id, photos,
                                       eps=0.5)
        assert STRelDivDescriber(profile).select(5) == [0]


class TestParameterAbuse:
    def test_engine_rejects_bad_parameters_before_work(self, cross_network,
                                                       cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        for bad in (dict(keywords=[], k=1, eps=0.1),
                    dict(keywords=["shop"], k=0, eps=0.1),
                    dict(keywords=["shop"], k=-3, eps=0.1),
                    dict(keywords=["shop"], k=1, eps=0.0)):
            with pytest.raises(QueryError):
                engine.top_k(**bad)

    def test_describer_rejects_bad_parameters(self, cross_network):
        main = cross_network.street_by_name("Main Street")
        photos = PhotoSet([Photo(0, 0.1, 0.0, frozenset({"x"}))])
        profile = build_street_profile(cross_network, main.id, photos,
                                       eps=0.5)
        describer = STRelDivDescriber(profile)
        for k, lam, w in ((0, 0.5, 0.5), (1, -0.1, 0.5), (1, 0.5, 1.1)):
            with pytest.raises(QueryError):
                describer.select(k, lam, w)

    def test_profile_guards_normalisers(self):
        photos = PhotoSet([Photo(0, 0, 0, frozenset({"a"}))])
        phi = KeywordFrequencyVector({"a": 1.0})
        with pytest.raises(QueryError):
            StreetProfile(photos, phi, max_d=0.0,
                          extent=BBox(0, 0, 1, 1), rho=0.1)
        with pytest.raises(QueryError):
            StreetProfile(photos, phi, max_d=1.0,
                          extent=BBox(0, 0, 1, 1), rho=-1.0)


class TestOutOfExtentData:
    def test_pois_beyond_network_extent_still_counted(self, cross_network):
        """The engine extent covers the POI cloud, not just the network."""
        pois = POISet([
            POI(0, 0.1, 0.05, frozenset({"shop"})),
            POI(1, 30.0, 30.0, frozenset({"shop"})),  # far outside network
        ])
        engine = SOIEngine(cross_network, pois, cell_size=0.2)
        results = engine.top_k(["shop"], k=2, eps=0.15)
        # The near-corner POI is within eps of BOTH crossing streets (the
        # paper's non-exclusive assignment, Section 1); the distant POI
        # contributes to neither.
        assert {r.street_name for r in results} == \
            {"Main Street", "Cross Street"}
        assert all(r.interest > 0 for r in results)

    def test_poi_exactly_at_eps_boundary_counts(self, cross_network):
        pois = POISet([POI(0, 0.5, 0.15, frozenset({"shop"}))])
        engine = SOIEngine(cross_network, pois, cell_size=0.2)
        # dist to Main Street's y=0 span is exactly 0.15
        results = engine.top_k(["shop"], k=1, eps=0.15)
        assert len(results) == 1


class TestTieHandling:
    def test_identical_streets_tie_break_by_id(self):
        """Two geometrically identical parallel streets with identical POI
        support must rank by street id."""
        from repro.network.builder import RoadNetworkBuilder

        builder = RoadNetworkBuilder()
        a0 = builder.add_vertex(0.0, 0.0)
        a1 = builder.add_vertex(1.0, 0.0)
        b0 = builder.add_vertex(0.0, 10.0)
        b1 = builder.add_vertex(1.0, 10.0)
        builder.add_street("First", [a0, a1])
        builder.add_street("Second", [b0, b1])
        network = builder.build()
        pois = POISet([
            POI(0, 0.5, 0.01, frozenset({"shop"})),
            POI(1, 0.5, 10.01, frozenset({"shop"})),
        ])
        engine = SOIEngine(network, pois, cell_size=0.5)
        results = engine.top_k(["shop"], k=2, eps=0.1)
        assert [r.street_name for r in results] == ["First", "Second"]
        assert results[0].interest == pytest.approx(results[1].interest)
