"""Tests for :mod:`repro.data.poi` (and, by symmetry, the POISet columns)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.poi import POI, POISet
from repro.errors import DataError


class TestPOI:
    def test_keywords_normalised(self):
        poi = POI(0, 1.0, 2.0, frozenset({" Shop ", "FOOD"}))
        assert poi.keywords == frozenset({"shop", "food"})

    def test_matches_any_keyword(self):
        poi = POI(0, 0, 0, frozenset({"shop", "mall"}))
        assert poi.matches(frozenset({"mall", "zoo"}))
        assert not poi.matches(frozenset({"zoo"}))
        assert not poi.matches(frozenset())

    def test_default_weight(self):
        assert POI(0, 0, 0).weight == 1.0

    def test_negative_weight_raises(self):
        with pytest.raises(DataError):
            POI(0, 0, 0, weight=-0.1)


class TestPOISet:
    def _sample(self) -> POISet:
        return POISet([
            POI(10, 0.0, 0.0, frozenset({"shop"})),
            POI(20, 1.0, 1.0, frozenset({"food"}), weight=2.0),
            POI(30, 2.0, 0.5, frozenset({"shop", "food"})),
        ])

    def test_len_and_iter(self):
        pois = self._sample()
        assert len(pois) == 3
        assert [p.id for p in pois] == [10, 20, 30]

    def test_columns_aligned_with_positions(self):
        pois = self._sample()
        assert pois.xs.tolist() == [0.0, 1.0, 2.0]
        assert pois.ys.tolist() == [0.0, 1.0, 0.5]
        assert pois.weights.tolist() == [1.0, 2.0, 1.0]

    def test_position_and_id_lookup(self):
        pois = self._sample()
        assert pois.position_of(20) == 1
        assert pois.by_id(20).weight == 2.0
        assert pois[1].id == 20

    def test_duplicate_ids_raise(self):
        with pytest.raises(DataError, match="duplicate"):
            POISet([POI(1, 0, 0), POI(1, 1, 1)])

    def test_relevant_positions(self):
        pois = self._sample()
        assert pois.relevant_positions(["shop"]) == [0, 2]
        assert pois.relevant_positions(["food"]) == [1, 2]
        assert pois.relevant_positions(["zoo"]) == []

    def test_vocabulary(self):
        assert self._sample().vocabulary() == frozenset({"shop", "food"})

    def test_empty_set(self):
        pois = POISet([])
        assert len(pois) == 0
        assert pois.xs.shape == (0,)
        assert pois.relevant_positions(["shop"]) == []
        assert pois.vocabulary() == frozenset()

    def test_columns_are_float64(self):
        pois = self._sample()
        assert pois.xs.dtype == np.float64
        assert pois.weights.dtype == np.float64
