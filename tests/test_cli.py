"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """A generated tenth-scale Vienna on disk."""
    out = tmp_path_factory.mktemp("cli") / "vienna"
    code = main(["generate", "--preset", "vienna", "--scale", "0.1",
                 "--out", str(out)])
    assert code == 0
    return out


class TestGenerate:
    def test_writes_three_files(self, data_dir):
        assert (data_dir / "network.json").exists()
        assert (data_dir / "pois.json").exists()
        assert (data_dir / "photos.json").exists()

    def test_output_message(self, data_dir, capsys, tmp_path):
        main(["generate", "--preset", "vienna", "--scale", "0.1",
              "--out", str(tmp_path / "again")])
        out = capsys.readouterr().out
        assert "segments" in out and "POIs" in out


class TestStats:
    def test_prints_table(self, data_dir, capsys):
        assert main(["stats", "--data", str(data_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "photos" in out


class TestSOI:
    def test_query_prints_ranking(self, data_dir, capsys):
        assert main(["soi", "--data", str(data_dir),
                     "--keywords", "shop", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "top-3 SOIs" in out
        assert "interest" in out

    def test_unmatched_keywords_exit_1(self, data_dir, capsys):
        assert main(["soi", "--data", str(data_dir),
                     "--keywords", "warpdrive"]) == 1
        assert "no street matches" in capsys.readouterr().out


class TestDescribe:
    def test_default_street_is_top_soi(self, data_dir, capsys):
        assert main(["describe", "--data", str(data_dir),
                     "--keywords", "shop", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "photo summary" in out

    def test_explicit_street(self, data_dir, capsys):
        # find a street with photos via the default path first
        assert main(["describe", "--data", str(data_dir), "-k", "1"]) == 0

    def test_unmatched_keywords_exit_1(self, data_dir, capsys):
        assert main(["describe", "--data", str(data_dir),
                     "--keywords", "warpdrive"]) == 1


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
