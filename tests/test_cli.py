"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """A generated tenth-scale Vienna on disk."""
    out = tmp_path_factory.mktemp("cli") / "vienna"
    code = main(["generate", "--preset", "vienna", "--scale", "0.1",
                 "--out", str(out)])
    assert code == 0
    return out


class TestGenerate:
    def test_writes_three_files(self, data_dir):
        assert (data_dir / "network.json").exists()
        assert (data_dir / "pois.json").exists()
        assert (data_dir / "photos.json").exists()

    def test_output_message(self, data_dir, capsys, tmp_path):
        main(["generate", "--preset", "vienna", "--scale", "0.1",
              "--out", str(tmp_path / "again")])
        out = capsys.readouterr().out
        assert "segments" in out and "POIs" in out


class TestStats:
    def test_prints_table(self, data_dir, capsys):
        assert main(["stats", "--data", str(data_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "photos" in out


class TestSOI:
    def test_query_prints_ranking(self, data_dir, capsys):
        assert main(["soi", "--data", str(data_dir),
                     "--keywords", "shop", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "top-3 SOIs" in out
        assert "interest" in out

    def test_unmatched_keywords_exit_1(self, data_dir, capsys):
        assert main(["soi", "--data", str(data_dir),
                     "--keywords", "warpdrive"]) == 1
        assert "no street matches" in capsys.readouterr().out


class TestDescribe:
    def test_default_street_is_top_soi(self, data_dir, capsys):
        assert main(["describe", "--data", str(data_dir),
                     "--keywords", "shop", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "photo summary" in out

    def test_explicit_street(self, data_dir, capsys):
        # find a street with photos via the default path first
        assert main(["describe", "--data", str(data_dir), "-k", "1"]) == 0

    def test_unmatched_keywords_exit_1(self, data_dir, capsys):
        assert main(["describe", "--data", str(data_dir),
                     "--keywords", "warpdrive"]) == 1


class TestBench:
    def test_writes_reports_with_medians_and_counters(self, tmp_path,
                                                      capsys):
        import json

        assert main(["bench", "--suite", "all", "--cities", "vienna",
                     "--repeats", "1", "--scale", "0.05",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_soi.json" in out and "BENCH_describe.json" in out

        soi = json.loads((tmp_path / "BENCH_soi.json").read_text())
        assert soi["suite"] == "soi"
        entry = soi["cities"]["vienna"]
        assert entry["soi_k_sweep_median_s"] > 0
        assert entry["bl_psi_sweep_median_s"] > 0
        assert set(entry["counters"]) == {"cold", "warm"}
        # The warm rerun of an identical query is fully memo-served.
        assert entry["counters"]["warm"]["kernel_calls"] == 0
        assert entry["counters"]["warm"]["session_reused"] == 1
        assert "python" in soi["environment"]

        describe = json.loads(
            (tmp_path / "BENCH_describe.json").read_text())
        assert describe["suite"] == "describe"
        assert "vienna" in describe["cities"]

    def test_single_suite_writes_one_file(self, tmp_path, capsys):
        assert main(["bench", "--suite", "soi", "--cities", "vienna",
                     "--repeats", "1", "--scale", "0.05",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_soi.json").exists()
        assert not (tmp_path / "BENCH_describe.json").exists()

    def test_throughput_mode_appends_verified_runs(self, tmp_path, capsys):
        import json

        argv = ["bench", "--mode", "throughput", "--cities", "vienna",
                "--workers", "2", "--queries", "8", "--scale", "0.05",
                "--verify", "--out", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "BENCH_serve.json" in out and "qps" in out
        log = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert log["suite"] == "serve"
        run = log["runs"][-1]
        assert run["verified"] is True
        assert run["environment"]["cpu_count"] >= 1
        assert [rec["workers"]
                for rec in run["cities"]["vienna"]["records"]] == [1, 2]
        # Append-only log plus a clean self-comparison.
        assert main(argv[:-2] + ["--out", str(tmp_path), "--check-against",
                                 str(tmp_path / "BENCH_serve.json"),
                                 "--tolerance", "5.0"]) == 0
        log = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert len(log["runs"]) == 2

    def test_check_against_rejects_wrong_suite(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "BENCH_describe.json"
        baseline.write_text(json.dumps({"suite": "describe"}))
        assert main(["bench", "--suite", "soi", "--cities", "vienna",
                     "--repeats", "1", "--scale", "0.05",
                     "--out", str(tmp_path),
                     "--check-against", str(baseline)]) == 2

    def test_mode_soi_alias_and_trace_out(self, tmp_path, capsys):
        import json

        traces = tmp_path / "traces"
        assert main(["bench", "--mode", "soi", "--cities", "vienna",
                     "--repeats", "1", "--scale", "0.05",
                     "--out", str(tmp_path),
                     "--trace-out", str(traces)]) == 0
        assert (tmp_path / "BENCH_soi.json").exists()
        assert not (tmp_path / "BENCH_describe.json").exists()
        report = json.loads((tmp_path / "BENCH_soi.json").read_text())
        entry = report["cities"]["vienna"]
        obs = entry["obs"]
        assert obs["span_count"] > 0
        assert obs["median_trace_off_s"] > 0
        assert obs["median_trace_on_s"] > 0
        assert entry["trace_files"]  # one Chrome trace per sweep point
        for name in entry["trace_files"]:
            path = Path(name)
            assert path.parent == traces
            trace = json.loads(path.read_text())
            assert any(event["name"] == "soi.query"
                       for event in trace["traceEvents"]), name
        # Tracing state must not leak out of the bench run.
        from repro.obs.tracer import tracing_enabled
        assert not tracing_enabled()


class TestMetrics:
    def test_dumps_counters_and_histograms(self, data_dir, capsys):
        assert main(["metrics", "--data", str(data_dir),
                     "--keywords", "shop", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "soi.queries" in out
        assert "soi.query_s" in out
        assert "session.pool_size" in out

    def test_json_dump_with_trace_and_slowlog(self, data_dir, capsys):
        import json

        from repro.obs.tracer import enable_tracing

        try:
            assert main(["metrics", "--data", str(data_dir),
                         "--keywords", "shop", "--repeat", "1",
                         "--json", "--trace", "--slow-threshold", "0"]) == 0
        finally:
            enable_tracing(False)
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["soi.queries"] >= 1
        assert payload["spans"]["count"] > 0
        assert "soi.filter" in payload["spans"]["self_time_ns"]
        assert payload["slow_queries"]  # threshold 0 records every query

    def test_openmetrics_exposition(self, data_dir, capsys, tmp_path):
        assert main(["metrics", "--data", str(data_dir),
                     "--keywords", "shop", "--repeat", "1",
                     "--openmetrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_soi_queries counter" in out
        assert "repro_soi_queries_total" in out
        assert out.endswith("# EOF\n")
        path = tmp_path / "metrics.prom"
        assert main(["metrics", "--data", str(data_dir),
                     "--keywords", "shop", "--repeat", "1",
                     "--openmetrics", "-o", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "repro_soi_queries_total" in path.read_text(encoding="utf-8")

    def test_slowlog_json_dump_carries_trace_ids(self, data_dir, capsys):
        import json

        assert main(["metrics", "--data", str(data_dir),
                     "--keywords", "shop", "--repeat", "1",
                     "--slowlog-json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slow_queries"]  # implied threshold 0 records all
        assert all("trace_id" in record
                   for record in payload["slow_queries"])


class TestTop:
    def test_frames_render_load_and_worker_health(self, data_dir, capsys):
        assert main(["top", "--data", str(data_dir), "--workers", "1",
                     "--queries", "4", "--frames", "2",
                     "--interval", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "repro top — 4 requests" in out
        assert "[final] qps" in out
        assert "worker 0:" in out
        # The final frame reports the served kinds' live percentiles.
        assert "p99" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
