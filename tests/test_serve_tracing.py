"""Cross-process tracing acceptance: stitched traces, live sketches, health.

These are the PR's acceptance criteria as tests: a 2-worker mixed
workload must stitch into ONE Chrome trace whose request spans carry
worker id and queue-wait annotations, the parent's merged-sketch
percentiles must sit within one log2 bucket of the exact per-request
service percentiles, and the heartbeat detector must tell a hung worker
(SIGSTOP) from a crashed one (SIGKILL).
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core.soi import SOIEngine
from repro.datagen import build_preset
from repro.errors import WorkerCrashError, WorkerStallError
from repro.obs.metrics import bucket_exponent
from repro.obs.export import validate_serve_trace
from repro.obs.tracer import tracing_enabled, tracing_scope
from repro.serve import EngineServer
from repro.serve.server import SOIRequest
from repro.serve.workload import make_workload

NUM_QUERIES = 10


@pytest.fixture(scope="module")
def traced_serve(tmp_path_factory):
    """One traced 2-worker mixed workload; the tests share its artefacts."""
    city = build_preset("vienna", scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    requests = make_workload(engine, city.photos,
                             num_queries=NUM_QUERIES, seed=3)
    assert any(not isinstance(r, SOIRequest) for r in requests)
    trace_path = tmp_path_factory.mktemp("trace") / "serve.trace.json"
    with EngineServer.for_engine(engine, city.photos, workers=2) as server:
        with tracing_scope(True):
            payloads, service_s = server.run_with_stats(requests)
        assert not tracing_enabled()  # the scope does not leak
        server.export_trace(trace_path)
        artefacts = {
            "requests": requests,
            "payloads": payloads,
            "service_s": service_s,
            "trace": json.loads(trace_path.read_text(encoding="utf-8")),
            "trace_log": server.trace_requests(),
            "latency": server.latency_summary(),
            "telemetry": server.telemetry(),
            # The same workload again, untraced, on the same pool: the
            # payloads must not change by a single bit.
            "untraced_payloads": server.run(requests),
        }
    return artefacts


def test_workload_is_one_stitched_trace_with_annotated_requests(traced_serve):
    trace = traced_serve["trace"]
    assert validate_serve_trace(trace) == []
    events = trace["traceEvents"]
    roots = [e for e in events if e["args"]["parent_id"] == -1]
    children = [e for e in events if e["args"]["parent_id"] != -1]
    assert len(roots) == NUM_QUERIES
    assert children  # the workers shipped their spans back
    annotated = [e for e in roots
                 if "worker" in e["args"] and "queue_wait_s" in e["args"]]
    assert len(annotated) / len(roots) >= 0.95  # acceptance floor (it's 1.0)
    # Deterministic ids: one per submitted sequence number, in order.
    assert [e["args"]["trace_id"] for e in sorted(
        roots, key=lambda e: e["args"]["seq"])] == \
        [f"req-{seq:06d}" for seq in range(NUM_QUERIES)]
    # Worker ids are real pool members and both request kinds appear on
    # the stitched parents.
    assert {e["args"]["worker"] for e in roots} <= {0, 1}
    assert {e["args"]["kind"] for e in roots} == {"soi", "describe"}
    assert all(e["args"]["queue_wait_s"] >= 0.0 for e in roots)


def test_trace_log_records_only_traced_requests(traced_serve):
    log = traced_serve["trace_log"]
    # The untraced rerun must not grow the log: entries exist only for
    # requests submitted while tracing was enabled, each with its spans.
    assert len(log) == NUM_QUERIES
    assert all(r["worker_spans"] for r in log)
    assert all(r["trace_id"] == f"req-{r['seq']:06d}" for r in log)


def test_tracing_keeps_payloads_bit_identical(traced_serve):
    assert traced_serve["payloads"] == traced_serve["untraced_payloads"]


def test_merged_sketch_percentiles_match_exact_within_one_bucket(traced_serve):
    kinds = traced_serve["latency"]["kinds"]
    assert set(kinds) == {"soi", "describe"}
    by_kind: dict[str, list[float]] = {"soi": [], "describe": []}
    for request, seconds in zip(traced_serve["requests"],
                                traced_serve["service_s"]):
        kind = "soi" if isinstance(request, SOIRequest) else "describe"
        by_kind[kind].append(seconds)
    # The summary was captured right after the traced run, so the sketch
    # saw exactly the service times run_with_stats returned.
    for kind, samples in by_kind.items():
        stats = kinds[kind]
        assert stats["count"] == len(samples)
        for q, key in ((0.5, "p50_s"), (0.99, "p99_s")):
            exact = float(np.percentile(samples, q * 100,
                                        method="inverted_cdf"))
            assert bucket_exponent(stats[key]) == bucket_exponent(exact), \
                f"{kind} {key}: sketch {stats[key]} vs exact {exact}"
        assert stats["slowest"].startswith("req-")


def test_per_worker_sketches_partition_the_kind_totals(traced_serve):
    summary = traced_serve["latency"]
    assert summary["workers"] and set(summary["workers"]) <= {"0", "1"}
    for kind in ("soi", "describe"):
        total = summary["kinds"][kind]["count"]
        split = sum(worker.get(kind, {"count": 0})["count"]
                    for worker in summary["workers"].values())
        assert split == total


def test_telemetry_frame_reports_load_memory_and_health(traced_serve):
    telemetry = traced_serve["telemetry"]
    assert telemetry["completed_total"] == NUM_QUERIES
    assert telemetry["inflight"] == 0
    assert telemetry["shm_bytes"] > 0
    assert telemetry["micro_batch"] == 1
    assert len(telemetry["workers"]) == 2
    for worker in telemetry["workers"]:
        assert worker["status"] == "ok"
        assert worker["alive"] is True
        assert worker["state"] in ("idle", "busy")
        assert worker["heartbeat_age_s"] >= 0.0
    assert telemetry["latency"]["kinds"]["soi"]["p99_s"] > 0.0


def wait_for(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition not reached in time"
        time.sleep(0.05)


def test_stall_detector_tells_hung_from_crashed(small_engine):
    with EngineServer.for_engine(small_engine, workers=1) as server:
        wait_for(lambda: server.worker_health()[0]["state"] == "idle")
        server.check_worker_health()  # healthy pool: no raise
        pid = server._workers[0].pid
        os.kill(pid, signal.SIGSTOP)
        try:
            wait_for(lambda: server.worker_health(
                stall_after_s=0.5)[0]["status"] == "stalled")
            report = server.worker_health(stall_after_s=0.5)[0]
            assert report["alive"] is True  # hung, not dead
            with pytest.raises(WorkerStallError) as excinfo:
                server.check_worker_health(stall_after_s=0.5)
            assert "alive but not heartbeating" in str(excinfo.value)
        finally:
            os.kill(pid, signal.SIGCONT)
        # The worker resumes beating and the pool still serves.
        wait_for(lambda: server.worker_health(
            stall_after_s=0.5)[0]["status"] == "ok")
        payloads = server.run([SOIRequest(keywords=("food",), k=3)])
        assert payloads


def test_health_reports_a_crashed_worker(small_engine):
    server = EngineServer.for_engine(small_engine, workers=1)
    try:
        worker = server._workers[0]
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=10.0)
        report = server.worker_health()[0]
        assert report["status"] == "crashed"
        assert report["alive"] is False
        with pytest.raises(WorkerCrashError):
            server.check_worker_health()
    finally:
        server.close()
