"""Tests for :mod:`repro.data.keywords`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.data.keywords import (
    KeywordFrequencyVector,
    normalize_keyword,
    normalize_keywords,
    tokenize,
)


class TestNormalize:
    def test_lowercases_and_strips(self):
        assert normalize_keyword("  Shop ") == "shop"

    def test_empty(self):
        assert normalize_keyword("   ") == ""

    def test_set_normalisation_drops_empties(self):
        assert normalize_keywords(["Shop", "shop", "  ", "Food"]) == \
            frozenset({"shop", "food"})


class TestTokenize:
    def test_splits_on_punctuation(self):
        assert tokenize("St. Paul's Cathedral!") == ["st", "paul's",
                                                     "cathedral"]

    def test_keeps_numbers_and_hyphens(self):
        assert tokenize("Route-66 cafe 24h") == ["route-66", "cafe", "24h"]

    def test_empty_text(self):
        assert tokenize("") == []


class TestKeywordFrequencyVector:
    def test_lookup_and_support(self):
        phi = KeywordFrequencyVector({"shop": 3.0, "food": 1.0})
        assert phi["shop"] == 3.0
        assert phi["unknown"] == 0.0
        assert phi.support == frozenset({"shop", "food"})
        assert "shop" in phi
        assert len(phi) == 2

    def test_norm1(self):
        phi = KeywordFrequencyVector({"a": 3.0, "b": 1.0})
        assert phi.norm1 == 4.0

    def test_zero_frequencies_dropped(self):
        phi = KeywordFrequencyVector({"a": 0.0, "b": 2.0})
        assert "a" not in phi
        assert len(phi) == 1

    def test_negative_frequency_raises(self):
        with pytest.raises(ValueError):
            KeywordFrequencyVector({"a": -1.0})

    def test_case_insensitive_merge(self):
        phi = KeywordFrequencyVector({"Shop": 1.0, "shop": 2.0})
        assert phi["shop"] == 3.0

    def test_from_keyword_sets_counts_occurrences(self):
        phi = KeywordFrequencyVector.from_keyword_sets([
            {"shop", "food"}, {"shop"}, {"bar"}])
        assert phi["shop"] == 2
        assert phi["food"] == 1
        assert phi["bar"] == 1
        assert phi.norm1 == 4

    def test_weight_of_set_equation8_numerator(self):
        phi = KeywordFrequencyVector({"a": 2.0, "b": 1.0, "c": 5.0})
        assert phi.weight_of_set({"a", "c", "zzz"}) == 7.0

    def test_weight_of_set_deduplicates(self):
        phi = KeywordFrequencyVector({"a": 2.0})
        assert phi.weight_of_set(["a", "a", "A"]) == 2.0

    def test_sorted_by_frequency(self):
        phi = KeywordFrequencyVector({"a": 1.0, "b": 3.0, "c": 2.0})
        assert phi.sorted_by_frequency() == [("b", 3.0), ("c", 2.0),
                                             ("a", 1.0)]
        assert phi.sorted_by_frequency(descending=False) == [
            ("a", 1.0), ("c", 2.0), ("b", 3.0)]

    def test_sorted_ties_break_lexicographically(self):
        phi = KeywordFrequencyVector({"z": 1.0, "a": 1.0})
        assert phi.sorted_by_frequency() == [("a", 1.0), ("z", 1.0)]

    def test_equality(self):
        assert KeywordFrequencyVector({"a": 1.0}) == \
            KeywordFrequencyVector({"a": 1.0})
        assert KeywordFrequencyVector({"a": 1.0}) != \
            KeywordFrequencyVector({"a": 2.0})

    def test_as_dict_is_copy(self):
        phi = KeywordFrequencyVector({"a": 1.0})
        d = phi.as_dict()
        d["a"] = 99.0
        assert phi["a"] == 1.0

    @given(st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(min_value=0, max_value=100), max_size=4))
    def test_norm1_is_sum_of_support(self, freqs):
        phi = KeywordFrequencyVector(freqs)
        assert phi.norm1 == pytest.approx(
            sum(phi[k] for k in phi.support))
