"""Counter-based performance regression tests.

Wall-clock assertions are flaky on shared CI machines; these tests pin the
*work* the optimised paths are allowed to do instead — kernel invocations,
cache traffic and pairwise-diversity evaluations — which is deterministic
for a fixed city and query.  A regression that reintroduces per-cell
kernel dispatch or from-scratch MMR recomputation trips these immediately,
no timer involved.
"""

from __future__ import annotations

import pytest

from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.profile import build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.results import SOIStats
from repro.core.soi import SOIEngine
from repro.core.soi_baseline import BaselineSOI

KEYWORDS = ["shop"]
K = 10


@pytest.fixture(scope="module")
def engine(small_city):
    return SOIEngine(small_city.network, small_city.pois)


@pytest.fixture(scope="module")
def profile(small_city, engine):
    results = engine.top_k(KEYWORDS, k=1)
    profile = build_street_profile(small_city.network,
                                   results[0].street_id, small_city.photos,
                                   eps=0.0005)
    assert len(profile) >= 10, "fixture city too sparse for describe tests"
    return profile


class TestSOIBudgets:
    def test_refinement_batches_one_kernel_per_segment(self, engine):
        engine.invalidate_sessions()
        _res, stats = engine.top_k_with_stats(KEYWORDS, k=K)
        # The batched _finalize_exact path: at most ONE vectorised kernel
        # call per segment finalized during refinement.
        assert stats.refine_kernel_calls <= stats.refinement_finalized

    def test_baseline_batches_one_kernel_per_segment(self, engine, small_city):
        engine.invalidate_sessions()
        stats = SOIStats()
        baseline = BaselineSOI(engine)
        baseline.all_segment_interests(KEYWORDS, stats=stats)
        assert stats.kernel_calls <= len(small_city.network.segments)

    def test_warm_rerun_serves_everything_from_cache(self, engine):
        engine.invalidate_sessions()
        engine.top_k(KEYWORDS, k=K)
        _res, warm = engine.top_k_with_stats(KEYWORDS, k=K)
        assert warm.session_reused
        assert warm.kernel_calls == 0
        assert warm.scalar_point_evals == 0
        assert warm.mass_cache_hits > 0
        assert warm.mass_cache_misses == 0

    def test_cold_run_counts_cache_misses_not_hits_only(self, engine):
        engine.invalidate_sessions()
        _res, cold = engine.top_k_with_stats(KEYWORDS, k=K)
        assert cold.mass_cache_misses > 0
        assert cold.relevant_cache_misses > 0

    def test_sweep_materialises_no_new_cells_across_k(self, engine):
        engine.invalidate_sessions()
        engine.top_k(KEYWORDS, k=5)
        _res, stats = engine.top_k_with_stats(KEYWORDS, k=K)
        # The second sweep point runs entirely on the session's caches: no
        # fresh cell materialisation, and every mass it needs is either
        # memoised (mass hit) or recomputed from a cached cell (relevant
        # hit).  A memo-served mass never touches the relevant-cell cache,
        # so only the *miss* counters are guaranteed to stay at zero.
        assert stats.relevant_cache_misses == 0
        assert stats.mass_cache_hits + stats.relevant_cache_hits > 0


class TestDescribeBudgets:
    def test_greedy_pair_divs_linear_per_selection(self, profile):
        n = len(profile)
        k = min(20, n)
        _pos, stats = GreedyDescriber(profile).select_with_stats(k)
        # Incremental MMR: each (candidate, selection) pair costs at most
        # one pair_div — quadratic in k, not cubic.
        assert stats.pair_div_evals <= k * n
        assert stats.photos_examined <= k * n

    def test_st_rel_div_examines_no_more_pairs_than_greedy(self, profile):
        k = min(20, len(profile))
        _pos, greedy_stats = GreedyDescriber(profile).select_with_stats(k)
        _pos, st_stats = STRelDivDescriber(profile).select_with_stats(k)
        # The cell bounds exist to examine *fewer* photos; sharing the
        # incremental evaluator must not erode that advantage.
        assert st_stats.pair_div_evals <= greedy_stats.pair_div_evals
        assert st_stats.photos_examined <= greedy_stats.photos_examined
