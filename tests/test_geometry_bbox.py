"""Tests for :mod:`repro.geometry.bbox`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.bbox import BBox

finite = st.floats(min_value=-50, max_value=50,
                   allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw) -> BBox:
    x0 = draw(finite)
    y0 = draw(finite)
    w = draw(st.floats(min_value=0, max_value=10))
    h = draw(st.floats(min_value=0, max_value=10))
    return BBox(x0, y0, x0 + w, y0 + h)


class TestConstruction:
    def test_basic(self):
        box = BBox(0, 1, 2, 3)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 1, 2, 3)

    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            BBox(1, 0, 0, 1)
        with pytest.raises(ValueError):
            BBox(0, 1, 1, 0)

    def test_degenerate_point_allowed(self):
        box = BBox(1, 1, 1, 1)
        assert box.area == 0.0
        assert box.diagonal == 0.0

    def test_of_segment_normalises(self):
        box = BBox.of_segment(2, 3, 0, 1)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 1, 2, 3)

    def test_of_points(self):
        box = BBox.of_points([(0, 5), (2, 1), (-1, 3)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, 1, 2, 5)

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.of_points([])


class TestDerived:
    def test_dimensions(self):
        box = BBox(0, 0, 3, 4)
        assert box.width == 3
        assert box.height == 4
        assert box.diagonal == pytest.approx(5.0)
        assert box.area == 12
        assert box.center == (1.5, 2.0)

    def test_corners_order(self):
        c = BBox(0, 0, 1, 2).corners()
        assert c == ((0, 0), (1, 0), (1, 2), (0, 2))


class TestPredicates:
    def test_contains_point_closed(self):
        box = BBox(0, 0, 1, 1)
        assert box.contains_point(0, 0)        # corner
        assert box.contains_point(1, 1)        # corner
        assert box.contains_point(0.5, 0.5)
        assert not box.contains_point(1.001, 0.5)

    def test_intersects_overlap(self):
        assert BBox(0, 0, 2, 2).intersects(BBox(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert BBox(0, 0, 1, 1).intersects(BBox(1, 0, 2, 1))

    def test_intersects_disjoint(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    @given(boxes(), boxes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)


class TestTransforms:
    def test_expanded(self):
        box = BBox(0, 0, 1, 1).expanded(0.5)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == \
            (-0.5, -0.5, 1.5, 1.5)

    def test_expanded_negative_raises_when_inverting(self):
        with pytest.raises(ValueError):
            BBox(0, 0, 1, 1).expanded(-0.6)

    def test_union(self):
        u = BBox(0, 0, 1, 1).union(BBox(2, -1, 3, 0.5))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, -1, 3, 1)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        for box in (a, b):
            assert u.min_x <= box.min_x and u.min_y <= box.min_y
            assert u.max_x >= box.max_x and u.max_y >= box.max_y

    @given(boxes(), st.floats(min_value=0, max_value=5))
    def test_expanded_diagonal_grows(self, box, margin):
        grown = box.expanded(margin)
        assert grown.diagonal >= box.diagonal
        assert grown.diagonal == pytest.approx(
            math.hypot(box.width + 2 * margin, box.height + 2 * margin))
