"""Tests for :mod:`repro.core.describe.variants` (the Table 3 method grid)."""

from __future__ import annotations

import pytest

from repro.core.describe.variants import VARIANTS, MethodSpec, run_variant, \
    score_variants
from repro.core.describe.profile import StreetProfile
from repro.data.keywords import KeywordFrequencyVector
from repro.data.photo import Photo, PhotoSet
from repro.geometry.bbox import BBox


def _profile() -> StreetProfile:
    photos = PhotoSet([
        Photo(i, 0.0006 * (i % 5), 0.0008 * (i // 5),
              frozenset({f"t{i % 3}", "common"} if i % 4 else {"rare"}))
        for i in range(20)])
    phi = KeywordFrequencyVector.from_keyword_sets(
        p.keywords for p in photos)
    extent = BBox(-0.001, -0.001, 0.005, 0.005)
    return StreetProfile(photos=photos, phi=phi, max_d=extent.diagonal,
                         extent=extent, rho=0.001)


class TestMethodGrid:
    def test_nine_methods_defined(self):
        assert len(VARIANTS) == 9
        assert set(VARIANTS) == {
            "S_Rel", "S_Div", "S_Rel+Div",
            "T_Rel", "T_Div", "T_Rel+Div",
            "ST_Rel", "ST_Div", "ST_Rel+Div"}

    def test_effective_parameters(self):
        assert VARIANTS["S_Rel"].effective(0.5, 0.5) == (0.0, 1.0)
        assert VARIANTS["T_Div"].effective(0.5, 0.5) == (1.0, 0.0)
        assert VARIANTS["ST_Rel+Div"].effective(0.3, 0.7) == (0.3, 0.7)
        assert VARIANTS["S_Rel+Div"].effective(0.3, 0.7) == (0.3, 1.0)

    def test_names_match_keys(self):
        for name, spec in VARIANTS.items():
            assert spec.name == name


class TestRunVariant:
    def test_accepts_name_or_spec(self):
        profile = _profile()
        by_name = run_variant(profile, "ST_Rel+Div", 3)
        by_spec = run_variant(profile, VARIANTS["ST_Rel+Div"], 3)
        assert by_name == by_spec

    def test_index_and_naive_paths_agree(self):
        profile = _profile()
        for name in VARIANTS:
            fast = run_variant(profile, name, 3, use_index=True)
            naive = run_variant(profile, name, 3, use_index=False)
            assert fast == naive, name

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            run_variant(_profile(), "X_Rel", 3)

    def test_pure_relevance_method_ignores_diversity(self):
        profile = _profile()
        selected = run_variant(profile, "ST_Rel", 3)
        # greedy on pure relevance picks the top-3 by photo_rel
        from repro.core.describe.measures import photo_rel

        rels = sorted(((photo_rel(profile, pos, 0.5), -pos)
                       for pos in range(len(profile))), reverse=True)
        expected = [-negpos for _rel, negpos in rels[:3]]
        assert sorted(selected) == sorted(expected)


class TestScoreVariants:
    def test_raw_scores_match_objective(self):
        from repro.core.describe.measures import objective_value

        profile = _profile()
        scores = score_variants(profile, k=3)
        positions = run_variant(profile, "ST_Rel+Div", 3)
        assert scores["ST_Rel+Div"] == pytest.approx(
            objective_value(profile, positions, 0.5, 0.5))

    def test_normalisation_happens_in_describe_scores(self):
        from repro.eval.experiments import describe_scores

        normalised = describe_scores(_profile(), k=3)
        assert normalised["ST_Rel+Div"] == pytest.approx(1.0)

    def test_all_methods_scored(self):
        scores = score_variants(_profile(), k=3)
        assert set(scores) == set(VARIANTS)
        assert all(score >= 0 for score in scores.values())

    def test_custom_method_subset(self):
        methods = {"S_Rel": VARIANTS["S_Rel"],
                   "ST_Rel+Div": VARIANTS["ST_Rel+Div"]}
        scores = score_variants(_profile(), k=3, methods=methods)
        assert set(scores) == {"S_Rel", "ST_Rel+Div"}
