"""Shared fixtures and Hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.data.photo import Photo, PhotoSet
from repro.data.poi import POI, POISet
from repro.datagen.city import City, CitySpec, generate_city
from repro.network.builder import RoadNetworkBuilder
from repro.network.model import RoadNetwork

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=40,
)
settings.load_profile("repro")


# -- hand-built micro network -------------------------------------------------

@pytest.fixture()
def cross_network() -> RoadNetwork:
    """Two streets crossing at the origin, one with a breakpoint.

    Layout (coordinates in milli-units of the usual degree scale)::

            (0,1)
              |
    (-1,0)--(0,0)--(1,0)--(2,0.1)   "Main Street"  (3 segments)
              |
            (0,-1)                   "Cross Street" (2 segments)
    """
    builder = RoadNetworkBuilder()
    west = builder.add_vertex(-1.0, 0.0)
    center = builder.add_vertex(0.0, 0.0)
    east = builder.add_vertex(1.0, 0.0)
    far_east = builder.add_vertex(2.0, 0.1)
    north = builder.add_vertex(0.0, 1.0)
    south = builder.add_vertex(0.0, -1.0)
    builder.add_street("Main Street", [west, center, east, far_east])
    builder.add_street("Cross Street", [north, center, south])
    return builder.build()


@pytest.fixture()
def cross_pois() -> POISet:
    """POIs around the cross network: clustered near the centre."""
    return POISet([
        POI(0, 0.1, 0.05, frozenset({"shop", "fashion"})),
        POI(1, 0.2, -0.05, frozenset({"shop"})),
        POI(2, 0.5, 0.02, frozenset({"food", "cafe"})),
        POI(3, -0.5, 0.01, frozenset({"shop", "market"})),
        POI(4, 0.02, 0.5, frozenset({"food"})),
        POI(5, 0.01, -0.6, frozenset({"shop"})),
        POI(6, 5.0, 5.0, frozenset({"shop"})),       # far away
        POI(7, 0.3, 0.0, frozenset({"museum"})),
    ])


# -- small deterministic synthetic city -----------------------------------------

TEST_SPEC = CitySpec(
    name="testville",
    seed=99,
    n_horizontal=8,
    n_vertical=8,
    n_diagonal=2,
    width=0.05,
    height=0.05,
    breakpoint_prob=0.2,
    n_background_pois=150,
    misc_street_pois=400,
    street_pois_per_category=60,
    destinations_per_category=4,
    n_background_photos=60,
    street_photos=250,
    n_landmarks=6,
    photos_per_landmark=15,
    n_event_bursts=2,
    event_burst_size=15,
)


@pytest.fixture(scope="session")
def small_city() -> City:
    """A small but fully featured synthetic city (session-cached)."""
    return generate_city(TEST_SPEC)


@pytest.fixture(scope="session")
def small_engine(small_city):
    from repro.core.soi import SOIEngine

    return SOIEngine(small_city.network, small_city.pois)


# -- Hypothesis strategies -----------------------------------------------------

KEYWORD_POOL = ("shop", "food", "bar", "art", "park", "bank", "gym", "club")

coordinates = st.floats(min_value=0.0, max_value=0.02,
                        allow_nan=False, allow_infinity=False)
keyword_sets = st.frozensets(st.sampled_from(KEYWORD_POOL),
                             min_size=0, max_size=4)


@st.composite
def random_networks(draw) -> RoadNetwork:
    """Small random grid-ish networks built through the public builder."""
    n_rows = draw(st.integers(min_value=2, max_value=4))
    n_cols = draw(st.integers(min_value=2, max_value=4))
    spacing = 0.004
    builder = RoadNetworkBuilder()
    lattice = []
    for i in range(n_rows):
        row = []
        for j in range(n_cols):
            jx = draw(st.floats(min_value=-0.001, max_value=0.001))
            jy = draw(st.floats(min_value=-0.001, max_value=0.001))
            row.append(builder.add_vertex(j * spacing + jx,
                                          i * spacing + jy))
        lattice.append(row)
    for i in range(n_rows):
        builder.add_street(f"H{i}", lattice[i])
    for j in range(n_cols):
        builder.add_street(f"V{j}", [lattice[i][j] for i in range(n_rows)])
    return builder.build()


@st.composite
def random_pois(draw, min_size: int = 0, max_size: int = 25) -> POISet:
    items = draw(st.lists(
        st.tuples(coordinates, coordinates, keyword_sets),
        min_size=min_size, max_size=max_size))
    return POISet(POI(i, x, y, kws) for i, (x, y, kws) in enumerate(items))


@st.composite
def random_photos(draw, min_size: int = 1, max_size: int = 25) -> PhotoSet:
    items = draw(st.lists(
        st.tuples(coordinates, coordinates, keyword_sets),
        min_size=min_size, max_size=max_size))
    return PhotoSet(Photo(i, x, y, kws) for i, (x, y, kws) in enumerate(items))
