"""Tests for :mod:`repro.core.describe.measures` (Definitions 4-7, Eqs 2-10)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.describe.measures import (
    jaccard_distance,
    mmr_value,
    objective_value,
    pair_div,
    photo_rel,
    set_diversity,
    set_relevance,
    spatial_div,
    textual_div,
)
from repro.core.describe.profile import StreetProfile
from repro.data.keywords import KeywordFrequencyVector
from repro.data.photo import Photo, PhotoSet
from repro.geometry.bbox import BBox


@pytest.fixture()
def profile() -> StreetProfile:
    photos = PhotoSet([
        Photo(0, 0.0, 0.0, frozenset({"a", "b"})),
        Photo(1, 3.0, 4.0, frozenset({"a"})),
        Photo(2, 0.0, 5.0, frozenset({"c"})),
        Photo(3, 1.0, 1.0, frozenset()),
    ])
    return StreetProfile(
        photos=photos,
        phi=KeywordFrequencyVector({"a": 2.0, "b": 1.0, "c": 1.0}),
        max_d=10.0,
        extent=BBox(0, 0, 5, 5),
        rho=2.0)


class TestJaccard:
    def test_disjoint(self):
        assert jaccard_distance(frozenset({"a"}), frozenset({"b"})) == 1.0

    def test_identical(self):
        assert jaccard_distance(frozenset({"a", "b"}),
                                frozenset({"a", "b"})) == 0.0

    def test_partial(self):
        assert jaccard_distance(frozenset({"a", "b"}),
                                frozenset({"b", "c"})) == pytest.approx(2 / 3)

    def test_both_empty(self):
        assert jaccard_distance(frozenset(), frozenset()) == 0.0

    def test_one_empty(self):
        assert jaccard_distance(frozenset({"a"}), frozenset()) == 1.0

    @given(st.frozensets(st.sampled_from("abcd")),
           st.frozensets(st.sampled_from("abcd")))
    def test_metric_range_and_symmetry(self, a, b):
        d = jaccard_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == jaccard_distance(b, a)


class TestPairwise:
    def test_spatial_div_normalised(self, profile):
        assert spatial_div(profile, 0, 1) == pytest.approx(0.5)  # 5 / 10

    def test_textual_div(self, profile):
        assert textual_div(profile, 0, 1) == pytest.approx(0.5)

    def test_pair_div_weighting(self, profile):
        full = pair_div(profile, 0, 1, w=0.5)
        assert full == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)
        assert pair_div(profile, 0, 1, w=1.0) == pytest.approx(0.5)
        assert pair_div(profile, 0, 1, w=0.0) == pytest.approx(0.5)


class TestSetMeasures:
    def test_set_relevance_is_mean(self, profile):
        positions = [0, 1]
        expected = (photo_rel(profile, 0, 0.5)
                    + photo_rel(profile, 1, 0.5)) / 2
        assert set_relevance(profile, positions, 0.5) == pytest.approx(
            expected)

    def test_set_relevance_empty(self, profile):
        assert set_relevance(profile, [], 0.5) == 0.0

    def test_set_diversity_is_mean_pairwise(self, profile):
        positions = [0, 1, 2]
        total = sum(pair_div(profile, a, b, 0.5)
                    for a, b in [(0, 1), (0, 2), (1, 2)])
        assert set_diversity(profile, positions, 0.5) == pytest.approx(
            total / 3)

    def test_set_diversity_singleton_zero(self, profile):
        assert set_diversity(profile, [0], 0.5) == 0.0

    def test_objective_combination(self, profile):
        positions = [0, 1]
        lam, w = 0.3, 0.7
        assert objective_value(profile, positions, lam, w) == pytest.approx(
            (1 - lam) * set_relevance(profile, positions, w)
            + lam * set_diversity(profile, positions, w))

    def test_objective_pure_relevance(self, profile):
        assert objective_value(profile, [0, 1], 0.0, 0.5) == pytest.approx(
            set_relevance(profile, [0, 1], 0.5))

    def test_objective_pure_diversity(self, profile):
        assert objective_value(profile, [0, 1], 1.0, 0.5) == pytest.approx(
            set_diversity(profile, [0, 1], 0.5))


class TestMMR:
    def test_empty_selection_is_scaled_relevance(self, profile):
        assert mmr_value(profile, 0, [], 0.4, 0.5, 3) == pytest.approx(
            0.6 * photo_rel(profile, 0, 0.5))

    def test_equation_10(self, profile):
        lam, w, k = 0.5, 0.5, 3
        selected = [1, 2]
        div_sum = (pair_div(profile, 0, 1, w)
                   + pair_div(profile, 0, 2, w))
        expected = (1 - lam) * photo_rel(profile, 0, w) \
            + lam / (k - 1) * div_sum
        assert mmr_value(profile, 0, selected, lam, w, k) == pytest.approx(
            expected)

    def test_k_equals_one_degenerates_to_relevance(self, profile):
        assert mmr_value(profile, 0, [1], 0.5, 0.5, 1) == pytest.approx(
            0.5 * photo_rel(profile, 0, 0.5))

    def test_lambda_zero_ignores_selection(self, profile):
        assert mmr_value(profile, 0, [1, 2], 0.0, 0.5, 3) == pytest.approx(
            photo_rel(profile, 0, 0.5))
