"""Validity of the Section 4.2.2 cell bounds (Equations 11-18).

The single property that makes ST_Rel+Div exact is: for every cell ``c``
and every photo ``r'`` in ``c``, each lower/upper bound pair brackets the
exact measure.  These tests check all four pairs — and the combined
``mmr`` bounds — on both crafted and Hypothesis-generated photo sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.describe.bounds import CellBoundsContext
from repro.core.describe.measures import (
    mmr_value,
    spatial_div,
    textual_div,
)
from repro.core.describe.profile import StreetProfile
from repro.data.keywords import KeywordFrequencyVector
from repro.data.photo import Photo, PhotoSet
from repro.geometry.bbox import BBox
from repro.index.photo_grid import PhotoGridIndex

from tests.conftest import random_photos

TOL = 1e-9


def _context(photos: PhotoSet, rho: float = 0.004) -> tuple[
        StreetProfile, PhotoGridIndex, CellBoundsContext]:
    extent = BBox(-0.005, -0.005, 0.025, 0.025)
    phi = KeywordFrequencyVector.from_keyword_sets(
        p.keywords for p in photos)
    profile = StreetProfile(photos=photos, phi=phi,
                            max_d=extent.diagonal, extent=extent, rho=rho)
    index = PhotoGridIndex(photos, extent, rho)
    return profile, index, CellBoundsContext(profile, index)


class TestRelevanceBounds:
    @given(random_photos(min_size=2, max_size=30))
    def test_spatial_relevance_bracketed(self, photos):
        profile, index, ctx = _context(photos)
        for cell in index.cells():
            bounds = ctx.relevance_bounds(cell)
            for pos in cell.positions:
                exact = float(profile.spatial_rel[pos])
                assert bounds.spatial_lo - TOL <= exact <= \
                    bounds.spatial_hi + TOL

    @given(random_photos(min_size=2, max_size=30))
    def test_textual_relevance_bracketed(self, photos):
        profile, index, ctx = _context(photos)
        for cell in index.cells():
            bounds = ctx.relevance_bounds(cell)
            for pos in cell.positions:
                exact = float(profile.textual_rel[pos])
                assert bounds.textual_lo - TOL <= exact <= \
                    bounds.textual_hi + TOL

    def test_relevance_bounds_cached(self):
        photos = PhotoSet([Photo(0, 0.001, 0.001, frozenset({"a"}))])
        _profile, index, ctx = _context(photos)
        cell = next(index.cells())
        assert ctx.relevance_bounds(cell) is ctx.relevance_bounds(cell)


class TestDiversityBounds:
    @given(random_photos(min_size=2, max_size=25))
    def test_spatial_diversity_bracketed(self, photos):
        profile, index, ctx = _context(photos)
        reference = 0
        for cell in index.cells():
            lo, hi = ctx.spatial_div_bounds(cell, reference)
            for pos in cell.positions:
                exact = spatial_div(profile, pos, reference)
                assert lo - TOL <= exact <= hi + TOL

    @given(random_photos(min_size=2, max_size=25))
    def test_textual_diversity_bracketed(self, photos):
        profile, index, ctx = _context(photos)
        for reference in range(min(3, len(photos))):
            for cell in index.cells():
                lo, hi = ctx.textual_div_bounds(cell, reference)
                for pos in cell.positions:
                    exact = textual_div(profile, pos, reference)
                    assert lo - TOL <= exact <= hi + TOL, (
                        f"cell={cell.coord} pos={pos} ref={reference} "
                        f"exact={exact} bounds=({lo}, {hi})")

    def test_textual_bounds_with_empty_tag_sets(self):
        photos = PhotoSet([
            Photo(0, 0.001, 0.001, frozenset()),
            Photo(1, 0.0012, 0.0011, frozenset()),
            Photo(2, 0.0011, 0.0012, frozenset({"a", "b"})),
        ])
        profile, index, ctx = _context(photos)
        for reference in range(3):
            for cell in index.cells():
                lo, hi = ctx.textual_div_bounds(cell, reference)
                for pos in cell.positions:
                    exact = textual_div(profile, pos, reference)
                    assert lo - TOL <= exact <= hi + TOL


class TestMMRBounds:
    @given(random_photos(min_size=3, max_size=25),
           st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    def test_mmr_bracketed(self, photos, lam, w):
        profile, index, ctx = _context(photos)
        selected = [0, min(1, len(photos) - 1)]
        k = 5
        for cell in index.cells():
            lo, hi = ctx.mmr_bounds(cell, selected, lam, w, k)
            for pos in cell.positions:
                if pos in selected:
                    continue
                exact = mmr_value(profile, pos, selected, lam, w, k)
                assert lo - TOL <= exact <= hi + TOL

    @given(random_photos(min_size=1, max_size=20))
    def test_mmr_bounds_empty_selection(self, photos):
        profile, index, ctx = _context(photos)
        for cell in index.cells():
            lo, hi = ctx.mmr_bounds(cell, [], 0.5, 0.5, 3)
            for pos in cell.positions:
                exact = mmr_value(profile, pos, [], 0.5, 0.5, 3)
                assert lo - TOL <= exact <= hi + TOL
