"""The bench report schema and the --check-against comparator."""

from __future__ import annotations

import pytest

from repro.perf import bench


def serve_row(qps: float, p50: float) -> dict:
    return {"workers": 1, "qps": qps, "latency_p50_s": p50,
            "latency_p90_s": p50 * 2, "latency_p99_s": p50 * 3,
            "wall_s": 1.0, "warm_wall_s": 1.0}


def serve_run(qps: float, p50: float) -> dict:
    return {
        "suite": "serve",
        "schema_version": bench.SCHEMA_VERSION,
        "cities": {"vienna": {
            "records": [serve_row(qps, p50)],
            "qps_speedup_vs_1_worker": {"1": 1.0},
        }},
    }


def test_reports_carry_schema_version():
    assert bench.SCHEMA_VERSION == 5
    run = serve_run(100.0, 0.01)
    assert run["schema_version"] == bench.SCHEMA_VERSION


def test_compare_passes_within_tolerance():
    base = serve_run(100.0, 0.010)
    current = serve_run(95.0, 0.011)  # 5% / 10% drift, tolerance 20%
    assert bench.compare_reports(current, base, tolerance=0.2) == []


def test_compare_flags_regressions_in_both_directions():
    base = serve_run(100.0, 0.010)
    current = serve_run(50.0, 0.030)
    metrics = {r["metric"]: r["direction"]
               for r in bench.compare_reports(current, base, tolerance=0.2)}
    assert metrics["cities.vienna.records.workers=1.qps"] == "higher"
    assert metrics["cities.vienna.records.workers=1.latency_p50_s"] == "lower"


def test_compare_aligns_worker_rows_not_list_indexes():
    base = serve_run(100.0, 0.010)
    base["cities"]["vienna"]["records"].insert(
        0, dict(serve_row(40.0, 0.02), workers=2))
    current = serve_run(100.0, 0.010)  # only the workers=1 row
    assert bench.compare_reports(current, base, tolerance=0.05) == []


def test_compare_latency_suite_medians():
    base = {"schema_version": 2,
            "cities": {"vienna": {"soi_median_s": 1.0,
                                  "k_points": {"10": 0.5}}}}
    worse = {"schema_version": 2,
             "cities": {"vienna": {"soi_median_s": 1.5,
                                   "k_points": {"10": 0.9}}}}
    regressions = bench.compare_reports(worse, base, tolerance=0.2)
    assert [r["metric"] for r in regressions] == [
        "cities.vienna.soi_median_s", "cities.vienna.k_points.10"]
    assert bench.compare_reports(base, worse, tolerance=0.2) == []


def test_compare_rejects_schema_mismatch():
    with pytest.raises(ValueError):
        bench.compare_reports({"schema_version": 1},
                              {"schema_version": 3})
    # Reports predating the field default to version 1.
    with pytest.raises(ValueError):
        bench.compare_reports({}, serve_run(1.0, 1.0))


def test_compare_accepts_v2_baseline_against_v3_current():
    """Schemas 3/4 only add obs sections; v2 baselines stay comparable."""
    assert bench.COMPARABLE_SCHEMAS == frozenset({2, 3, 4, 5})
    base = {"schema_version": 2,
            "cities": {"vienna": {"soi_median_s": 1.0}}}
    current = {"schema_version": 3,
               "cities": {"vienna": {"soi_median_s": 1.0,
                                     "obs": {"span_count": 7}}}}
    assert bench.compare_reports(current, base, tolerance=0.2) == []
    # The obs medians are informational, never regression-gated.
    slower_obs = {"schema_version": 3,
                  "cities": {"vienna": {
                      "soi_median_s": 1.0,
                      "obs": {"median_trace_off_s": 9.0,
                              "median_trace_on_s": 9.0}}}}
    assert bench.compare_reports(
        slower_obs, current, tolerance=0.2) == []


def test_compare_noise_floor_absorbs_millisecond_jitter():
    """Sub-``min_delta_s`` drifts never regress, however large relatively."""
    base = {"schema_version": 2,
            "cities": {"vienna": {"soi_median_s": 0.002,
                                  "k_points": {"10": 0.003}}}}
    jittered = {"schema_version": 2,
                "cities": {"vienna": {"soi_median_s": 0.006,
                                      "k_points": {"10": 0.007}}}}
    # 2x-3x relative blowups, but each only +4ms absolute.
    assert bench.compare_reports(jittered, base, tolerance=0.2) == []
    # Tightening the floor restores the relative gate.
    metrics = [r["metric"] for r in bench.compare_reports(
        jittered, base, tolerance=0.2, min_delta_s=0.001)]
    assert metrics == ["cities.vienna.soi_median_s",
                       "cities.vienna.k_points.10"]
    # QPS (higher-is-better) metrics are unaffected by the seconds floor.
    slow = serve_run(50.0, 0.010)
    assert any(r["metric"].endswith(".qps") for r in bench.compare_reports(
        slow, serve_run(100.0, 0.010), tolerance=0.2))


def test_compare_rejects_negative_tolerance():
    with pytest.raises(ValueError):
        bench.compare_reports(serve_run(1.0, 1.0), serve_run(1.0, 1.0),
                              tolerance=-0.1)


def test_worker_counts_are_powers_of_two_plus_max():
    assert bench.worker_counts(1) == [1]
    assert bench.worker_counts(4) == [1, 2, 4]
    assert bench.worker_counts(6) == [1, 2, 4, 6]


def test_append_serve_run_is_append_only(tmp_path):
    path = tmp_path / "BENCH_serve.json"
    bench.append_serve_run(serve_run(100.0, 0.01), path)
    bench.append_serve_run(serve_run(90.0, 0.01), path)
    import json
    log = json.loads(path.read_text(encoding="utf-8"))
    assert log["schema_version"] == bench.SCHEMA_VERSION
    assert [run["cities"]["vienna"]["records"][0]["qps"]
            for run in log["runs"]] == [100.0, 90.0]


def latency_report() -> dict:
    return {
        "suite": "soi",
        "schema_version": bench.SCHEMA_VERSION,
        "environment": {"python": "3.11.7", "numpy": "1.26", "cpu_count": 4},
        "cities": {"vienna": {
            "soi_k_sweep_median_s": 0.05,
            "bl_k_sweep_median_s": 0.20,
            "soi_k_points": {"10": 0.01},
            "counters": {"cold": {"kernel_calls": 7}},
        }},
    }


def test_history_record_keeps_medians_counters_and_environment():
    record = bench.history_record(latency_report())
    assert record["suite"] == "soi"
    assert record["schema_version"] == bench.SCHEMA_VERSION
    city = record["cities"]["vienna"]
    assert city["medians"] == {"soi_k_sweep_median_s": 0.05,
                               "bl_k_sweep_median_s": 0.20}
    assert city["counters"] == {"cold": {"kernel_calls": 7}}
    assert record["environment"]["cpu_count"] == 4
    # Per-point sweeps are detail the one-line log deliberately drops.
    assert "soi_k_points" not in str(city["medians"])


def test_history_record_serve_run_keeps_qps_and_batch():
    run = serve_run(100.0, 0.01)
    run["micro_batch"] = 8
    record = bench.history_record(run)
    assert record["micro_batch"] == 8
    assert record["cities"]["vienna"]["qps"] == {"1": 100.0}


def test_append_history_round_trips_one_line_per_run(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    bench.append_history(latency_report(), path)
    bench.append_history(serve_run(100.0, 0.01), path)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    records = bench.read_history(path)
    assert [r["suite"] for r in records] == ["soi", "serve"]
    # Records are deterministic: same report, same byte-identical line.
    bench.append_history(latency_report(), path)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert lines[2] == lines[0]
    assert bench.read_history(tmp_path / "missing.jsonl") == []
