"""Property-based equivalence: SOI == exhaustive evaluation.

Hypothesis generates small road networks and POI sets; for every query the
SOI algorithm must return the same interest values as the brute-force
reference (Definitions 1-3 computed with full scans), with streets
matching above the k-th-value tie boundary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.soi import AccessStrategy, SOIEngine
from repro.core.soi_baseline import BaselineSOI

from tests.conftest import random_networks, random_pois
from tests.test_core_soi import assert_topk_equivalent, brute_force_topk


@given(network=random_networks(),
       pois=random_pois(min_size=1, max_size=25),
       k=st.integers(min_value=1, max_value=6),
       eps=st.sampled_from([0.0004, 0.001, 0.002]),
       keywords=st.lists(st.sampled_from(["shop", "food", "bar", "art"]),
                         min_size=1, max_size=3, unique=True))
@settings(max_examples=60)
def test_soi_equals_bruteforce(network, pois, k, eps, keywords):
    engine = SOIEngine(network, pois, cell_size=0.0015)
    results = engine.top_k(keywords, k=k, eps=eps)
    expected = brute_force_topk(network, pois, keywords, k, eps)
    got = [r.interest for r in results]
    want = [interest for interest, _sid in expected]
    assert got == pytest.approx(want)
    if want:
        boundary = want[-1]
        got_ids = {r.street_id for r in results
                   if r.interest > boundary + 1e-9}
        want_ids = {sid for interest, sid in expected
                    if interest > boundary + 1e-9}
        assert got_ids == want_ids


@given(network=random_networks(),
       pois=random_pois(min_size=1, max_size=25),
       strategy=st.sampled_from(list(AccessStrategy)),
       prune=st.booleans())
@settings(max_examples=40)
def test_soi_options_agree_with_baseline(network, pois, strategy, prune):
    engine = SOIEngine(network, pois, cell_size=0.0015)
    baseline = BaselineSOI(engine).top_k(["shop", "food"], k=4, eps=0.001)
    results = engine.top_k(["shop", "food"], k=4, eps=0.001,
                           strategy=strategy, prune_refinement=prune)
    assert_topk_equivalent(results, baseline)


@pytest.fixture(scope="module", params=["vienna", "berlin"])
def preset_engine(request):
    """A scaled-down Figure 4 city preset (built once per module)."""
    from repro.datagen import build_preset

    city = build_preset(request.param, 0.1)
    return SOIEngine(city.network, city.pois)


@pytest.mark.parametrize("check", [False, True], ids=["plain", "contracts"])
@given(k=st.integers(min_value=1, max_value=20),
       num_keywords=st.integers(min_value=1, max_value=4),
       weighted=st.booleans())
@settings(max_examples=25, deadline=None)
def test_access_strategies_agree_on_fig4_presets(preset_engine, check, k,
                                                 num_keywords, weighted):
    """The paper: correctness "is not affected by the access strategy".

    Every variant must return the *identical* result list (streets,
    interests bitwise, best segments) on the Figure 4 query presets —
    plain and with runtime contracts on (``REPRO_CHECK=1`` semantics).
    """
    from repro.analysis import contracts
    from repro.eval.experiments import PAPER_QUERY_KEYWORDS

    keywords = PAPER_QUERY_KEYWORDS[:num_keywords]
    previous = contracts.ENABLED
    contracts.enable_contracts(check)
    try:
        reference = preset_engine.top_k(
            keywords, k=k, eps=0.0005, weighted=weighted,
            strategy=AccessStrategy.ALTERNATE)
        for strategy in AccessStrategy:
            results = preset_engine.top_k(
                keywords, k=k, eps=0.0005, weighted=weighted,
                strategy=strategy)
            assert results == reference, strategy
    finally:
        contracts.enable_contracts(previous)


@given(network=random_networks(), pois=random_pois(max_size=20))
@settings(max_examples=30)
def test_weighted_soi_equals_weighted_bruteforce(network, pois):
    # Re-weight POIs deterministically by position so weights vary.
    from repro.data.poi import POI, POISet

    weighted = POISet([
        POI(p.id, p.x, p.y, p.keywords, weight=1.0 + (i % 3))
        for i, p in enumerate(pois)])
    engine = SOIEngine(network, weighted, cell_size=0.0015)
    results = engine.top_k(["shop"], k=3, eps=0.001, weighted=True)
    expected = brute_force_topk(network, weighted, ["shop"], 3, 0.001,
                                weighted=True)
    assert [r.interest for r in results] == pytest.approx(
        [interest for interest, _sid in expected])
