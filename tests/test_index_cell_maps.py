"""Tests for :mod:`repro.index.cell_maps`.

The critical invariant (mass exactness depends on it): every POI within
``eps`` of a segment lies in some cell of ``C_eps(l)``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.geometry.distance import point_segment_distance
from repro.index.cell_maps import SegmentCellMaps
from repro.index.grid import UniformGrid

from tests.conftest import random_networks


@pytest.fixture()
def cross_maps(cross_network):
    grid = UniformGrid(cross_network.bbox().expanded(0.5), 0.25)
    return SegmentCellMaps(cross_network, grid)


class TestBaseMaps:
    def test_segment_intersects_its_base_cells(self, cross_maps):
        for seg in cross_maps.network.iter_segments():
            cells = cross_maps.base_cells_of_segment(seg.id)
            assert cells, f"segment {seg.id} has no base cells"
            # endpoints must be covered
            assert cross_maps.grid.cell_of(seg.ax, seg.ay) in cells
            assert cross_maps.grid.cell_of(seg.bx, seg.by) in cells

    def test_base_inverse_map_consistent(self, cross_maps):
        for seg in cross_maps.network.iter_segments():
            for cell in cross_maps.base_cells_of_segment(seg.id):
                assert seg.id in cross_maps.base_segments_of_cell(cell)

    def test_unknown_cell_has_no_segments(self, cross_maps):
        assert cross_maps.base_segments_of_cell((0, 0)) == ()


class TestAugmentedMaps:
    def test_augmented_superset_of_base(self, cross_maps):
        for seg in cross_maps.network.iter_segments():
            base = set(cross_maps.base_cells_of_segment(seg.id))
            augmented = set(cross_maps.cells_of_segment(seg.id, eps=0.3))
            assert base <= augmented

    def test_eps_zero_equals_base(self, cross_maps):
        for seg in cross_maps.network.iter_segments():
            assert set(cross_maps.cells_of_segment(seg.id, eps=0.0)) == \
                set(cross_maps.base_cells_of_segment(seg.id))

    def test_inverse_consistency(self, cross_maps):
        eps = 0.3
        for seg in cross_maps.network.iter_segments():
            for cell in cross_maps.cells_of_segment(seg.id, eps):
                assert seg.id in cross_maps.segments_of_cell(cell, eps)

    def test_augmented_counts_match_map(self, cross_maps):
        eps = 0.3
        counts = cross_maps.augmented_cell_counts(eps)
        for seg in cross_maps.network.iter_segments():
            assert counts[seg.id] == \
                len(cross_maps.cells_of_segment(seg.id, eps))

    def test_caching_returns_same_object(self, cross_maps):
        first = cross_maps.cells_of_segment(0, 0.3)
        second = cross_maps.cells_of_segment(0, 0.3)
        assert first is second

    def test_negative_eps_raises(self, cross_maps):
        with pytest.raises(ValueError):
            cross_maps.cells_of_segment(0, -0.1)


class TestCoverageInvariant:
    @given(random_networks(),
           st.lists(st.tuples(
               st.floats(min_value=-0.002, max_value=0.022),
               st.floats(min_value=-0.002, max_value=0.022)),
               min_size=1, max_size=20))
    def test_points_within_eps_are_covered(self, network, points):
        """Any point within eps of segment l lies in a cell of C_eps(l)."""
        eps = 0.0008
        grid = UniformGrid(network.bbox().expanded(0.005), 0.0015)
        maps = SegmentCellMaps(network, grid)
        for seg in network.iter_segments():
            cells = set(maps.cells_of_segment(seg.id, eps))
            for x, y in points:
                if point_segment_distance(x, y, seg.ax, seg.ay,
                                          seg.bx, seg.by) <= eps:
                    assert grid.cell_of(x, y) in cells
