"""Tests for :mod:`repro.eval` (metrics, timing, reporting, experiments)."""

from __future__ import annotations

import pytest

from repro.eval.metrics import (
    average_precision,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.reporting import format_float, format_series, format_table
from repro.eval.timing import Timer, best_of, time_call


class TestMetrics:
    RANKED = ["a", "b", "c", "d", "e"]

    def test_recall_at_k(self):
        assert recall_at_k(self.RANKED, ["a", "c", "z"], 3) == \
            pytest.approx(2 / 3)
        assert recall_at_k(self.RANKED, ["a"], 1) == 1.0
        assert recall_at_k(self.RANKED, ["z"], 5) == 0.0

    def test_recall_empty_relevant(self):
        assert recall_at_k(self.RANKED, [], 3) == 0.0

    def test_recall_paper_scenario(self):
        """Table 2: 4 of 5 source streets in the top 10 -> recall 0.8."""
        ranked = [f"s{i}" for i in range(10)]
        relevant = ["s0", "s3", "s7", "s9", "missing"]
        assert recall_at_k(ranked, relevant, 10) == pytest.approx(0.8)

    def test_precision_at_k(self):
        assert precision_at_k(self.RANKED, ["a", "c"], 2) == 0.5
        assert precision_at_k(self.RANKED, ["a", "b"], 2) == 1.0
        assert precision_at_k(self.RANKED, ["a"], 0) == 0.0

    def test_precision_k_beyond_length(self):
        assert precision_at_k(["a"], ["a"], 10) == 1.0

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            recall_at_k(self.RANKED, ["a"], -1)
        with pytest.raises(ValueError):
            precision_at_k(self.RANKED, ["a"], -1)

    def test_average_precision(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision(["a", "b", "c"], ["a", "c"]) == \
            pytest.approx((1.0 + 2 / 3) / 2)
        assert average_precision(["a"], []) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(self.RANKED, ["c"]) == pytest.approx(1 / 3)
        assert reciprocal_rank(self.RANKED, ["z"]) == 0.0


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(100))
        assert t.seconds >= 0.0

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda: 42)
        assert result == 42
        assert seconds >= 0.0

    def test_best_of(self):
        result, seconds = best_of(lambda: "x", repeats=3)
        assert result == "x"
        assert seconds >= 0.0

    def test_best_of_validates_repeats(self):
        with pytest.raises(ValueError):
            best_of(lambda: 1, repeats=0)


class TestReporting:
    def test_format_float(self):
        assert format_float(1.23456) == "1.235"
        assert format_float(1.2, digits=1) == "1.2"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["longer", 22]],
                             title="Demo")
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("soi", [10, 20], [0.5, 0.25], digits=2)
        assert out == "soi: 10=0.50, 20=0.25"


class TestExperimentDrivers:
    """Smoke tests of the per-table/figure drivers on the small city."""

    def test_dataset_stats(self, small_city):
        from repro.eval.experiments import dataset_stats

        stats = dataset_stats(small_city)
        assert stats["dataset"] == "testville"
        assert stats["num_segments"] == len(small_city.network.segments)
        assert stats["num_pois"] == len(small_city.pois)
        assert stats["min_segment_length"] <= stats["max_segment_length"]

    def test_relevant_poi_counts_monotone(self, small_city):
        from repro.eval.experiments import relevant_poi_counts

        counts = relevant_poi_counts(small_city)
        assert len(counts) == 4
        assert counts == sorted(counts)

    def test_shopping_effectiveness(self, small_city):
        from repro.eval.experiments import shopping_effectiveness

        report = shopping_effectiveness(small_city, k=10)
        assert len(report.recalls) == 2
        assert all(0.0 <= r <= 1.0 for r in report.recalls)
        assert len(report.ranked_street_ids) <= 10
        assert len(report.ranked_street_names) == \
            len(report.ranked_street_ids)

    def test_soi_timing(self, small_city):
        from repro.eval.experiments import soi_timing

        times = soi_timing(small_city, ["shop"], k=5, repeats=1)
        assert times["soi"] > 0 and times["bl"] > 0

    def test_top_soi_profile_and_scores(self, small_city):
        from repro.eval.experiments import describe_scores, top_soi_profile

        profile = top_soi_profile(small_city, "shop")
        assert len(profile) > 0
        scores = describe_scores(profile, k=3)
        assert scores["ST_Rel+Div"] == pytest.approx(1.0)
        assert set(scores) == {
            "S_Rel", "S_Div", "S_Rel+Div", "T_Rel", "T_Div", "T_Rel+Div",
            "ST_Rel", "ST_Div", "ST_Rel+Div"}

    def test_tradeoff_curve(self, small_city):
        from repro.eval.experiments import top_soi_profile, tradeoff_curve

        profile = top_soi_profile(small_city, "shop")
        curve = tradeoff_curve(profile, k=5, lambdas=(0.0, 0.5, 1.0))
        assert [lam for lam, _r, _d in curve] == [0.0, 0.5, 1.0]
        rels = [r for _lam, r, _d in curve]
        divs = [d for _lam, _r, d in curve]
        assert max(rels) == pytest.approx(1.0)
        assert max(divs) == pytest.approx(1.0)
        # relevance weakly decreases as lambda grows; diversity weakly grows
        assert rels[0] >= rels[-1] - 1e-9
        assert divs[-1] >= divs[0] - 1e-9

    def test_describe_timing(self, small_city):
        from repro.eval.experiments import describe_timing, top_soi_profile

        profile = top_soi_profile(small_city, "shop")
        times = describe_timing(profile, k=3, repeats=1)
        assert times["st_rel_div"] > 0 and times["bl"] > 0
