"""Unit tests for the serve-path result cache (repro.perf.result_cache).

These exercise the cache in isolation with synthetic payloads; the
bit-identity of cached serving against the real engine lives in
``test_serve_cache.py`` and the prefix-stability property behind the
dominated-k reuse in ``test_prefix_stability.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ContractViolation
from repro.analysis import contracts
from repro.obs.metrics import MetricsRegistry
from repro.perf.result_cache import (
    MISS,
    ResultCache,
    estimate_payload_bytes,
    request_cache_key,
    slice_payload,
)
from repro.serve.server import DescribeRequest, SOIRequest


def make_cache(**kwargs) -> ResultCache:
    kwargs.setdefault("registry", MetricsRegistry())
    return ResultCache(**kwargs)


# -- canonical keys -----------------------------------------------------------

def test_soi_key_excludes_k_and_normalises_keywords():
    a = SOIRequest(keywords=("Shop", "food", "shop"), k=10)
    b = SOIRequest(keywords=("food", "shop"), k=100)
    assert request_cache_key(a) == request_cache_key(b)


def test_describe_key_includes_k():
    # MMR selections are k-dependent (Equation 10 normalises diversity by
    # lam/(k-1)), so describe entries may only be reused at the exact k.
    a = DescribeRequest(street_id=3, k=10)
    b = DescribeRequest(street_id=3, k=20)
    assert request_cache_key(a) != request_cache_key(b)
    assert request_cache_key(a) == request_cache_key(
        DescribeRequest(street_id=3, k=10))


def test_key_separates_kinds_and_parameters():
    soi = SOIRequest(keywords=("shop",), k=10)
    keys = {
        request_cache_key(soi),
        request_cache_key(SOIRequest(keywords=("shop",), k=10, eps=0.002)),
        request_cache_key(SOIRequest(keywords=("shop",), k=10, weighted=True)),
        request_cache_key(DescribeRequest(street_id=3, k=10)),
        request_cache_key(DescribeRequest(street_id=4, k=10)),
    }
    assert len(keys) == 5
    assert request_cache_key(soi)[0] == "soi"


# -- hit taxonomy -------------------------------------------------------------

def test_exact_dominated_exhausted_and_miss():
    cache = make_cache()
    key = ("soi", ("shop",), 0.001, False, "alternate")
    assert cache.lookup(key, 5) is MISS

    cache.store(key, 5, ["a", "b", "c", "d", "e"])
    assert cache.lookup(key, 5) == ["a", "b", "c", "d", "e"]  # exact
    assert cache.lookup(key, 2) == ["a", "b"]  # dominated-k slice
    assert cache.lookup(key, 9) is MISS  # deeper than stored, not exhausted

    # Exhausted entry: stored at k=5 but only 3 results existed, so any
    # deeper request sees the same full list.
    short = ("soi", ("rare",), 0.001, False, "alternate")
    cache.store(short, 5, ["x", "y", "z"])
    assert cache.lookup(short, 50) == ["x", "y", "z"]

    stats = cache.stats()
    assert stats["exact_hits"] == 1
    assert stats["dominated_hits"] == 1
    assert stats["exhausted_hits"] == 1
    assert stats["misses"] == 2
    assert stats["hits"] == 3
    assert stats["hit_rate"] == pytest.approx(3 / 5)


def test_lookup_returns_fresh_copies():
    cache = make_cache()
    cache.store(("k",), 2, [1, 2])
    first = cache.lookup(("k",), 2)
    first.append(99)
    assert cache.lookup(("k",), 2) == [1, 2]
    assert slice_payload([1, 2], 2) is not None


def test_store_keeps_the_larger_k_entry():
    cache = make_cache()
    cache.store(("k",), 4, [1, 2, 3, 4])
    cache.store(("k",), 2, [9, 9])  # smaller k: ignored (LRU refresh only)
    assert cache.lookup(("k",), 4) == [1, 2, 3, 4]
    cache.store(("k",), 6, [1, 2, 3, 4, 5, 6])  # larger k: replaces
    assert cache.lookup(("k",), 6) == [1, 2, 3, 4, 5, 6]
    assert cache.stats()["insertions"] == 1  # one signature throughout


# -- bounds -------------------------------------------------------------------

def test_lru_entry_bound_evicts_least_recent():
    cache = make_cache(max_entries=2)
    cache.store(("a",), 1, [1])
    cache.store(("b",), 1, [2])
    assert cache.lookup(("a",), 1) == [1]  # refreshes a
    cache.store(("c",), 1, [3])  # evicts b, the least recent
    assert cache.lookup(("b",), 1) is MISS
    assert cache.lookup(("a",), 1) == [1]
    assert cache.lookup(("c",), 1) == [3]
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1


def test_byte_bound_evicts_but_keeps_at_least_one_entry():
    payload = list(range(64))
    nbytes = estimate_payload_bytes(payload)
    cache = make_cache(max_bytes=int(nbytes * 1.5))
    cache.store(("a",), 64, list(payload))
    cache.store(("b",), 64, list(payload))  # over budget: a evicted
    assert cache.lookup(("a",), 64) is MISS
    assert cache.lookup(("b",), 64) == payload
    # A single entry above the budget is kept: an empty cache that can
    # never admit anything would be worse than a slightly-over one.
    assert len(cache) == 1
    assert cache.nbytes == nbytes


def test_constructor_validation():
    with pytest.raises(ValueError):
        make_cache(max_entries=0)
    with pytest.raises(ValueError):
        make_cache(max_bytes=0)


def test_estimate_payload_bytes_counts_items():
    assert estimate_payload_bytes([]) > 0
    assert estimate_payload_bytes([1, 2, 3]) > estimate_payload_bytes([1])


# -- generation stamping ------------------------------------------------------

def test_generation_invalidation_is_wholesale():
    cache = make_cache(generation=1)
    cache.store(("k",), 2, [1, 2])
    cache.ensure_generation(1)  # no-op: stamp unchanged
    assert cache.lookup(("k",), 2) == [1, 2]
    cache.ensure_generation(2)  # index moved on: drop everything
    assert cache.generation == 2
    assert len(cache) == 0
    assert cache.nbytes == 0
    assert cache.lookup(("k",), 2) is MISS
    assert cache.stats()["invalidations"] == 1


def test_explicit_invalidate_restamps():
    cache = make_cache(generation=3)
    cache.store(("k",), 1, [1])
    cache.invalidate(7)
    assert cache.generation == 7
    assert cache.lookup(("k",), 1) is MISS


# -- the slice-path contract --------------------------------------------------

def test_contract_checks_dominated_slices_against_recompute():
    cache = make_cache()
    cache.store(("k",), 4, [1, 2, 3, 4])
    previous = contracts.ENABLED
    contracts.enable_contracts(True)
    try:
        assert cache.lookup(("k",), 2, recompute=lambda: [1, 2]) == [1, 2]
        with pytest.raises(ContractViolation):
            # A poisoned entry diverging from a fresh computation must
            # never be served silently under REPRO_CHECK.
            cache.lookup(("k",), 2, recompute=lambda: [1, 99])
    finally:
        contracts.enable_contracts(previous)


def test_contract_disabled_skips_recompute():
    cache = make_cache()
    cache.store(("k",), 4, [1, 2, 3, 4])
    previous = contracts.ENABLED
    contracts.enable_contracts(False)
    try:
        def boom():
            raise AssertionError("recompute must not run with checks off")
        assert cache.lookup(("k",), 2, recompute=boom) == [1, 2]
    finally:
        contracts.enable_contracts(previous)


# -- metrics ------------------------------------------------------------------

def test_gauges_track_bytes_and_entries():
    registry = MetricsRegistry()
    cache = make_cache(registry=registry)
    cache.store(("k",), 2, [1, 2])
    assert registry.gauge("serve.cache.bytes") == float(cache.nbytes)
    assert registry.gauge("serve.cache.entries") == 1.0
    cache.invalidate()
    assert registry.gauge("serve.cache.bytes") == 0.0
    assert registry.gauge("serve.cache.entries") == 0.0
