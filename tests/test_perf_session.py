"""Unit tests for :mod:`repro.perf.session` and :mod:`repro.perf.parallel`."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.perf.parallel import default_jobs, run_parallel
from repro.perf.session import QuerySessionPool


@pytest.fixture()
def engine(small_city):
    from repro.core.soi import SOIEngine

    return SOIEngine(small_city.network, small_city.pois)


class TestQuerySession:
    def test_cell_upper_bounds_cached_and_positive(self, engine):
        session = engine.session_for(["shop"])
        bounds = session.cell_upper_bounds()
        assert bounds and all(ub > 0 for ub in bounds.values())
        assert session.cell_upper_bounds() is bounds

    def test_mass_cache_keyed_by_eps_and_weighted(self, engine):
        session = engine.session_for(["shop"])
        memo = session.mass_cache(0.0005, False)
        assert session.mass_cache(0.0005, False) is memo
        assert session.mass_cache(0.0005, True) is not memo
        assert session.mass_cache(0.001, False) is not memo

    def test_cached_masses_counts_all_memos(self, engine):
        session = engine.session_for(["shop"])
        session.mass_cache(0.0005, False)[(1, (0, 0))] = 1.0
        session.mass_cache(0.001, False)[(1, (0, 0))] = 2.0
        assert session.cached_masses() == 2


class TestQuerySessionPool:
    def test_same_signature_same_session(self, engine):
        pool = engine.sessions
        assert engine.session_for(["shop"]) is engine.session_for(["SHOP"])
        assert len(pool) == 1

    def test_lru_eviction(self, small_city):
        from repro.core.soi import SOIEngine

        engine = SOIEngine(small_city.network, small_city.pois,
                           session_pool_size=2)
        first = engine.session_for(["shop"])
        engine.session_for(["food"])
        first_again = engine.session_for(["shop"])  # refresh LRU order
        assert first_again is first
        engine.session_for(["bar"])  # evicts "food", not "shop"
        pool = engine.sessions
        assert pool.evictions == 1
        assert frozenset({"shop"}) in pool
        assert frozenset({"food"}) not in pool

    def test_maxsize_validated(self, engine):
        with pytest.raises(ValueError):
            QuerySessionPool(engine.poi_index, maxsize=0)

    def test_peek_does_not_create(self, engine):
        assert engine.sessions.peek(frozenset({"nothere"})) is None
        assert len(engine.sessions) == 0

    def test_invalidate_clears_and_bumps_generation(self, engine):
        session = engine.session_for(["shop"])
        generation = engine.sessions.generation
        engine.invalidate_sessions()
        assert len(engine.sessions) == 0
        assert engine.sessions.generation == generation + 1
        assert engine.session_for(["shop"]) is not session

    def test_rebuild_indexes_invalidates(self, engine):
        session = engine.session_for(["shop"])
        old_index = engine.poi_index
        engine.rebuild_indexes()
        assert engine.poi_index is not old_index
        fresh = engine.session_for(["shop"])
        assert fresh is not session
        # The fresh session must read the *new* index.
        assert fresh.cache._poi_index is engine.poi_index

    def test_rebuild_indexes_results_unchanged(self, engine):
        before = engine.top_k(["shop"], k=5)
        engine.rebuild_indexes()
        assert engine.top_k(["shop"], k=5) == before


class TestSessionStats:
    def test_warm_query_reports_session_reuse(self, engine):
        engine.invalidate_sessions()
        _res, cold = engine.top_k_with_stats(["shop"], k=5)
        _res, warm = engine.top_k_with_stats(["shop"], k=5)
        assert not cold.session_reused
        assert warm.session_reused
        assert warm.mass_cache_hits > 0

    def test_use_session_false_never_reuses(self, engine):
        engine.top_k(["shop"], k=5)
        _res, stats = engine.top_k_with_stats(["shop"], k=5,
                                              use_session=False)
        assert not stats.session_reused
        assert stats.mass_cache_hits == 0 and stats.mass_cache_misses == 0

    def test_counters_dict_covers_all_counters(self, engine):
        _res, stats = engine.top_k_with_stats(["shop"], k=5)
        counters = stats.counters()
        assert counters["cell_visits"] == stats.cell_visits
        assert counters["kernel_calls"] == stats.kernel_calls
        assert "mass_cache_hits" in counters
        assert "session_reused" in counters

    def test_empty_keywords_rejected_before_session(self, engine):
        with pytest.raises(QueryError):
            engine.top_k([], k=5)
        assert len(engine.sessions) == 0


class TestRunParallel:
    def test_results_in_submission_order(self):
        tasks = [lambda i=i: i * i for i in range(20)]
        assert run_parallel(tasks, jobs=4) == [i * i for i in range(20)]

    def test_jobs_one_is_sequential(self):
        order: list[int] = []

        def make(i):
            def task():
                order.append(i)
                return i
            return task

        assert run_parallel([make(i) for i in range(5)], jobs=1) == \
            list(range(5))
        assert order == list(range(5))

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            run_parallel([boom, lambda: 1], jobs=2)

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            run_parallel([lambda: 1], jobs=0)

    def test_default_jobs_positive(self):
        assert 1 <= default_jobs() <= 8


class TestParallelQueries:
    def test_concurrent_queries_match_sequential(self, engine):
        keyword_sets = [["shop"], ["food"], ["shop", "food"], ["shop"]]
        expected = [engine.top_k(kws, k=5, use_session=False)
                    for kws in keyword_sets]
        results = run_parallel(
            [lambda kws=kws: engine.top_k(kws, k=5)
             for kws in keyword_sets],
            jobs=4)
        assert results == expected
