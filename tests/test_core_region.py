"""Tests for :mod:`repro.core.region` (the related-work comparator)."""

from __future__ import annotations

import pytest

from repro.core.region import RegionQuery
from repro.core.soi import SOIEngine
from repro.errors import QueryError


@pytest.fixture()
def region_query(cross_network, cross_pois):
    engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
    return RegionQuery(engine)


class TestBestRegion:
    def test_respects_length_budget(self, region_query, cross_network):
        result = region_query.best_region(["shop"], max_length=2.0, eps=0.15)
        assert result.total_length <= 2.0
        assert result.total_length == pytest.approx(sum(
            cross_network.segment(sid).length
            for sid in result.segment_ids))

    def test_region_is_connected(self, region_query, cross_network):
        result = region_query.best_region(["shop"], max_length=3.0, eps=0.15)
        assert len(result) >= 1
        chosen = set(result.segment_ids)
        # BFS over shared vertices must reach every chosen segment.
        by_vertex = {}
        for sid in chosen:
            seg = cross_network.segment(sid)
            by_vertex.setdefault(seg.u, set()).add(sid)
            by_vertex.setdefault(seg.v, set()).add(sid)
        start = next(iter(chosen))
        reached = {start}
        frontier = [start]
        while frontier:
            sid = frontier.pop()
            seg = cross_network.segment(sid)
            for vertex in (seg.u, seg.v):
                for other in by_vertex.get(vertex, ()):
                    if other in chosen and other not in reached:
                        reached.add(other)
                        frontier.append(other)
        assert reached == chosen

    def test_score_counts_relevant_pois(self, region_query):
        # Large budget: region swallows everything reachable; its score
        # is then the sum of per-segment masses of chosen segments.
        result = region_query.best_region(["shop"], max_length=100.0,
                                          eps=0.15)
        assert result.total_score > 0

    def test_budget_too_small_for_any_segment(self, region_query):
        result = region_query.best_region(["shop"], max_length=1e-6,
                                          eps=0.15)
        assert len(result) == 0
        assert result.total_score == 0.0

    def test_invalid_budget(self, region_query):
        with pytest.raises(QueryError):
            region_query.best_region(["shop"], max_length=0.0)

    def test_invalid_keywords(self, region_query):
        with pytest.raises(QueryError):
            region_query.best_region([], max_length=1.0)

    def test_quantity_over_density_artefact(self, small_city, small_engine):
        """The paper's Section 1 criticism: a region query attaches spur
        segments to the dense street, while k-SOI ranks streets alone."""
        region = RegionQuery(small_engine).best_region(
            ["shop"], max_length=0.02, eps=0.0005)
        streets = {small_city.network.segment(sid).street_id
                   for sid in region.segment_ids}
        # the region spans more than one street once the budget allows
        assert len(region) > 1
        assert len(streets) >= 1
