"""Tests for :mod:`repro.index.grid`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GridIndexError
from repro.geometry.bbox import BBox
from repro.index.grid import UniformGrid

EXTENT = BBox(0.0, 0.0, 1.0, 0.5)


class TestConstruction:
    def test_cell_counts_cover_extent(self):
        grid = UniformGrid(EXTENT, 0.1)
        assert grid.nx == 10
        assert grid.ny == 5
        assert grid.num_cells == 50

    def test_non_divisible_extent_rounds_up(self):
        grid = UniformGrid(BBox(0, 0, 1.05, 0.5), 0.1)
        assert grid.nx == 11

    def test_degenerate_extent_gets_one_cell(self):
        grid = UniformGrid(BBox(0, 0, 0, 0), 0.1)
        assert (grid.nx, grid.ny) == (1, 1)

    def test_invalid_cell_size(self):
        with pytest.raises(GridIndexError):
            UniformGrid(EXTENT, 0.0)
        with pytest.raises(GridIndexError):
            UniformGrid(EXTENT, -1.0)


class TestAddressing:
    def test_cell_of_interior_point(self):
        grid = UniformGrid(EXTENT, 0.1)
        assert grid.cell_of(0.05, 0.05) == (0, 0)
        assert grid.cell_of(0.95, 0.45) == (9, 4)

    def test_cell_of_clamps_outside_points(self):
        grid = UniformGrid(EXTENT, 0.1)
        assert grid.cell_of(-5.0, -5.0) == (0, 0)
        assert grid.cell_of(99.0, 99.0) == (9, 4)

    def test_cell_bbox_contains_its_points(self):
        grid = UniformGrid(EXTENT, 0.1)
        box = grid.cell_bbox((3, 2))
        assert box.contains_point(0.35, 0.25)
        assert box.width == pytest.approx(0.1)

    def test_cell_bbox_out_of_range_raises(self):
        grid = UniformGrid(EXTENT, 0.1)
        with pytest.raises(GridIndexError):
            grid.cell_bbox((10, 0))
        with pytest.raises(GridIndexError):
            grid.cell_bbox((0, -1))

    @given(st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=0.5))
    def test_point_lies_in_its_cell_bbox(self, x, y):
        grid = UniformGrid(EXTENT, 0.07)
        box = grid.cell_bbox(grid.cell_of(x, y))
        assert box.contains_point(x, y) or (
            # boundary points may land in the neighbouring cell box
            abs(x - box.max_x) < 1e-12 or abs(y - box.max_y) < 1e-12
            or abs(x - box.min_x) < 1e-12 or abs(y - box.min_y) < 1e-12)


class TestIteration:
    def test_cells_in_bbox(self):
        grid = UniformGrid(EXTENT, 0.1)
        cells = set(grid.cells_in_bbox(BBox(0.05, 0.05, 0.25, 0.15)))
        assert cells == {(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)}

    def test_cells_in_bbox_clamps(self):
        grid = UniformGrid(EXTENT, 0.1)
        cells = set(grid.cells_in_bbox(BBox(-10, -10, 20, 20)))
        assert len(cells) == grid.num_cells

    def test_neighborhood_interior(self):
        grid = UniformGrid(EXTENT, 0.1)
        cells = set(grid.neighborhood((5, 2), radius=1))
        assert len(cells) == 9
        assert (4, 1) in cells and (6, 3) in cells

    def test_neighborhood_clamped_at_corner(self):
        grid = UniformGrid(EXTENT, 0.1)
        cells = set(grid.neighborhood((0, 0), radius=2))
        assert cells == {(i, j) for i in range(3) for j in range(3)}

    def test_neighborhood_radius_zero(self):
        grid = UniformGrid(EXTENT, 0.1)
        assert list(grid.neighborhood((3, 3), radius=0)) == [(3, 3)]
