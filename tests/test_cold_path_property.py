"""Property-based equivalence for the vectorised cold-path builders.

The vectorised index construction must be *bit-identical* to the scalar
reference, not merely approximately equal: the batched geometry kernels
against their scalar counterparts, the vectorised + incremental
``eps``-augmentation against per-``eps`` scalar map construction (both
sweep directions, so the filter and delta cache modes are both
exercised), the CSR store-layout pass against the original dict walk,
and the batched point bucketing against per-point ``cell_of`` loops.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.state_store import StoreLayout
from repro.geometry.bbox import BBox
from repro.geometry.distance import (
    _hypot_exact,
    point_segment_distance,
    segment_bbox_mindist,
    segments_bbox_mindist_batched,
)
from repro.index.cell_maps import SegmentCellMaps
from repro.index.grid import UniformGrid, bucket_points

from tests.conftest import random_networks, random_pois

EXTENT = BBox(0.0, 0.0, 0.02, 0.02)
EPS_LADDER = (0.0, 0.0004, 0.001, 0.002)


def _grid(cell_size: float = 0.0015) -> UniformGrid:
    return UniformGrid(EXTENT, cell_size)


# -- batched geometry kernels -------------------------------------------------

finite_coord = st.floats(min_value=-4.0, max_value=4.0,
                         allow_nan=False, allow_infinity=False)


@st.composite
def segment_box_rows(draw):
    """One (segment, box) operand row, biased towards degenerate layouts:
    zero-length segments, endpoints pinned to box corners/edges/interior
    (the scalar kernel's early-return branches)."""
    ax, ay, bx, by = (draw(finite_coord) for _ in range(4))
    if draw(st.booleans()):
        bx, by = ax, ay  # zero-length segment
    x0, x1 = sorted((draw(finite_coord), draw(finite_coord)))
    y0, y1 = sorted((draw(finite_coord), draw(finite_coord)))
    anchor = draw(st.sampled_from(("free", "corner", "edge", "inside")))
    if anchor == "corner":
        ax, ay = x0, y0
    elif anchor == "edge":
        ax = x0  # endpoint exactly on the box's left edge line
    elif anchor == "inside":
        ax, ay = (x0 + x1) / 2.0, (y0 + y1) / 2.0
    return ax, ay, bx, by, x0, y0, x1, y1


@given(rows=st.lists(segment_box_rows(), min_size=1, max_size=32))
@settings(max_examples=60)
def test_batched_bbox_mindist_bit_identical_to_scalar(rows):
    cols = np.array(rows, dtype=np.float64).T
    got = segments_bbox_mindist_batched(*cols)
    want = np.array([
        segment_bbox_mindist(ax, ay, bx, by, BBox(x0, y0, x1, y1))
        for ax, ay, bx, by, x0, y0, x1, y1 in rows], dtype=np.float64)
    assert got.tobytes() == want.tobytes()


_SPECIAL_OPERANDS = (
    0.0, -0.0, 5e-324, 1e-310, 2.0 ** -1022, 2.0 ** -1000, 2.0 ** -999,
    1.0, 3.0, 1e308, 2.0 ** 999, 2.0 ** 1000, math.inf, -math.inf,
)
hypot_operand = st.one_of(
    st.floats(allow_nan=False, allow_infinity=True, width=64),
    st.sampled_from(_SPECIAL_OPERANDS),
)


@given(pairs=st.lists(st.tuples(hypot_operand, hypot_operand),
                      min_size=1, max_size=64))
@settings(max_examples=80)
def test_hypot_exact_bitwise_equals_math_hypot(pairs):
    dx = np.array([a for a, _b in pairs], dtype=np.float64)
    dy = np.array([b for _a, b in pairs], dtype=np.float64)
    got = _hypot_exact(dx, dy)
    want = np.array([math.hypot(a, b) for a, b in pairs], dtype=np.float64)
    assert got.tobytes() == want.tobytes()


def test_hypot_exact_nan_rows():
    got = _hypot_exact(np.array([math.nan, math.nan, math.inf]),
                       np.array([1.0, math.inf, math.nan]))
    assert math.isnan(got[0])
    assert got[1] == math.inf  # IEEE: inf wins over nan
    assert got[2] == math.inf


@given(rows=st.lists(st.tuples(*([finite_coord] * 6)),
                     min_size=1, max_size=32))
@settings(max_examples=40)
def test_points_segments_distance_bit_identical(rows):
    from repro.geometry.distance import _points_segments_distance

    cols = np.array(rows, dtype=np.float64).T
    got = _points_segments_distance(*cols)
    want = np.array([point_segment_distance(*row) for row in rows],
                    dtype=np.float64)
    assert got.tobytes() == want.tobytes()


# -- vectorised + incremental augmentation vs scalar maps ---------------------

def _assert_maps_equal(vec: SegmentCellMaps, ref: SegmentCellMaps,
                       eps: float) -> None:
    """Equal both directions, as sets *and* in scalar iteration order."""
    vec_seg, vec_inv = vec._augmented_maps(eps)
    ref_seg, ref_inv = ref._augmented_maps(eps)
    assert vec_seg == ref_seg
    assert list(vec_seg) == list(ref_seg)
    assert vec_inv == ref_inv
    assert list(vec_inv) == list(ref_inv)
    assert dict(vec.augmented_cell_counts(eps)) == \
        dict(ref.augmented_cell_counts(eps))


@given(network=random_networks(), ascending=st.booleans())
@settings(max_examples=25)
def test_incremental_augmentation_matches_scalar_both_orders(
        network, ascending):
    """Ascending sweeps exercise the delta mode (cache growth), descending
    sweeps the filter mode (threshold + window membership) — both must
    reproduce per-``eps`` scalar construction exactly."""
    grid = _grid()
    vec = SegmentCellMaps(network, grid, vectorized=True)
    ref = SegmentCellMaps(network, grid, vectorized=False)
    sequence = EPS_LADDER if ascending else EPS_LADDER[::-1]
    for eps in sequence:
        _assert_maps_equal(vec, ref, eps)


@given(network=random_networks(),
       eps_pair=st.tuples(st.sampled_from(EPS_LADDER[1:]),
                          st.sampled_from(EPS_LADDER[1:])))
@settings(max_examples=25)
def test_revisited_eps_identical_after_cache_growth(network, eps_pair):
    """Re-querying an ``eps`` after the cache grew past it must return the
    very same CSR object (cached), equal to a fresh scalar build."""
    grid = _grid()
    vec = SegmentCellMaps(network, grid, vectorized=True)
    first, second = eps_pair
    before = vec.augmented_csr(first)
    vec.augmented_csr(second)
    again = vec.augmented_csr(first)
    assert again[0] is before[0]
    ref = SegmentCellMaps(network, grid, vectorized=False)
    _assert_maps_equal(vec, ref, first)
    _assert_maps_equal(vec, ref, second)


@pytest.fixture(scope="module", params=["london", "berlin", "vienna"])
def preset_geometry(request):
    """Network + grid of a scaled-down Figure 4 preset (built once)."""
    from repro.core.soi import SOIEngine
    from repro.datagen import build_preset

    city = build_preset(request.param, 0.1)
    engine = SOIEngine(city.network, city.pois)
    return city.network, engine.cell_maps.grid


@pytest.mark.parametrize("check", [False, True], ids=["plain", "contracts"])
@pytest.mark.parametrize("descending", [False, True], ids=["asc", "desc"])
def test_fig4_preset_maps_match_scalar(preset_geometry, check, descending):
    """Figure 4 presets: the vectorised maps must equal scalar construction
    for ``eps`` sweeps in both directions, plain and with runtime
    contracts on (``REPRO_CHECK=1`` semantics, which additionally
    cross-validates every augment pass in-line)."""
    from repro.analysis import contracts

    network, grid = preset_geometry
    sequence = (0.0005, 0.001)
    if descending:
        sequence = sequence[::-1]
    previous = contracts.ENABLED
    contracts.enable_contracts(check)
    try:
        vec = SegmentCellMaps(network, grid, vectorized=True)
        ref = SegmentCellMaps(network, grid, vectorized=False)
        for eps in sequence:
            _assert_maps_equal(vec, ref, eps)
    finally:
        contracts.enable_contracts(previous)


# -- store layout: CSR fast path vs dict walk ---------------------------------

class _WalkOnly:
    """Proxy hiding ``segment_ids_column`` so StoreLayout falls back to
    the original per-segment dict walk."""

    def __init__(self, maps: SegmentCellMaps) -> None:
        self._maps = maps

    def __getattr__(self, name: str):
        if name == "segment_ids_column":
            raise AttributeError(name)
        return getattr(self._maps, name)


@given(network=random_networks(),
       eps=st.sampled_from(EPS_LADDER))
@settings(max_examples=25)
def test_store_layout_csr_matches_dict_walk(network, eps):
    grid = _grid()
    maps = SegmentCellMaps(network, grid)
    fast = StoreLayout(network, maps, eps)
    walk = StoreLayout(network, _WalkOnly(maps), eps)
    assert fast.num_slots == walk.num_slots
    assert fast.num_cells == walk.num_cells
    assert fast.cells == walk.cells
    assert fast.cell_index == walk.cell_index
    assert fast.slot_offsets.tolist() == walk.slot_offsets.tolist()
    assert fast.slot_cell.tolist() == walk.slot_cell.tolist()
    assert fast.slot_cells == walk.slot_cells
    assert fast.cell_counts.tolist() == walk.cell_counts.tolist()
    assert fast.cell_counts_list == walk.cell_counts_list
    assert fast.by_cell == walk.by_cell
    for segs, slots in fast.by_cell.values():
        assert all(type(d) is int for d in segs)
        assert all(type(s) is int for s in slots)


# -- batched bucketing vs scalar cell assignment ------------------------------

@given(pois=random_pois(min_size=0, max_size=30))
@settings(max_examples=40)
def test_bucket_points_matches_scalar_loop(pois):
    grid = _grid(0.003)
    xs = np.array([p.x for p in pois], dtype=np.float64)
    ys = np.array([p.y for p in pois], dtype=np.float64)
    got = bucket_points(grid, xs, ys)
    want: dict[tuple[int, int], list[int]] = {}
    for pos, poi in enumerate(pois):
        want.setdefault(grid.cell_of(poi.x, poi.y), []).append(pos)
    assert list(got) == list(want)
    for cell, positions in want.items():
        assert got[cell].tolist() == positions


@given(points=st.lists(
    st.tuples(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
              st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)),
    min_size=1, max_size=40))
@settings(max_examples=40)
def test_cells_of_batched_matches_cell_of_with_clamping(points):
    grid = _grid()
    xs = np.array([x for x, _y in points], dtype=np.float64)
    ys = np.array([y for _x, y in points], dtype=np.float64)
    i, j = grid.cells_of_batched(xs, ys)
    for pos, (x, y) in enumerate(points):
        assert (int(i[pos]), int(j[pos])) == grid.cell_of(x, y)
