"""Tests for :mod:`repro.core.soi_baseline`."""

from __future__ import annotations

import pytest

from repro.core.interest import (
    segment_interest,
    segment_mass_bruteforce,
)
from repro.core.soi import SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.errors import QueryError


class TestAllSegmentInterests:
    def test_matches_bruteforce(self, cross_network, cross_pois):
        engine = SOIEngine(cross_network, cross_pois, cell_size=0.2)
        baseline = BaselineSOI(engine)
        interests = baseline.all_segment_interests(["shop"], eps=0.15)
        assert set(interests) == set(cross_network.segments)
        for sid, value in interests.items():
            seg = cross_network.segment(sid)
            mass = segment_mass_bruteforce(
                seg, cross_pois, frozenset({"shop"}), 0.15)
            assert value == pytest.approx(
                segment_interest(mass, seg.length, 0.15))

    def test_covers_every_segment(self, small_city, small_engine):
        baseline = BaselineSOI(small_engine)
        interests = baseline.all_segment_interests(["food"], eps=0.0005)
        assert len(interests) == len(small_city.network.segments)


class TestTopK:
    def test_respects_k(self, small_engine):
        baseline = BaselineSOI(small_engine)
        assert len(baseline.top_k(["food"], k=3, eps=0.0005)) == 3

    def test_omits_zero_interest(self, small_engine):
        baseline = BaselineSOI(small_engine)
        results = baseline.top_k(["religion"], k=1000, eps=0.0005)
        assert all(r.interest > 0 for r in results)

    def test_ordering(self, small_engine):
        baseline = BaselineSOI(small_engine)
        results = baseline.top_k(["food"], k=10, eps=0.0005)
        values = [r.interest for r in results]
        assert values == sorted(values, reverse=True)

    def test_invalid_query(self, small_engine):
        with pytest.raises(QueryError):
            BaselineSOI(small_engine).top_k([], k=3)
