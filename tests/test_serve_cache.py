"""Result caching and request coalescing on the serve path.

``serve_request_cached`` is exercised in-process against the uncached
``serve_request`` reference (bit-identity is the whole contract); the
multiprocess ``EngineServer`` cache/coalescing tests keep their pools
small like the rest of the serving suite.  The Zipf repeat-mix workload
generator is tested here too, since its only consumer is the cached
throughput bench.
"""

from __future__ import annotations

import pytest

from repro.core.soi import SOIEngine
from repro.datagen import build_preset
from repro.obs.metrics import MetricsRegistry
from repro.perf.result_cache import ResultCache, request_cache_key
from repro.serve import EngineServer
from repro.serve.server import (
    DescribeRequest,
    SOIRequest,
    serve_request,
    serve_request_cached,
)
from repro.serve.workload import make_workload, make_zipf_workload


def make_cache(engine, **kwargs) -> ResultCache:
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("generation", engine.index_generation)
    return ResultCache(**kwargs)


# -- in-process cached serving ------------------------------------------------

def test_cached_serving_is_bit_identical_on_mixed_workload(small_city,
                                                           small_engine):
    cache = make_cache(small_engine)
    requests = make_workload(small_engine, small_city.photos,
                             num_queries=24, seed=3)
    # Repeat the stream so the second pass hits; identity must hold on
    # both passes, misses and hits alike.
    stream = requests + requests
    for request in stream:
        cached = serve_request_cached(small_engine, small_city.photos,
                                      request, cache)
        assert cached == serve_request(small_engine, small_city.photos,
                                       request)
    stats = cache.stats()
    assert stats["hits"] >= len(requests)


def test_dominated_k_slices_match_for_soi(small_city, small_engine):
    cache = make_cache(small_engine)
    big = SOIRequest(keywords=("food", "shop"), k=50)
    serve_request_cached(small_engine, None, big, cache)
    for k in (1, 5, 25):
        small = SOIRequest(keywords=("food", "shop"), k=k)
        cached = serve_request_cached(small_engine, None, small, cache)
        assert cached == serve_request(small_engine, None, small)
    assert cache.stats()["dominated_hits"] >= 1
    assert cache.stats()["insertions"] == 1


def test_describe_requests_never_reuse_across_k(small_city, small_engine):
    """Equation 10's k-dependence: each describe k computes fresh."""
    cache = make_cache(small_engine)
    street = small_engine.top_k(["shop"], k=1)[0].street_id
    for k in (20, 5, 10):
        request = DescribeRequest(street_id=street, k=k)
        cached = serve_request_cached(small_engine, small_city.photos,
                                      request, cache)
        assert cached == serve_request(small_engine, small_city.photos,
                                       request)
    stats = cache.stats()
    assert stats["dominated_hits"] == 0
    assert stats["insertions"] == 3  # one entry per k — no cross-k reuse


def test_group_k_elevation_precomputes_the_batch_maximum(small_engine):
    cache = make_cache(small_engine)
    small = SOIRequest(keywords=("shop",), k=5)
    # Micro-batch grouping: the first member executes at the group's
    # k_max, so the later larger-k member is a dominated/exact hit.
    serve_request_cached(small_engine, None, small, cache, group_k=40)
    assert cache.registry.counter("serve.cache.kmax_elevations") == 1
    big = SOIRequest(keywords=("shop",), k=40)
    cached = serve_request_cached(small_engine, None, big, cache)
    assert cached == serve_request(small_engine, None, big)
    assert cache.stats()["misses"] == 1  # only the first request computed


def test_cache_invalidated_across_index_generations(small_city):
    # A private engine: rebuild_indexes mutates generation state, which
    # must not leak into the session-scoped small_engine fixture.
    engine = SOIEngine(small_city.network, small_city.pois)
    cache = make_cache(engine)
    request = SOIRequest(keywords=("shop",), k=10)
    before = serve_request_cached(engine, None, request, cache)
    engine.rebuild_indexes()
    after = serve_request_cached(engine, None, request, cache)
    assert after == before  # same data rebuilt: same exact answer...
    assert cache.stats()["invalidations"] == 1  # ...but computed fresh
    assert cache.generation == engine.index_generation


# -- the multiprocess server --------------------------------------------------

def test_server_cache_is_bit_identical_and_hits_on_repeats():
    city = build_preset("vienna", scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    requests = make_zipf_workload(engine, city.photos, num_queries=24,
                                  seed=2, pool_size=6)
    expected = [serve_request(engine, city.photos, request)
                for request in requests]
    with EngineServer.for_engine(engine, city.photos, workers=1,
                                 micro_batch=4, cache=True) as server:
        assert server.cache_enabled
        payloads = server.run(requests)
        stats = server.cache_stats()
        telemetry = server.telemetry()
    assert payloads == expected
    # 24 Zipf draws over 6 distinct requests must repeat: every repeat is
    # a parent-cache hit, a coalesced waiter, or a worker-cache hit.
    assert stats["hits"] + stats["coalesced_waiters"] > 0
    assert stats["hit_rate"] > 0.0
    assert telemetry["cache"] == stats


def test_server_without_cache_reports_none():
    city = build_preset("vienna", scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    with EngineServer.for_engine(engine, workers=1) as server:
        assert not server.cache_enabled
        assert server.telemetry()["cache"] is None


# -- the Zipf repeat-mix workload ---------------------------------------------

@pytest.fixture(scope="module")
def zipf_engine():
    city = build_preset("vienna", scale=0.1)
    return city, SOIEngine(city.network, city.pois)


def test_zipf_workload_is_deterministic(zipf_engine):
    city, engine = zipf_engine
    first = make_zipf_workload(engine, city.photos, num_queries=40, seed=7)
    again = make_zipf_workload(engine, city.photos, num_queries=40, seed=7)
    other = make_zipf_workload(engine, city.photos, num_queries=40, seed=8)
    assert first == again
    assert first != other


def test_zipf_workload_repeats_concentrate_on_the_hot_pool(zipf_engine):
    city, engine = zipf_engine
    requests = make_zipf_workload(engine, city.photos, num_queries=64,
                                  seed=1, pool_size=8)
    distinct = set(requests)
    assert len(requests) == 64
    assert len(distinct) <= 8  # every request drawn from the hot pool
    # Zipf skew: the hottest request dominates the uniform share.
    top_count = max(requests.count(r) for r in distinct)
    assert top_count > 64 / 8


def test_all_unique_workload_defeats_dominated_k_reuse(zipf_engine):
    """unique_frac=1.0 is the cache-overhead workload: no request may be
    servable from any earlier one, even by dominated-k slicing."""
    city, engine = zipf_engine
    requests = make_zipf_workload(engine, city.photos, num_queries=48,
                                  seed=5, unique_frac=1.0)
    assert len(requests) == 48
    deepest_k: dict[tuple, int] = {}
    for request in requests:
        key = request_cache_key(request)
        assert request.k > deepest_k.get(key, 0), \
            "a one-off would be served from an earlier, deeper entry"
        deepest_k[key] = request.k


def test_zipf_workload_validation(zipf_engine):
    city, engine = zipf_engine
    with pytest.raises(ValueError):
        make_zipf_workload(engine, city.photos, num_queries=0)
    with pytest.raises(ValueError):
        make_zipf_workload(engine, city.photos, s=0.0)
    with pytest.raises(ValueError):
        make_zipf_workload(engine, city.photos, unique_frac=1.5)
