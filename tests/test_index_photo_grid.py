"""Tests for :mod:`repro.index.photo_grid`."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.data.photo import Photo, PhotoSet
from repro.errors import GridIndexError
from repro.geometry.bbox import BBox
from repro.index.photo_grid import PhotoGridIndex

from tests.conftest import random_photos

EXTENT = BBox(0.0, 0.0, 0.01, 0.01)
RHO = 0.002  # cell side rho/2 = 0.001 -> 10x10 grid


def _index() -> PhotoGridIndex:
    photos = PhotoSet([
        Photo(0, 0.0005, 0.0005, frozenset({"a", "b"})),
        Photo(1, 0.0006, 0.0004, frozenset({"a"})),
        Photo(2, 0.0095, 0.0095, frozenset({"c", "d", "e"})),
        Photo(3, 0.0052, 0.0052, frozenset()),
    ])
    return PhotoGridIndex(photos, EXTENT, RHO)


class TestConstruction:
    def test_cell_side_is_half_rho(self):
        assert _index().grid.cell_size == pytest.approx(RHO / 2)

    def test_invalid_rho(self):
        with pytest.raises(GridIndexError):
            PhotoGridIndex(PhotoSet([]), EXTENT, 0.0)

    def test_occupied_cells(self):
        index = _index()
        assert index.num_occupied_cells == 3


class TestCells:
    def test_cell_contents(self):
        index = _index()
        cell = index.cell((0, 0))
        assert cell is not None
        assert cell.positions == (0, 1)
        assert len(cell) == 2
        assert cell.keywords == frozenset({"a", "b"})

    def test_psi_min_max(self):
        index = _index()
        first = index.cell((0, 0))
        assert (first.psi_min, first.psi_max) == (1, 2)
        tagless = index.cell(index.grid.cell_of(0.0052, 0.0052))
        assert (tagless.psi_min, tagless.psi_max) == (0, 0)

    def test_missing_cell_is_none(self):
        assert _index().cell((3, 7)) is None

    def test_cells_iterates_in_coordinate_order(self):
        coords = [cell.coord for cell in _index().cells()]
        assert coords == sorted(coords)

    def test_inverted_index_postings(self):
        cell = _index().cell((0, 0))
        assert list(cell.inverted.postings("a")) == [0, 1]
        assert list(cell.inverted.postings("b")) == [0]


class TestNeighborhoodCount:
    def test_radius_zero_counts_own_cell(self):
        index = _index()
        assert index.neighborhood_count((0, 0), radius=0) == 2

    def test_radius_two_includes_nearby_cells(self):
        index = _index()
        # photo 3 is at cell (5, 5); nothing within 2 cells of (0, 0)
        assert index.neighborhood_count((0, 0), radius=2) == 2
        assert index.neighborhood_count((4, 4), radius=2) == 1

    @given(random_photos(min_size=1, max_size=30))
    def test_neighborhood_count_bounds_cell_count(self, photos):
        index = PhotoGridIndex(photos, BBox(0, 0, 0.02, 0.02), rho=0.004)
        total = len(photos)
        for cell in index.cells():
            own = index.neighborhood_count(cell.coord, radius=0)
            near = index.neighborhood_count(cell.coord, radius=2)
            assert len(cell) == own <= near <= total

    def test_spatial_reach_matches_neighborhood_in_the_interior(self):
        index = _index()
        for cell in index.cells():
            assert index.spatial_reach_count(cell.coord) == \
                index.neighborhood_count(cell.coord, radius=2)

    def test_spatial_reach_covers_exact_rho_boundary(self):
        # Distance exactly rho with both photos on cell boundaries: the
        # floor-based cell assignment can land them 3 cells apart (their
        # quotients round across an integer in opposite directions), which
        # a bare Chebyshev-2 count misses — the Equation 12 regression
        # behind ST_Rel+Div disagreeing with the naive greedy.
        photos = PhotoSet([Photo(0, 0.0001, 0.0, frozenset()),
                           Photo(1, 0.0, 0.0, frozenset())])
        index = PhotoGridIndex(photos, BBox(-0.001, -0.001, 0.021, 0.021),
                               rho=0.0001)
        for position in range(2):
            coord = index.grid.cell_of(float(photos.xs[position]),
                                       float(photos.ys[position]))
            assert index.spatial_reach_count(coord) == 2

    @given(random_photos(min_size=1, max_size=30))
    def test_every_photo_in_exactly_one_cell(self, photos):
        index = PhotoGridIndex(photos, BBox(0, 0, 0.02, 0.02), rho=0.004)
        seen = []
        for cell in index.cells():
            seen.extend(cell.positions)
        assert sorted(seen) == list(range(len(photos)))
