"""EngineServer: multiprocess serving smoke, staleness, crash cleanup.

These tests spawn real worker processes (``spawn`` context), so each one
keeps its pool small and its workload short; the two-worker smoke test is
the tier-1 guard that the scale-out path actually serves mixed queries.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.soi import SOIEngine
from repro.datagen import build_preset
from repro.errors import ReproError, StaleSnapshotError, WorkerCrashError
from repro.serve import EngineServer
from repro.serve.server import SOIRequest, serve_request
from repro.serve.workload import make_workload


def shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


def test_two_worker_smoke_on_smallest_preset():
    """Satellite smoke: vienna, 2 workers, 8 mixed queries, bit-identical."""
    started = time.perf_counter()
    city = build_preset("vienna", scale=0.1)
    engine = SOIEngine(city.network, city.pois)
    requests = make_workload(engine, city.photos, num_queries=8, seed=1)
    assert any(not isinstance(r, SOIRequest) for r in requests), \
        "workload should mix in describe requests"
    with EngineServer.for_engine(engine, city.photos, workers=2) as server:
        payloads = server.run(requests)
    expected = [serve_request(engine, city.photos, request)
                for request in requests]
    assert payloads == expected
    assert time.perf_counter() - started < 10.0


def test_worker_errors_propagate_without_killing_the_pool(small_engine):
    with EngineServer.for_engine(small_engine, workers=1) as server:
        bogus = SOIRequest(keywords=("food",), k=5, strategy="not-a-strategy")
        server.submit(bogus)
        with pytest.raises(ReproError):
            server.next_result(timeout=30.0)
        # The worker survives the error and keeps serving.
        good = SOIRequest(keywords=("food",), k=5)
        server.submit(good)
        _seq, payload, _service = server.next_result(timeout=30.0)
        assert payload == serve_request(small_engine, None, good)


def test_stale_generation_rejected_then_refresh_serves_again(small_city):
    engine = SOIEngine(small_city.network, small_city.pois)
    request = SOIRequest(keywords=("food", "shop"), k=10)
    with EngineServer.for_engine(engine, workers=1) as server:
        first_name = server.snapshot.name
        before = server.run([request])
        engine.rebuild_indexes()
        with pytest.raises(StaleSnapshotError):
            server.submit(request)
        server.refresh()
        assert server.snapshot.name != first_name
        after = server.run([request])
        assert after == before  # rebuild of the same data: identical answers
        second_name = server.snapshot.name
    # close() unlinks the stale block and the live one.
    assert not shm_exists(first_name) and not shm_exists(second_name)


def test_worker_crash_raises_and_unlinks(small_engine):
    server = EngineServer.for_engine(small_engine, workers=1)
    name = server.snapshot.name
    try:
        worker = server._workers[0]
        pid = worker.pid
        os.kill(pid, signal.SIGKILL)
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        server.submit(SOIRequest(keywords=("food",), k=5))
        with pytest.raises(WorkerCrashError) as excinfo:
            server.next_result(timeout=30.0)
        # The crash report names the worker and the unaccounted request.
        message = str(excinfo.value)
        assert f"pid {pid}" in message
        assert "last completed request" in message
        assert "request id(s): [0]" in message
    finally:
        server.close()
    assert not shm_exists(name)


def test_crash_message_reports_last_completed_request(small_engine):
    server = EngineServer.for_engine(small_engine, workers=1)
    try:
        request = SOIRequest(keywords=("food",), k=5)
        server.submit(request)
        server.next_result(timeout=30.0)
        worker = server._workers[0]
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=10.0)
        server.submit(request)
        with pytest.raises(WorkerCrashError) as excinfo:
            server.next_result(timeout=30.0)
        assert "last completed request 0" in str(excinfo.value)
    finally:
        server.close()


def test_server_aggregates_worker_metrics(small_engine):
    requests = [SOIRequest(keywords=("food",), k=5),
                SOIRequest(keywords=("shop",), k=5),
                SOIRequest(keywords=("food", "shop"), k=5)]
    with EngineServer.for_engine(small_engine, workers=2) as server:
        server.run(requests)
        merged = server.metrics()
        dump = server.metrics_dict()
    assert merged.counter("serve.requests") == len(requests)
    assert merged.counter("soi.queries") == len(requests)
    hist = merged.histogram("serve.request_s")
    assert hist is not None and hist.count == len(requests)
    assert dump["counters"]["serve.requests"] == len(requests)


def test_micro_batching_is_payload_identical(small_engine):
    """Batched workers group same-signature requests onto one session;
    the payloads must not change by a single bit."""
    requests = [SOIRequest(keywords=("food",), k=5),
                SOIRequest(keywords=("shop",), k=5),
                SOIRequest(keywords=("food",), k=10),
                SOIRequest(keywords=("food",), k=5),
                SOIRequest(keywords=("shop",), k=3),
                SOIRequest(keywords=("food", "shop"), k=5)]
    expected = [serve_request(small_engine, None, request)
                for request in requests]
    with EngineServer.for_engine(small_engine, workers=1,
                                 micro_batch=4) as server:
        assert server.micro_batch == 4
        payloads = server.run(requests)
        merged = server.metrics()
    assert payloads == expected
    # With one worker the drain loop must have batched at least once
    # (six requests, batch cap four => at least two loop turns).
    assert 2 <= merged.counter("serve.batches") <= len(requests)
    hist = merged.histogram("serve.batch_size")
    assert hist is not None and hist.sum == len(requests)


def test_micro_batch_validation():
    # The guard fires before the snapshot is touched or workers spawn.
    with pytest.raises(ValueError):
        EngineServer(None, workers=1, micro_batch=0)
