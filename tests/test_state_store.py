"""The flat segment-state store and the incremental top-k threshold.

Two contracts are exercised here, both bitwise:

* :class:`~repro.core.state_store.TopKThreshold` must return exactly the
  float ``heapq.nlargest(k, values)[-1]`` would, after any interleaving
  of per-key updates (values per key only ever improve — the SOI lower
  bounds are monotone).
* The store-backed filter phase (``use_store=True``, the default) must
  match the scalar dict-state path result-for-result *and*
  counter-for-counter: the store is a data-layout change, not an
  algorithmic one.

The whole module runs twice — plain and with the runtime invariant
contracts enabled (``REPRO_CHECK=1`` semantics) — via the autouse
fixture, mirroring ``test_perf_equivalence``.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import contracts
from repro.core.soi import AccessStrategy, SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.core.state_store import TopKThreshold

from tests.conftest import KEYWORD_POOL, random_networks, random_pois

EPS = 0.0005


@pytest.fixture(params=[False, True], ids=["plain", "contracts"],
                autouse=True)
def _maybe_contracts(request):
    """Run every test in this module with contracts off and on."""
    previous = contracts.ENABLED
    if request.param:
        contracts.enable_contracts()
    try:
        yield
    finally:
        contracts.enable_contracts(previous)


queries = st.sets(st.sampled_from(KEYWORD_POOL), min_size=1, max_size=3)


# -- TopKThreshold -----------------------------------------------------------

def test_topk_threshold_none_below_k_keys():
    topk = TopKThreshold(3)
    assert topk.current() is None
    assert topk.update(1, 0.5)
    assert topk.update(2, 0.25)
    assert topk.current() is None  # two distinct keys < k
    assert topk.update(1, 0.75)    # improving key 1 adds no third key
    assert topk.current() is None
    assert topk.update(3, 0.1)
    assert topk.current() == 0.1


def test_topk_threshold_rejects_non_improving_updates():
    topk = TopKThreshold(1)
    assert topk.update(7, 1.0)
    assert not topk.update(7, 1.0)   # equal: not an improvement
    assert not topk.update(7, 0.5)   # smaller: ignored entirely
    assert topk.current() == 1.0
    assert len(topk) == 1


def test_topk_threshold_requires_positive_k():
    with pytest.raises(ValueError):
        TopKThreshold(0)


@given(k=st.integers(min_value=1, max_value=6),
       updates=st.lists(
           st.tuples(st.integers(min_value=0, max_value=12),
                     st.floats(min_value=0.0, max_value=100.0,
                               allow_nan=False)),
           max_size=120))
@settings(max_examples=120)
def test_topk_threshold_matches_nlargest_reference(k, updates):
    """After every update, ``current()`` == the nlargest rescan result."""
    topk = TopKThreshold(k)
    best: dict[int, float] = {}
    for key, value in updates:
        improved = value > best.get(key, 0.0)
        assert topk.update(key, value) is improved
        if improved:
            best[key] = value
        if len(best) < k:
            assert topk.current() is None
        else:
            assert topk.current() == heapq.nlargest(k, best.values())[-1]
    assert len(topk) == len(best)


def test_topk_threshold_compaction_stays_exact():
    """Many improvements to few keys force the lazy-heap compaction."""
    k = 2
    topk = TopKThreshold(k)
    best: dict[int, float] = {}
    for step in range(1, 800):
        key = step % 3
        value = float(step)
        topk.update(key, value)
        best[key] = max(best.get(key, 0.0), value)
        if len(best) >= k:
            assert topk.current() == heapq.nlargest(k, best.values())[-1]
    assert len(topk._heap) <= 4 * k + 64  # the compaction bound held


# -- store path == scalar path ----------------------------------------------

@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries, k=st.integers(min_value=1, max_value=5),
       weighted=st.booleans())
@settings(max_examples=40)
def test_store_results_and_counters_match_scalar(network, pois, keywords,
                                                 k, weighted):
    """Sessionless: store and scalar paths agree on results AND counters."""
    scalar_engine = SOIEngine(network, pois)
    store_engine = SOIEngine(network, pois)
    scalar, scalar_stats = scalar_engine.top_k_with_stats(
        keywords, k=k, eps=EPS, weighted=weighted,
        use_session=False, use_store=False)
    store, store_stats = store_engine.top_k_with_stats(
        keywords, k=k, eps=EPS, weighted=weighted,
        use_session=False, use_store=True)
    assert store == scalar
    assert store_stats.counters() == scalar_stats.counters()


@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries)
@settings(max_examples=25)
def test_store_session_sweep_matches_scalar_sessions(network, pois,
                                                     keywords):
    """Warm-session k-sweeps: separate engines so each path owns its
    session state; counters must then be identical query-for-query."""
    scalar_engine = SOIEngine(network, pois)
    store_engine = SOIEngine(network, pois)
    for strategy in AccessStrategy:
        for k in (1, 3, 5):
            scalar, scalar_stats = scalar_engine.top_k_with_stats(
                keywords, k=k, eps=EPS, strategy=strategy, use_store=False)
            store, store_stats = store_engine.top_k_with_stats(
                keywords, k=k, eps=EPS, strategy=strategy, use_store=True)
            assert store == scalar
            scalar_counters = scalar_stats.counters()
            store_counters = store_stats.counters()
            # ``store_reused`` is the one path-specific counter: warm
            # store queries recycle pooled columns, the scalar path has
            # no store to recycle.  Everything else must match.
            scalar_counters.pop("store_reused", None)
            store_counters.pop("store_reused", None)
            assert store_counters == scalar_counters, (strategy, k)


@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries)
@settings(max_examples=25)
def test_baseline_store_matches_dict_memo(network, pois, keywords):
    """BL's slot-column scan == its dict-memo scan, cold and warm."""
    dict_engine = SOIEngine(network, pois)
    store_engine = SOIEngine(network, pois)
    expected = BaselineSOI(dict_engine).all_segment_interests(
        keywords, eps=EPS, use_store=False)
    baseline = BaselineSOI(store_engine)
    assert baseline.all_segment_interests(
        keywords, eps=EPS, use_store=True) == expected
    # Warm rerun: every slot is memoised, the fast path must not reorder
    # the accumulation.
    assert baseline.all_segment_interests(
        keywords, eps=EPS, use_store=True) == expected


# -- session-pooled store reuse ----------------------------------------------

def test_warm_session_reuses_state_store(small_engine):
    engine = small_engine
    engine.invalidate_sessions()
    _res, cold = engine.top_k_with_stats(["food"], k=5, eps=EPS)
    _res, warm = engine.top_k_with_stats(["food"], k=5, eps=EPS)
    assert not cold.store_reused
    assert warm.store_reused
    session = engine.sessions.get(frozenset({"food"}))
    assert session is not None and session.store_reuses >= 1


def test_scalar_path_never_marks_store_reuse(small_engine):
    engine = small_engine
    engine.invalidate_sessions()
    for _ in range(2):
        _res, stats = engine.top_k_with_stats(["food"], k=5, eps=EPS,
                                              use_store=False)
        assert not stats.store_reused


# -- counter budgets ---------------------------------------------------------

@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries, k=st.integers(min_value=1, max_value=5))
@settings(max_examples=25)
def test_termination_check_budget(network, pois, keywords, k):
    """The LBk >= UB check runs at most once per _CHECK_EVERY iterations
    (plus the final top-of-loop check), never per-iteration."""
    engine = SOIEngine(network, pois)
    _res, stats = engine.top_k_with_stats(keywords, k=k, eps=EPS)
    assert stats.termination_checks <= stats.iterations // 4 + 2


@given(network=random_networks(), pois=random_pois(min_size=1),
       keywords=queries, k=st.integers(min_value=1, max_value=5))
@settings(max_examples=25)
def test_lbk_heap_update_budget(network, pois, keywords, k):
    """Heap updates happen only on strict per-street improvements, which
    a cell visit or a finalisation can produce at most once each."""
    engine = SOIEngine(network, pois)
    _res, stats = engine.top_k_with_stats(keywords, k=k, eps=EPS)
    budget = stats.cell_visits + stats.segments_seen + stats.refinement_finalized
    assert stats.lbk_heap_updates <= budget
