"""London/Berlin/Vienna-shaped city presets.

The paper's Table 1 datasets (segments / POIs): London 113,885 / 2.1M,
Berlin 47,755 / 797k, Vienna 22,211 / 409k.  The presets below keep the
relative ordering and roughly the per-city segment:POI ratio while scaling
absolute sizes down so the pure-Python baseline remains benchmarkable —
the substitution is documented in DESIGN.md and quantified per experiment
in EXPERIMENTS.md.

Built cities are cached per (name, scale), because the benchmark suite
re-reads the same preset dozens of times.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datagen.city import City, CitySpec, generate_city

CITY_PRESETS: dict[str, CitySpec] = {
    "london": CitySpec(
        name="london",
        seed=20160315,
        n_horizontal=44,
        n_vertical=44,
        n_diagonal=6,
        width=0.20,
        height=0.20,
        breakpoint_prob=0.30,
        n_background_pois=9000,
        misc_street_pois=27000,
        street_pois_per_category=1250,
        destinations_per_category=7,
        n_background_photos=900,
        street_photos=16000,
        n_landmarks=40,
        photos_per_landmark=45,
        n_event_bursts=5,
        event_burst_size=60,
    ),
    "berlin": CitySpec(
        name="berlin",
        seed=20160316,
        n_horizontal=29,
        n_vertical=29,
        n_diagonal=4,
        width=0.16,
        height=0.16,
        breakpoint_prob=0.28,
        n_background_pois=3600,
        misc_street_pois=10000,
        street_pois_per_category=520,
        destinations_per_category=6,
        n_background_photos=400,
        street_photos=5500,
        n_landmarks=25,
        photos_per_landmark=35,
        n_event_bursts=4,
        event_burst_size=45,
    ),
    "vienna": CitySpec(
        name="vienna",
        seed=20160317,
        n_horizontal=20,
        n_vertical=20,
        n_diagonal=3,
        width=0.12,
        height=0.12,
        breakpoint_prob=0.26,
        n_background_pois=1800,
        misc_street_pois=5200,
        street_pois_per_category=270,
        destinations_per_category=5,
        n_background_photos=300,
        street_photos=2600,
        n_landmarks=18,
        photos_per_landmark=30,
        n_event_bursts=3,
        event_burst_size=35,
    ),
}
"""The three evaluation cities, keyed by lowercase name."""


def preset_spec(name: str, scale: float = 1.0) -> CitySpec:
    """The :class:`CitySpec` of a preset, optionally re-scaled.

    ``scale`` multiplies the linear street counts by ``sqrt(scale)`` (so
    segment counts scale by ~``scale``) and the POI/photo counts by
    ``scale``.  ``scale < 1`` gives fast variants for tests.
    """
    base = CITY_PRESETS[name]
    if scale == 1.0:  # repro-lint: disable=REP-N201 (exact sentinel: the unscaled default returns the shared base preset)
        return base
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    linear = scale ** 0.5
    return CitySpec(
        name=base.name,
        seed=base.seed,
        n_horizontal=max(6, round(base.n_horizontal * linear)),
        n_vertical=max(6, round(base.n_vertical * linear)),
        n_diagonal=max(1, round(base.n_diagonal * linear)),
        origin_x=base.origin_x,
        origin_y=base.origin_y,
        width=base.width,
        height=base.height,
        jitter=base.jitter,
        breakpoint_prob=base.breakpoint_prob,
        chunk_min=base.chunk_min,
        chunk_max=base.chunk_max,
        n_background_pois=max(100, round(base.n_background_pois * scale)),
        misc_street_pois=max(100, round(base.misc_street_pois * scale)),
        street_pois_per_category=max(
            60, round(base.street_pois_per_category * scale)),
        pareto_alpha=base.pareto_alpha,
        destinations_per_category=base.destinations_per_category,
        hotspot_spread=base.hotspot_spread,
        n_background_photos=max(50, round(base.n_background_photos * scale)),
        street_photos=max(50, round(base.street_photos * scale)),
        n_landmarks=max(4, round(base.n_landmarks * scale)),
        photos_per_landmark=base.photos_per_landmark,
        landmark_spread=base.landmark_spread,
        n_event_bursts=max(1, round(base.n_event_bursts * min(1.0, scale))),
        event_burst_size=base.event_burst_size,
    )


@lru_cache(maxsize=8)
def build_preset(name: str, scale: float = 1.0) -> City:
    """Generate (and cache) a preset city."""
    return generate_city(preset_spec(name, scale))
