"""POI placement for synthetic cities.

Three populations, mirroring how real urban POI data looks:

* **long-tail POIs** — the dominant share, carrying proper-noun-like
  keywords (venue names) that match *no* category query; partly uniform
  background, partly street-attached.  Real collections look like this:
  the paper's Table 4 shows even four broad keywords matching under 10%
  of London's 2.1M POIs, and it is this irrelevant mass that the SOI
  algorithm's pruning skips over;
* **categorised street-attached POIs** — each category's POIs hug street
  courses (shopfronts do), with per-street intensities drawn from a
  Pareto distribution, so a few streets are extremely dense, mid-ranked
  streets are still clearly denser than average, and the tail is thin.
  The most POI-laden streets per category are the planted ground truth
  for the Table 2 recall experiment.

Category volumes are weighted (``CATEGORY_VOLUME``) so the cumulative
query sets of the performance study grow the way the paper's Table 4
does: ``religion`` is rare, adding ``education`` grows the relevant set
moderately, ``food`` and ``services`` dominate.
"""

from __future__ import annotations

import numpy as np

from repro.data.poi import POI, POISet
from repro.datagen import vocab
from repro.datagen.city import CitySpec
from repro.network.model import RoadNetwork, Segment

CATEGORY_VOLUME: dict[str, float] = {
    "shop": 1.2,
    "food": 1.7,
    "religion": 0.18,
    "education": 0.45,
    "services": 1.9,
    "culture": 0.5,
    "nightlife": 0.45,
    "nature": 0.3,
    "transport": 0.7,
    "sport": 0.4,
}
"""Relative POI volume per category (multiplies the per-category base)."""


def generate_pois(
    network: RoadNetwork, spec: CitySpec, rng: np.random.Generator
) -> tuple[POISet, dict[str, list[int]]]:
    """All POIs of the city plus the planted ground truth.

    Returns ``(pois, ground_truth)`` where ``ground_truth[category]`` lists
    the ``spec.destinations_per_category`` densest streets by decreasing
    planted count.
    """
    categories = list(vocab.CATEGORIES)
    pois: list[POI] = []
    next_id = 0
    street_ids = sorted(network.streets)
    centrality = _street_centrality(network, street_ids, spec)

    # -- long-tail background (uniform, proper-noun keywords) --------------
    xs = rng.uniform(spec.origin_x, spec.origin_x + spec.width,
                     size=spec.n_background_pois)
    ys = rng.uniform(spec.origin_y, spec.origin_y + spec.height,
                     size=spec.n_background_pois)
    for x, y in zip(xs, ys):
        pois.append(POI(next_id, float(x), float(y),
                        vocab.longtail_keywords(rng)))
        next_id += 1

    # -- long-tail street-attached (heavy-tailed, proper-noun keywords) ----
    if spec.misc_street_pois > 0:
        popularity = (rng.pareto(spec.pareto_alpha, size=len(street_ids))
                      + 0.05) * centrality
        popularity /= popularity.sum()
        counts = rng.multinomial(spec.misc_street_pois, popularity)
        for street_id, count in zip(street_ids, counts):
            if count == 0:
                continue
            for x, y in _along_street(network, street_id, int(count),
                                      spec.hotspot_spread, rng):
                pois.append(POI(next_id, x, y, vocab.longtail_keywords(rng)))
                next_id += 1

    # -- categorised street-attached, heavy-tailed --------------------------
    ground_truth: dict[str, list[int]] = {}
    for category in categories:
        total = round(spec.street_pois_per_category
                      * CATEGORY_VOLUME[category])
        # Pareto popularity per street, damped by distance from the centre.
        popularity = (rng.pareto(spec.pareto_alpha, size=len(street_ids))
                      + 0.05) * centrality
        popularity /= popularity.sum()
        counts = rng.multinomial(total, popularity)
        for street_id, count in zip(street_ids, counts):
            if count == 0:
                continue
            for x, y in _along_street(network, street_id, int(count),
                                      spec.hotspot_spread, rng):
                pois.append(POI(next_id, x, y,
                                _keywords(category, rng, head_prob=0.9)))
                next_id += 1
        ground_truth[category] = _rank_destinations(
            network, street_ids, counts, spec.destinations_per_category)
    return POISet(pois), ground_truth


def _rank_destinations(
    network: RoadNetwork,
    street_ids: list[int],
    counts: np.ndarray,
    top: int,
) -> list[int]:
    """The planted "authoritative" destination streets of one category.

    A destination street is *dense*, not merely long: take the 3x``top``
    streets with the highest planted counts, then rank them by planted
    POIs per unit length — the quantity the k-SOI interest measures.
    """
    by_count = np.argsort(-counts, kind="stable")[: 3 * top]
    densities = []
    for index in by_count:
        if counts[index] == 0:
            continue
        length = network.street_length(street_ids[index])
        densities.append((counts[index] / max(length, 1e-9),
                          street_ids[index]))
    densities.sort(key=lambda item: (-item[0], item[1]))
    return [street_id for _density, street_id in densities[:top]]


def _street_centrality(
    network: RoadNetwork, street_ids: list[int], spec: CitySpec
) -> np.ndarray:
    """Gaussian centrality weight per street (dense core, sparse fringe)."""
    cx = spec.origin_x + spec.width / 2.0
    cy = spec.origin_y + spec.height / 2.0
    half_diag = float(np.hypot(spec.width, spec.height)) / 2.0
    sigma = max(spec.centrality_sigma * half_diag, 1e-9)
    out = np.empty(len(street_ids))
    for index, street_id in enumerate(street_ids):
        box = network.street_bbox(street_id)
        center = box.center
        d = float(np.hypot(center.x - cx, center.y - cy))
        out[index] = np.exp(-((d / sigma) ** 2))
    return out


def _keywords(
    category: str, rng: np.random.Generator, head_prob: float = 0.75
) -> frozenset[str]:
    """2-4 keywords from the category pool; the head keyword is usually in."""
    pool = vocab.category_keywords(category)
    n = int(rng.integers(2, 5))
    picks = rng.choice(len(pool), size=min(n, len(pool)), replace=False)
    keywords = {pool[i] for i in picks}
    if rng.random() < head_prob:
        keywords.add(pool[0])
    elif pool[0] in keywords and len(keywords) > 1:
        keywords.discard(pool[0])
    return frozenset(keywords)


def _along_street(
    network: RoadNetwork,
    street_id: int,
    count: int,
    spread: float,
    rng: np.random.Generator,
) -> list[tuple[float, float]]:
    """Sample locations along a street's course.

    Segments are chosen with probability proportional to length; the point
    is uniform along the segment and offset perpendicular by a normal
    deviate — a linear cluster hugging the street, like shopfronts do.
    """
    segments = network.segments_of_street(street_id)
    lengths = np.array([seg.length for seg in segments])
    if lengths.sum() == 0:
        lengths = np.ones(len(segments))
    probs = lengths / lengths.sum()
    picks = rng.choice(len(segments), size=count, p=probs)
    out = []
    for pick in picks:
        seg = segments[pick]
        out.append(_offset_point(seg, float(rng.uniform(0.0, 1.0)),
                                 float(rng.normal(0.0, spread))))
    return out


def _offset_point(seg: Segment, t: float, offset: float) -> tuple[float, float]:
    """A point at parameter ``t`` along ``seg``, shifted ``offset`` sideways."""
    x = seg.ax + t * (seg.bx - seg.ax)
    y = seg.ay + t * (seg.by - seg.ay)
    if seg.length > 0:
        nx = -(seg.by - seg.ay) / seg.length
        ny = (seg.bx - seg.ax) / seg.length
        x += offset * nx
        y += offset * ny
    return float(x), float(y)
