"""Category taxonomy and tag vocabulary for the synthetic datasets.

The categories mirror the keyword families the paper queries with
(Section 5.2.1 uses ``{religion, education, food, services}``; the
effectiveness study uses ``shop``).  Each category maps to a pool of
keywords with the head keyword first; generated POIs draw a few keywords
from their category's pool, so querying for the head keyword (e.g.
``"shop"``) matches a realistic fraction of the category's POIs.
"""

from __future__ import annotations

CATEGORIES: dict[str, tuple[str, ...]] = {
    "shop": ("shop", "shopping", "store", "boutique", "fashion", "clothes",
             "mall", "jewelry", "shoes", "market", "department", "retail"),
    "food": ("food", "restaurant", "cafe", "bistro", "bakery", "pizza",
             "bar", "kitchen", "grill", "sushi", "burger", "tavern"),
    "religion": ("religion", "church", "chapel", "cathedral", "mosque",
                 "synagogue", "temple", "parish", "abbey"),
    "education": ("education", "school", "university", "college", "academy",
                  "institute", "library", "kindergarten", "campus"),
    "services": ("services", "bank", "pharmacy", "clinic", "post", "salon",
                 "laundry", "repair", "agency", "office", "atm"),
    "culture": ("culture", "museum", "gallery", "theatre", "cinema", "opera",
                "monument", "exhibition", "arts"),
    "nightlife": ("nightlife", "club", "pub", "lounge", "disco", "cocktail",
                  "karaoke", "casino"),
    "nature": ("nature", "park", "garden", "playground", "fountain", "pond",
               "green", "trees"),
    "transport": ("transport", "station", "metro", "bus", "tram", "parking",
                  "taxi", "terminal"),
    "sport": ("sport", "gym", "stadium", "pool", "fitness", "tennis",
              "arena", "pitch"),
}
"""Category name -> keyword pool (head keyword first)."""

GENERIC_PHOTO_TAGS: tuple[str, ...] = (
    "city", "travel", "street", "architecture", "urban", "europe", "walk",
    "evening", "morning", "summer", "winter", "people", "sky", "night",
    "building", "view", "trip", "holiday",
)
"""Tags any photo may carry regardless of subject."""

EVENT_TAGS: tuple[tuple[str, ...], ...] = (
    ("demonstration", "protest", "march", "crowd", "banner"),
    ("festival", "parade", "music", "stage", "celebration"),
    ("release", "premiere", "queue", "fans", "launch"),
    ("marathon", "race", "runners", "finish", "sport"),
    ("christmas", "market", "lights", "stalls", "mulled"),
)
"""Tag families for event bursts (the Figure 3 demonstration effect)."""

STREET_NAME_STEMS: tuple[str, ...] = (
    "Oak", "Maple", "King", "Queen", "Station", "Church", "Mill", "Park",
    "Castle", "Bridge", "Garden", "Harbor", "Market", "Tower", "River",
    "Cross", "North", "South", "East", "West", "Victory", "Crown", "Linden",
    "Rose", "Willow", "Cedar", "Elm", "Ivy", "Summit", "Valley",
)

STREET_NAME_SUFFIXES: tuple[str, ...] = (
    "Street", "Avenue", "Road", "Lane", "Boulevard", "Row", "Way", "Walk",
)


def longtail_keywords(rng, pool_size: int = 4000) -> frozenset[str]:
    """1-3 proper-noun-like tokens from a large long-tail vocabulary.

    Real POI collections are dominated by venue names and one-off tags
    that match no category query (the paper's Table 4: even four broad
    keywords match under 10% of London's 2.1M POIs).  These tokens are
    guaranteed disjoint from every category pool.
    """
    n = int(rng.integers(1, 4))
    picks = rng.integers(0, pool_size, size=n)
    return frozenset(f"venue-{int(i)}" for i in picks)


def category_keywords(category: str) -> tuple[str, ...]:
    """The keyword pool of a category (KeyError for unknown categories)."""
    return CATEGORIES[category]


def head_keyword(category: str) -> str:
    """The category's head keyword — what benchmark queries search for."""
    return CATEGORIES[category][0]


def street_name(index: int) -> str:
    """A deterministic, human-plausible street name for street ``index``."""
    stem = STREET_NAME_STEMS[index % len(STREET_NAME_STEMS)]
    suffix = STREET_NAME_SUFFIXES[(index // len(STREET_NAME_STEMS))
                                  % len(STREET_NAME_SUFFIXES)]
    round_ = index // (len(STREET_NAME_STEMS) * len(STREET_NAME_SUFFIXES))
    if round_ == 0:
        return f"{stem} {suffix}"
    return f"{stem} {suffix} {round_ + 1}"
