"""Photo placement for synthetic cities.

Three populations, engineered to reproduce the pathologies Figure 3 of the
paper illustrates (and that the diversification methods must overcome):

* **landmark hotspots** — tight Gaussian clusters of photos around points
  on popular streets, each sharing a landmark tag plus category and
  generic tags (the "everyone photographs the HMV storefront" effect);
* **event bursts** — very tight clusters of near-duplicate photos sharing
  one event tag family (the "demonstration along Oxford Street" effect
  that fools purely textual relevance);
* **background noise** — photos scattered uniformly with generic tags.
"""

from __future__ import annotations

import numpy as np

from repro.data.photo import Photo, PhotoSet
from repro.datagen import vocab
from repro.datagen.city import CitySpec, Landmark
from repro.network.model import RoadNetwork


def generate_photos(
    network: RoadNetwork,
    spec: CitySpec,
    ground_truth: dict[str, list[int]],
    rng: np.random.Generator,
) -> tuple[PhotoSet, list[Landmark]]:
    """All photos of the city plus the landmark registry."""
    photos: list[Photo] = []
    next_id = 0
    landmarks = _place_landmarks(network, spec, ground_truth, rng)

    # -- landmark hotspots ---------------------------------------------------
    for landmark in landmarks:
        count = max(3, int(rng.poisson(spec.photos_per_landmark)))
        for _ in range(count):
            x = float(rng.normal(landmark.x, spec.landmark_spread))
            y = float(rng.normal(landmark.y, spec.landmark_spread))
            tags = {landmark.tag}
            tags.update(_sample(vocab.category_keywords(landmark.category),
                                rng, 1, 3))
            tags.update(_sample(vocab.GENERIC_PHOTO_TAGS, rng, 1, 4))
            photos.append(Photo(next_id, x, y, frozenset(tags)))
            next_id += 1

    # -- event bursts ------------------------------------------------------------
    burst_hosts = landmarks[: spec.n_event_bursts]
    for burst_index, host in enumerate(burst_hosts):
        family = vocab.EVENT_TAGS[burst_index % len(vocab.EVENT_TAGS)]
        for _ in range(spec.event_burst_size):
            x = float(rng.normal(host.x, spec.landmark_spread / 4.0))
            y = float(rng.normal(host.y, spec.landmark_spread / 4.0))
            tags = set(_sample(family, rng, 3, len(family)))
            tags.add(f"event{burst_index}")
            tags.update(_sample(vocab.GENERIC_PHOTO_TAGS, rng, 0, 2))
            photos.append(Photo(next_id, x, y, frozenset(tags)))
            next_id += 1

    # -- street-attached photos -----------------------------------------------------
    # Popular streets accumulate photos the way they accumulate POIs:
    # heavy-tailed per-street volume, boosted towards the city centre.
    if spec.street_photos > 0:
        from repro.datagen.pois import _along_street, _street_centrality

        street_ids = sorted(network.streets)
        centrality = _street_centrality(network, street_ids, spec)
        popularity = (rng.pareto(spec.pareto_alpha, size=len(street_ids))
                      + 0.05) * centrality
        # Photogenic destination streets attract disproportionate photo
        # volume (everyone photographs Oxford Street), so the top SOIs
        # have rich photo populations to describe.
        boost = {}
        position = {sid: i for i, sid in enumerate(street_ids)}
        for category in ("shop", "culture", "nightlife", "food"):
            for rank, sid in enumerate(ground_truth.get(category, [])):
                factor = 8.0 * 0.7 ** rank
                index = position[sid]
                boost[index] = max(boost.get(index, 1.0), factor)
        for index, factor in boost.items():
            popularity[index] *= factor
        popularity /= popularity.sum()
        counts = rng.multinomial(spec.street_photos, popularity)
        categories = list(vocab.CATEGORIES)
        for street_id, count in zip(street_ids, counts):
            if count == 0:
                continue
            category = categories[int(rng.integers(0, len(categories)))]
            for x, y in _along_street(network, street_id, int(count),
                                      spec.landmark_spread, rng):
                tags = set(_sample(vocab.GENERIC_PHOTO_TAGS, rng, 1, 3))
                tags.update(_sample(
                    vocab.category_keywords(category), rng, 0, 2))
                photos.append(Photo(next_id, x, y, frozenset(tags)))
                next_id += 1

    # -- background noise -----------------------------------------------------------
    xs = rng.uniform(spec.origin_x, spec.origin_x + spec.width,
                     size=spec.n_background_photos)
    ys = rng.uniform(spec.origin_y, spec.origin_y + spec.height,
                     size=spec.n_background_photos)
    for x, y in zip(xs, ys):
        tags = frozenset(_sample(vocab.GENERIC_PHOTO_TAGS, rng, 1, 4))
        photos.append(Photo(next_id, float(x), float(y), tags))
        next_id += 1
    return PhotoSet(photos), landmarks


def _place_landmarks(
    network: RoadNetwork,
    spec: CitySpec,
    ground_truth: dict[str, list[int]],
    rng: np.random.Generator,
) -> list[Landmark]:
    """Landmarks sit on destination streets first, then random streets.

    Destination streets of photogenic categories (shop, culture,
    nightlife) host the first landmarks so that top SOIs have rich photo
    populations to describe.
    """
    hosts: list[tuple[int, str]] = []
    for category in ("shop", "culture", "nightlife", "food"):
        for street_id in ground_truth.get(category, []):
            hosts.append((street_id, category))
    street_ids = sorted(network.streets)
    while len(hosts) < spec.n_landmarks:
        street_id = street_ids[int(rng.integers(0, len(street_ids)))]
        category = list(vocab.CATEGORIES)[
            int(rng.integers(0, len(vocab.CATEGORIES)))]
        hosts.append((street_id, category))
    landmarks = []
    for index, (street_id, category) in enumerate(hosts[: spec.n_landmarks]):
        segments = network.segments_of_street(street_id)
        seg = segments[int(rng.integers(0, len(segments)))]
        t = float(rng.uniform(0.15, 0.85))
        x = seg.ax + t * (seg.bx - seg.ax)
        y = seg.ay + t * (seg.by - seg.ay)
        landmarks.append(Landmark(x=float(x), y=float(y),
                                  tag=f"landmark{index}",
                                  category=category,
                                  street_id=street_id))
    return landmarks


def _sample(
    pool: tuple[str, ...], rng: np.random.Generator, lo: int, hi: int
) -> set[str]:
    """Between ``lo`` and ``hi`` distinct items from ``pool``."""
    hi = min(hi, len(pool))
    lo = min(lo, hi)
    n = int(rng.integers(lo, hi + 1)) if hi > lo else lo
    if n == 0:
        return set()
    picks = rng.choice(len(pool), size=n, replace=False)
    return {pool[i] for i in picks}
