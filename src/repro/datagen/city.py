"""Synthetic road-network layout and the :class:`City` bundle.

The generated network is a jittered grid — ``n_horizontal`` east-west
lines crossing ``n_vertical`` north-south lines, all sharing the jittered
intersection vertices — plus a few diagonal avenues threaded through
existing intersections.  Each grid line is *chunked* into several named
streets of a few blocks each (street names change every few blocks in
real cities, and the k-SOI query ranks streets, so their granularity
matters), and random mid-block breakpoints split segments further
(matching the paper's model where vertices are "street intersections or
breakpoints in streets").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.photo import PhotoSet
from repro.data.poi import POISet
from repro.datagen import vocab
from repro.network.builder import RoadNetworkBuilder
from repro.network.model import RoadNetwork


@dataclass(frozen=True, slots=True)
class CitySpec:
    """Parameters of one synthetic city.

    The preset module instantiates three of these shaped like the paper's
    London/Berlin/Vienna datasets (scaled down; see DESIGN.md).
    """

    name: str
    seed: int
    # network layout
    n_horizontal: int = 20
    n_vertical: int = 20
    n_diagonal: int = 4
    origin_x: float = 0.0
    origin_y: float = 0.0
    width: float = 0.12
    height: float = 0.12
    jitter: float = 0.18           # fraction of grid spacing
    breakpoint_prob: float = 0.25  # chance of a mid-block breakpoint
    chunk_min: int = 2             # min intersections per named street
    chunk_max: int = 5             # max intersections per named street
    # POIs
    n_background_pois: int = 1500    # long-tail, uniform
    misc_street_pois: int = 3500     # long-tail, street-attached
    street_pois_per_category: int = 450
    pareto_alpha: float = 1.0      # street-popularity tail (smaller = heavier)
    centrality_sigma: float = 0.24  # radial density falloff, as a fraction
    #                                 of the extent half-diagonal (real
    #                                 cities have dense centres and sparse
    #                                 peripheries; this is what the SOI
    #                                 bounds prune on broad queries)
    destinations_per_category: int = 6
    hotspot_spread: float = 0.0003
    # photos
    n_background_photos: int = 400
    street_photos: int = 1200      # photos hugging street courses, with
    #                                Pareto x centrality street popularity
    #                                (popular streets accumulate thousands
    #                                of photos, like Oxford Street does)
    n_landmarks: int = 25
    photos_per_landmark: int = 30
    landmark_spread: float = 0.0004
    n_event_bursts: int = 4
    event_burst_size: int = 40


@dataclass(slots=True)
class Landmark:
    """A photo hotspot: location, identifying tag and category."""

    x: float
    y: float
    tag: str
    category: str
    street_id: int


@dataclass(slots=True)
class City:
    """A complete synthetic dataset: network, POIs, photos, ground truth.

    ``ground_truth`` maps each category to its most POI-laden streets,
    ranked by decreasing planted count — the synthetic stand-in for the
    paper's "authoritative Web sources" of Table 2.
    """

    name: str
    spec: CitySpec
    network: RoadNetwork
    pois: POISet
    photos: PhotoSet
    ground_truth: dict[str, list[int]]
    landmarks: list[Landmark] = field(default_factory=list)

    def authoritative_sources(
        self, category: str, size: int = 5, num_sources: int = 2,
        seed: int = 0,
    ) -> list[list[int]]:
        """Synthesise ``num_sources`` noisy "top streets" lists (Table 2).

        Each source samples ``size`` streets from the top ``size + 2``
        planted destinations — mimicking how the paper's two tripadvisor/
        globalblue lists overlapped but did not coincide.
        """
        truth = self.ground_truth[category]
        pool = truth[: size + 2]
        rng = np.random.default_rng(self.spec.seed * 7919 + seed)
        sources = []
        for _source in range(num_sources):
            chosen = rng.choice(len(pool), size=min(size, len(pool)),
                                replace=False)
            sources.append([pool[i] for i in sorted(chosen)])
        return sources


def generate_network(
    spec: CitySpec, rng: np.random.Generator
) -> RoadNetwork:
    """Build the chunked jittered-grid network (see module docstring)."""
    nh, nv = spec.n_horizontal, spec.n_vertical
    dx = spec.width / max(nv - 1, 1)
    dy = spec.height / max(nh - 1, 1)
    jx = spec.jitter * dx
    jy = spec.jitter * dy
    # Shared intersection lattice P[i][j].
    px = (spec.origin_x + np.arange(nv) * dx
          + rng.uniform(-jx, jx, size=(nh, nv)))
    py = (spec.origin_y + np.arange(nh)[:, None] * dy
          + rng.uniform(-jy, jy, size=(nh, nv)))

    builder = RoadNetworkBuilder()
    lattice = [[builder.add_vertex(float(px[i, j]), float(py[i, j]))
                for j in range(nv)] for i in range(nh)]

    street_index = 0

    def add_line(vertex_ids: list[int]) -> None:
        """Chunk one grid line into consecutive named streets."""
        nonlocal street_index
        for chunk in _chunk_line(vertex_ids, spec, rng):
            expanded = _with_breakpoints(builder, chunk, spec, rng)
            builder.add_street(vocab.street_name(street_index), expanded)
            street_index += 1

    for i in range(nh):
        add_line([lattice[i][j] for j in range(nv)])
    for j in range(nv):
        add_line([lattice[i][j] for i in range(nh)])
    for d in range(spec.n_diagonal):
        if min(nh, nv) < 3:
            break
        offset = int(rng.integers(0, max(1, min(nh, nv) - 2)))
        if d % 2 == 0:
            coords = [(t, min(t + offset, nv - 1))
                      for t in range(min(nh, nv - offset))]
        else:
            coords = [(t, max(nv - 1 - t - offset, 0))
                      for t in range(min(nh, nv - offset))]
        vertex_ids = []
        for i, j in coords:
            vid = lattice[i][j]
            if not vertex_ids or vertex_ids[-1] != vid:
                vertex_ids.append(vid)
            # Diagonal hops are ~sqrt(2) blocks and cross other streets;
            # add an intermediate vertex per hop (real avenues intersect
            # the grid they cut through, so their segments stay short).
            if len(vertex_ids) >= 2:
                prev = vertex_ids[-2]
                ux, uy = _coords(builder, prev)
                vx, vy = _coords(builder, vid)
                mid = builder.add_vertex((ux + vx) / 2.0, (uy + vy) / 2.0)
                vertex_ids.insert(len(vertex_ids) - 1, mid)
        if len(vertex_ids) >= 2:
            add_line(vertex_ids)
    return builder.build()


def _chunk_line(
    vertex_ids: list[int], spec: CitySpec, rng: np.random.Generator
) -> list[list[int]]:
    """Split a grid line into overlapping-at-endpoints vertex chunks.

    Consecutive chunks share their boundary intersection, so the chunked
    streets remain connected without duplicating segments.
    """
    if spec.chunk_min >= len(vertex_ids):
        return [vertex_ids]
    chunks = []
    start = 0
    n = len(vertex_ids)
    while start < n - 1:
        size = int(rng.integers(spec.chunk_min, spec.chunk_max + 1))
        end = min(start + size, n - 1)
        # Avoid a trailing stub shorter than chunk_min.
        if n - 1 - end < spec.chunk_min - 1:
            end = n - 1
        chunks.append(vertex_ids[start: end + 1])
        start = end
    return chunks


def _with_breakpoints(
    builder: RoadNetworkBuilder,
    vertex_ids: list[int],
    spec: CitySpec,
    rng: np.random.Generator,
) -> list[int]:
    """Insert jittered mid-block breakpoint vertices with some probability."""
    if spec.breakpoint_prob <= 0:
        return vertex_ids
    out = [vertex_ids[0]]
    for u, v in zip(vertex_ids, vertex_ids[1:]):
        if rng.random() < spec.breakpoint_prob:
            # Breakpoint somewhere in the middle half of the block,
            # nudged slightly off the straight line.
            t = float(rng.uniform(0.3, 0.7))
            ux, uy = _coords(builder, u)
            vx, vy = _coords(builder, v)
            nudge = 0.04 * np.hypot(vx - ux, vy - uy)
            mx = ux + t * (vx - ux) + float(rng.uniform(-nudge, nudge))
            my = uy + t * (vy - uy) + float(rng.uniform(-nudge, nudge))
            out.append(builder.add_vertex(mx, my))
        out.append(v)
    return out


def _coords(builder: RoadNetworkBuilder, vertex_id: int) -> tuple[float, float]:
    vertex = builder._vertices[vertex_id]
    return vertex.x, vertex.y


def generate_city(spec: CitySpec) -> City:
    """Generate the full dataset for a :class:`CitySpec` (deterministic)."""
    from repro.datagen.photos import generate_photos
    from repro.datagen.pois import generate_pois

    rng = np.random.default_rng(spec.seed)
    network = generate_network(spec, rng)
    pois, ground_truth = generate_pois(network, spec, rng)
    photos, landmarks = generate_photos(network, spec, ground_truth, rng)
    return City(name=spec.name, spec=spec, network=network, pois=pois,
                photos=photos, ground_truth=ground_truth,
                landmarks=landmarks)
