"""Synthetic city generation.

The paper's evaluation uses web-harvested data (OSM road networks,
DBpedia/OSM/Wikimapia/Foursquare POIs, Flickr/Panoramio photos) that is
not available offline.  This subpackage generates the closest synthetic
equivalent — see DESIGN.md ("Data substitution") for the full rationale:

* :mod:`repro.datagen.vocab` -- the POI category taxonomy and photo tag
  vocabulary;
* :mod:`repro.datagen.city` -- road-network layout (perturbed grid with
  diagonal avenues and breakpoints) and the :class:`City` bundle;
* :mod:`repro.datagen.pois` -- POI placement (uniform background noise
  plus dense linear clusters along planted destination streets);
* :mod:`repro.datagen.photos` -- photo placement (landmark hotspots,
  near-duplicate event bursts, background noise);
* :mod:`repro.datagen.presets` -- the London/Berlin/Vienna-shaped presets
  used by the benchmark suite.

Everything is driven by a seeded :class:`numpy.random.Generator`, so every
dataset (and thus every experiment) is reproducible bit for bit.
"""

from repro.datagen.city import City, CitySpec, generate_city
from repro.datagen.presets import (
    CITY_PRESETS,
    build_preset,
    preset_spec,
)
from repro.datagen.vocab import CATEGORIES, category_keywords

__all__ = [
    "CATEGORIES",
    "CITY_PRESETS",
    "City",
    "CitySpec",
    "build_preset",
    "category_keywords",
    "generate_city",
    "preset_spec",
]
