"""Interest measures: Definitions 1-3 of the paper.

* **Segment mass** (Definition 1): the number of POIs within distance
  ``eps`` of the segment that match at least one query keyword.  The
  weighted variant sums POI weights instead of counting (the adaptation the
  paper notes right after the definition).
* **Segment interest** (Definition 2): mass divided by the area of the
  ``eps``-buffer around the segment, ``2 * eps * len(l) + pi * eps**2``.
* **Street interest** (Definition 3): the maximum interest among the
  street's segments.

Two implementations of mass are provided: an indexed one driven by the
``eps``-augmented cell maps (the production path shared by the SOI
algorithm and the BL baseline) and a brute-force scan used as the ground
truth in tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.analysis import contracts
from repro.obs import tracer as obs_tracer
from repro.obs.tracer import trace_span
from repro.data.poi import POISet
from repro.errors import QueryError
from repro.geometry.distance import (
    point_segment_distance,
    points_segment_distance,
)
from repro.index.cell_maps import SegmentCellMaps
from repro.index.poi_grid import POIGridIndex
from repro.network.model import RoadNetwork, Segment


def buffer_area(length: float, eps: float) -> float:
    """Area of the ``eps``-buffer around a segment of the given length.

    The denominator of Definition 2: a rectangle of size
    ``2 * eps * length`` plus two half-disks of radius ``eps``.
    """
    return 2.0 * eps * length + math.pi * eps * eps


def validate_query(keywords: Iterable[str], k: int, eps: float) -> frozenset[str]:
    """Common parameter validation for k-SOI queries.

    Returns the normalised keyword set.  Raises
    :class:`~repro.errors.QueryError` for ``k < 1``, ``eps <= 0`` or an
    empty keyword set.
    """
    from repro.data.keywords import normalize_keywords

    query = normalize_keywords(keywords)
    if not query:
        raise QueryError("k-SOI query requires at least one keyword")
    if k < 1:
        raise QueryError(f"k must be at least 1, got {k}")
    if eps <= 0:
        raise QueryError(f"eps must be positive, got {eps}")
    return query


class RelevantCellCache:
    """Per-query cache of the relevant POIs of each visited cell.

    Several segments share each cell, and the SOI algorithm may visit a
    cell once per nearby segment; materialising the relevant positions and
    their coordinates once per cell turns every subsequent visit into a
    pair of NumPy gathers.  ``hits``/``misses`` count lookups for the
    instrumentation layer (a *miss* is a first visit that materialises the
    entry).
    """

    _EMPTY = (np.empty(0, dtype=np.intp), np.empty(0), np.empty(0),
              np.empty(0))

    _MASK_UNSET = object()

    def __init__(self, poi_index: POIGridIndex, keywords: frozenset[str]) -> None:
        self._poi_index = poi_index
        self._keywords = keywords
        self._cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray,
                                                 np.ndarray, np.ndarray]] = {}
        self._mask = self._MASK_UNSET
        self.hits = 0
        self.misses = 0

    def get(self, cell: tuple[int, int]):
        """``(positions, xs, ys, weights)`` of the cell's relevant POIs."""
        entry = self._cache.get(cell)
        if entry is None:
            self.misses += 1
            if obs_tracer.ENABLED:
                with trace_span("soi.cell_gather"):
                    entry = self._materialise(cell)
            else:
                entry = self._materialise(cell)
            self._cache[cell] = entry
        else:
            self.hits += 1
        return entry

    def _materialise(self, cell: tuple[int, int]):
        """First-visit gather of a cell's relevant POI arrays."""
        mask = self._mask
        if mask is self._MASK_UNSET:
            mask = self._poi_index.relevant_position_mask(self._keywords)
            self._mask = mask
        if mask is not None:
            # Vectorised index: the cell's position array is ascending
            # and duplicate-free, so masking it yields exactly the
            # sorted deduplicated merge of the matching postings.
            cell_positions = self._poi_index.cell_positions(cell)
            if cell_positions.size == 0:
                return self._EMPTY
            positions = cell_positions[mask[cell_positions]]
            if positions.size == 0:
                return self._EMPTY
            pois = self._poi_index.pois
            return (positions, pois.xs[positions], pois.ys[positions],
                    pois.weights[positions])
        inverted = self._poi_index.cell_inverted(cell)
        if inverted is None or not any(
                inverted.count(k) for k in self._keywords):
            # Fast path: cells with no relevant POIs dominate visits.
            return self._EMPTY
        positions = np.fromiter(
            inverted.matching_positions(self._keywords),
            dtype=np.intp)
        pois = self._poi_index.pois
        return (positions, pois.xs[positions], pois.ys[positions],
                pois.weights[positions])

    def __len__(self) -> int:
        return len(self._cache)


_SCALAR_CELL_MAX = 4
"""Cells with at most this many relevant POIs take the scalar fast path
(NumPy dispatch overhead dominates tiny cells).  The batched kernel keeps
the same split so batched and per-cell evaluation stay bit-identical."""


def _cell_mass_scalar(
    xs: np.ndarray, ys: np.ndarray, weights: np.ndarray,
    segment: Segment, eps: float, weighted: bool,
) -> float:
    """Scalar-path mass of one tiny cell (shared by both evaluation modes)."""
    total = 0.0
    for i in range(len(xs)):
        d = point_segment_distance(float(xs[i]), float(ys[i]),
                                   segment.ax, segment.ay,
                                   segment.bx, segment.by)
        if d <= eps:
            total += float(weights[i]) if weighted else 1.0
    return total


def segment_mass_in_cell(
    segment: Segment,
    cell: tuple[int, int],
    cache: RelevantCellCache,
    eps: float,
    weighted: bool = False,
    stats=None,
    mass_cache: dict | None = None,
) -> float:
    """Mass contribution of one cell to a segment.

    Exact: every relevant POI of the cell is tested against the segment
    with the vectorised distance kernel.  Because each POI lives in exactly
    one grid cell, summing this over ``C_eps(l)`` gives the exact mass.

    ``stats`` (a :class:`~repro.core.results.SOIStats`, or anything with
    the same counter attributes) receives kernel/cache counters;
    ``mass_cache`` is an optional ``(segment_id, cell) -> mass`` memo for
    the ``eps``/``weighted`` combination in effect, normally owned by a
    :class:`~repro.perf.session.QuerySession`.
    """
    if mass_cache is not None:
        key = (segment.id, cell)
        cached = mass_cache.get(key)
        if cached is not None:
            if stats is not None:
                stats.mass_cache_hits += 1
            return cached
    total = _segment_mass_in_cell_uncached(segment, cell, cache, eps,
                                           weighted, stats)
    if mass_cache is not None:
        if stats is not None:
            stats.mass_cache_misses += 1
        mass_cache[key] = total
    return total


def _segment_mass_in_cell_uncached(
    segment: Segment,
    cell: tuple[int, int],
    cache: RelevantCellCache,
    eps: float,
    weighted: bool,
    stats=None,
) -> float:
    positions, xs, ys, weights = cache.get(cell)
    n = len(positions)
    if n == 0:
        return 0.0
    if n <= _SCALAR_CELL_MAX:
        if stats is not None:
            stats.scalar_point_evals += n
        return _cell_mass_scalar(xs, ys, weights, segment, eps, weighted)
    if stats is not None:
        stats.kernel_calls += 1
    dists = points_segment_distance(xs, ys, segment.ax, segment.ay,
                                    segment.bx, segment.by)
    within = dists <= eps
    if weighted:
        return float(weights[within].sum())
    return float(np.count_nonzero(within))


def segment_mass_batched(
    segment: Segment,
    cells: Iterable[tuple[int, int]],
    cache: RelevantCellCache,
    eps: float,
    weighted: bool = False,
    stats=None,
    mass_cache: dict | None = None,
) -> float:
    """Mass of a segment over several cells with one vectorised kernel call.

    Concatenates the ``(xs, ys, weights)`` arrays of every non-tiny cell
    and evaluates :func:`points_segment_distance` **once** for the whole
    batch, instead of once per ``(segment, cell)`` pair.  Per-cell
    contributions are then recovered from slices of the batch, so the
    result — and every value stored into ``mass_cache`` — is bit-identical
    to summing :func:`segment_mass_in_cell` over the same cells in the
    same order: tiny cells (``<= _SCALAR_CELL_MAX`` POIs) keep the scalar
    fast path, larger cells see exactly the same element-wise arithmetic
    whether their arrays are evaluated alone or inside a batch.
    """
    if obs_tracer.ENABLED:
        with trace_span("soi.mass_kernel"):
            return _segment_mass_batched_impl(
                segment, cells, cache, eps, weighted, stats, mass_cache)
    return _segment_mass_batched_impl(
        segment, cells, cache, eps, weighted, stats, mass_cache)


def _segment_mass_batched_impl(
    segment: Segment,
    cells: Iterable[tuple[int, int]],
    cache: RelevantCellCache,
    eps: float,
    weighted: bool,
    stats=None,
    mass_cache: dict | None = None,
) -> float:
    contributions: list[float] = []
    # (contribution slot, cell, batch start, batch stop) per batched cell.
    pending: list[tuple[int, tuple[int, int], int, int]] = []
    batch_xs: list[np.ndarray] = []
    batch_ys: list[np.ndarray] = []
    batch_weights: list[np.ndarray] = []
    offset = 0
    cached_hits = 0
    fresh = 0
    for cell in cells:
        if mass_cache is not None:
            cached = mass_cache.get((segment.id, cell))
            if cached is not None:
                cached_hits += 1
                contributions.append(cached)
                continue
        positions, xs, ys, weights = cache.get(cell)
        n = len(positions)
        if n > _SCALAR_CELL_MAX:
            pending.append((len(contributions), cell, offset, offset + n))
            batch_xs.append(xs)
            batch_ys.append(ys)
            batch_weights.append(weights)
            offset += n
            contributions.append(0.0)  # patched after the kernel call
            fresh += 1
            continue
        if n == 0:
            value = 0.0
        else:
            if stats is not None:
                stats.scalar_point_evals += n
            value = _cell_mass_scalar(xs, ys, weights, segment, eps, weighted)
        contributions.append(value)
        fresh += 1
        if mass_cache is not None:
            mass_cache[(segment.id, cell)] = value
    if pending:
        if stats is not None:
            stats.kernel_calls += 1
        xs_all = np.concatenate(batch_xs)
        ys_all = np.concatenate(batch_ys)
        dists = points_segment_distance(xs_all, ys_all,
                                        segment.ax, segment.ay,
                                        segment.bx, segment.by)
        within = dists <= eps
        weights_all = np.concatenate(batch_weights) if weighted else None
        for slot, cell, start, stop in pending:
            if weighted:
                value = float(weights_all[start:stop]
                              [within[start:stop]].sum())
            else:
                value = float(np.count_nonzero(within[start:stop]))
            contributions[slot] = value
            if mass_cache is not None:
                mass_cache[(segment.id, cell)] = value
    if stats is not None:
        stats.mass_cache_hits += cached_hits
        if mass_cache is not None:
            stats.mass_cache_misses += fresh
    # Accumulate in cell order, matching the per-cell evaluation exactly.
    total = 0.0
    for value in contributions:
        total += value
    return total


def segment_mass_batched_slots(
    segment: Segment,
    cells: Sequence[tuple[int, int]],
    slots: Sequence[int],
    slot_mass: list[float],
    slot_known: list[bool],
    cache: RelevantCellCache,
    eps: float,
    weighted: bool = False,
    stats=None,
    count_memo: bool = True,
) -> float:
    """Like :func:`segment_mass_batched`, memoised into slot columns.

    ``slots[i]`` is the store-layout slot of ``(segment, cells[i])``;
    ``slot_mass``/``slot_known`` are the
    :class:`~repro.core.state_store.MassSlots` columns standing in for the
    dict memo.  Evaluation order, the scalar/kernel split and the final
    in-order accumulation mirror the dict-memo implementation exactly, so
    the total — and every memoised value — is bit-identical.
    ``count_memo=False`` reproduces the ``mass_cache=None`` counter
    behaviour (ephemeral per-run slots, misses not attributed).
    """
    if obs_tracer.ENABLED:
        with trace_span("soi.mass_kernel"):
            return _segment_mass_batched_slots_impl(
                segment, cells, slots, slot_mass, slot_known, cache, eps,
                weighted, stats, count_memo)
    return _segment_mass_batched_slots_impl(
        segment, cells, slots, slot_mass, slot_known, cache, eps,
        weighted, stats, count_memo)


def _segment_mass_batched_slots_impl(
    segment: Segment,
    cells: Sequence[tuple[int, int]],
    slots: Sequence[int],
    slot_mass: list[float],
    slot_known: list[bool],
    cache: RelevantCellCache,
    eps: float,
    weighted: bool,
    stats=None,
    count_memo: bool = True,
) -> float:
    contributions: list[float] = []
    # (contribution slot, memo slot, batch start, batch stop) per batched cell.
    pending: list[tuple[int, int, int, int]] = []
    batch_xs: list[np.ndarray] = []
    batch_ys: list[np.ndarray] = []
    batch_weights: list[np.ndarray] = []
    offset = 0
    cached_hits = 0
    fresh = 0
    for cell, slot in zip(cells, slots):
        if slot_known[slot]:
            cached_hits += 1
            contributions.append(float(slot_mass[slot]))
            continue
        positions, xs, ys, weights = cache.get(cell)
        n = len(positions)
        if n > _SCALAR_CELL_MAX:
            pending.append((len(contributions), slot, offset, offset + n))
            batch_xs.append(xs)
            batch_ys.append(ys)
            batch_weights.append(weights)
            offset += n
            contributions.append(0.0)  # patched after the kernel call
            fresh += 1
            continue
        if n == 0:
            value = 0.0
        else:
            if stats is not None:
                stats.scalar_point_evals += n
            value = _cell_mass_scalar(xs, ys, weights, segment, eps, weighted)
        contributions.append(value)
        fresh += 1
        slot_mass[slot] = value
        slot_known[slot] = True
    if pending:
        if stats is not None:
            stats.kernel_calls += 1
        xs_all = np.concatenate(batch_xs)
        ys_all = np.concatenate(batch_ys)
        dists = points_segment_distance(xs_all, ys_all,
                                        segment.ax, segment.ay,
                                        segment.bx, segment.by)
        within = dists <= eps
        weights_all = np.concatenate(batch_weights) if weighted else None
        for pos, slot, start, stop in pending:
            if weighted:
                value = float(weights_all[start:stop]
                              [within[start:stop]].sum())
            else:
                value = float(np.count_nonzero(within[start:stop]))
            contributions[pos] = value
            slot_mass[slot] = value
            slot_known[slot] = True
    if stats is not None:
        stats.mass_cache_hits += cached_hits
        if count_memo:
            stats.mass_cache_misses += fresh
    # Accumulate in cell order, matching the per-cell evaluation exactly.
    total = 0.0
    for value in contributions:
        total += value
    return total


def segment_mass(
    segment: Segment,
    poi_index: POIGridIndex,
    cell_maps: SegmentCellMaps,
    keywords: frozenset[str],
    eps: float,
    weighted: bool = False,
    cache: RelevantCellCache | None = None,
    stats=None,
    mass_cache: dict | None = None,
) -> float:
    """Definition 1: relevant POIs within ``eps`` of the segment.

    Aggregates the ``eps``-augmented cells ``C_eps(l)`` through the
    batched kernel (one vectorised distance evaluation per segment), which
    is bit-identical to summing per-cell contributions.
    """
    if cache is None:
        cache = RelevantCellCache(poi_index, keywords)
    return segment_mass_batched(
        segment, cell_maps.cells_of_segment(segment.id, eps), cache, eps,
        weighted, stats=stats, mass_cache=mass_cache)


def segment_mass_bruteforce(
    segment: Segment,
    pois: POISet,
    keywords: frozenset[str],
    eps: float,
    weighted: bool = False,
) -> float:
    """Reference implementation of Definition 1: full scan, no index."""
    total = 0.0
    for poi in pois:
        if not poi.matches(keywords):
            continue
        dists = points_segment_distance(
            np.array([poi.x]), np.array([poi.y]),
            segment.ax, segment.ay, segment.bx, segment.by)
        if dists[0] <= eps:
            total += poi.weight if weighted else 1.0
    return total


def segment_interest(mass: float, length: float, eps: float) -> float:
    """Definition 2: mass density over the ``eps``-buffer area.

    ``buffer_area`` is positive for every ``eps > 0`` (it includes the
    ``pi * eps**2`` end-caps even for zero-length segments), which is the
    zero-guard of this division; under ``REPRO_CHECK=1`` the contract
    layer asserts that precondition and the nonnegativity of the mass.
    """
    if contracts.ENABLED:
        contracts.check_definition2(mass, length, eps)
    return mass / buffer_area(length, eps)


def street_interest_bruteforce(
    network: RoadNetwork,
    street_id: int,
    pois: POISet,
    keywords: frozenset[str],
    eps: float,
    weighted: bool = False,
) -> float:
    """Definition 3 via brute force: max interest among the street's segments."""
    best = 0.0
    for segment in network.segments_of_street(street_id):
        mass = segment_mass_bruteforce(segment, pois, keywords, eps, weighted)
        best = max(best, segment_interest(mass, segment.length, eps))
    return best
