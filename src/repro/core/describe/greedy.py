"""The BL baseline of Section 5.2.2: naive greedy MaxSum diversification.

Like ST_Rel+Div it builds the summary incrementally, at each step adding
the photo with the maximum marginal relevance (Equation 10) — but it
"examines all photos in each iteration" instead of operating on grid cells
with bounds.  Ties break towards the smallest photo position, the same
rule Algorithm 2 uses, so the two methods return identical summaries.
"""

from __future__ import annotations

from repro.core.describe.measures import mmr_value
from repro.core.describe.profile import StreetProfile
from repro.errors import QueryError


class GreedyDescriber:
    """Exhaustive greedy photo selection over a street profile."""

    def __init__(self, profile: StreetProfile) -> None:
        self.profile = profile

    def select(self, k: int, lam: float = 0.5, w: float = 0.5) -> list[int]:
        """Photo positions of the ``k``-photo summary.

        Parameters mirror Equation 2/10: ``lam`` trades relevance for
        diversity, ``w`` trades spatial for textual information.  Returns
        fewer than ``k`` positions only when the profile holds fewer
        photos.
        """
        _validate(k, lam, w)
        n = len(self.profile)
        selected: list[int] = []
        remaining = set(range(n))
        while len(selected) < min(k, n):
            best_pos = -1
            best_value = -1.0
            for pos in sorted(remaining):
                value = mmr_value(self.profile, pos, selected, lam, w, k)
                if value > best_value:
                    best_value = value
                    best_pos = pos
            selected.append(best_pos)
            remaining.discard(best_pos)
        return selected


def _validate(k: int, lam: float, w: float) -> None:
    if k < 1:
        raise QueryError(f"summary size k must be at least 1, got {k}")
    if not 0.0 <= lam <= 1.0:
        raise QueryError(f"lambda must be in [0, 1], got {lam}")
    if not 0.0 <= w <= 1.0:
        raise QueryError(f"w must be in [0, 1], got {w}")
