"""The BL baseline of Section 5.2.2: naive greedy MaxSum diversification.

Like ST_Rel+Div it builds the summary incrementally, at each step adding
the photo with the maximum marginal relevance (Equation 10) — but it
"examines all photos in each iteration" instead of operating on grid cells
with bounds.  Ties break towards the smallest photo position, the same
rule Algorithm 2 uses, so the two methods return identical summaries.

Equation 10 is evaluated through the shared incremental
:class:`~repro.core.describe.measures.MMREvaluator`: per-candidate running
diversity sums make one full selection ``O(k * n)`` pair evaluations
instead of the naive ``O(k^2 * n)``, while staying bit-identical to
recomputing :func:`~repro.core.describe.measures.mmr_value` from scratch.
"""

from __future__ import annotations

from repro.core.describe.measures import MMREvaluator
from repro.core.describe.profile import StreetProfile
from repro.core.describe.stats import DescribeStats
from repro.errors import QueryError
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import perf_now, trace_span


class GreedyDescriber:
    """Exhaustive greedy photo selection over a street profile."""

    def __init__(self, profile: StreetProfile) -> None:
        self.profile = profile

    def select(self, k: int, lam: float = 0.5, w: float = 0.5) -> list[int]:
        """Photo positions of the ``k``-photo summary.

        Parameters mirror Equation 2/10: ``lam`` trades relevance for
        diversity, ``w`` trades spatial for textual information.  Returns
        fewer than ``k`` positions only when the profile holds fewer
        photos.
        """
        positions, _stats = self.select_with_stats(k, lam, w)
        return positions

    def select_with_stats(
        self, k: int, lam: float = 0.5, w: float = 0.5
    ) -> tuple[list[int], DescribeStats]:
        """Like :meth:`select` but also returns work counters."""
        _validate(k, lam, w)
        stats = DescribeStats()
        t0 = perf_now()
        with trace_span("describe.select", method="greedy", k=k, lam=lam, w=w):
            n = len(self.profile)
            evaluator = MMREvaluator(self.profile, lam, w, k)
            selected: list[int] = []
            is_selected = bytearray(n)
            while len(selected) < min(k, n):
                stats.iterations += 1
                with trace_span("describe.round"):
                    best_pos = -1
                    best_value = -1.0
                    # Ascending position order + strict ">" keeps the
                    # smallest position on ties (same rule as Algorithm 2's
                    # refinement).
                    for pos in range(n):
                        if is_selected[pos]:
                            continue
                        stats.photos_examined += 1
                        value = evaluator.value(pos)
                        if value > best_value:
                            best_value = value
                            best_pos = pos
                    selected.append(best_pos)
                    is_selected[best_pos] = 1
                    evaluator.extend_selection(best_pos)
            stats.pair_div_evals = evaluator.pair_div_evals
        obs_metrics.record_describe_query(stats, perf_now() - t0,
                                          method="greedy")
        return selected, stats


def _validate(k: int, lam: float, w: float) -> None:
    if k < 1:
        raise QueryError(f"summary size k must be at least 1, got {k}")
    if not 0.0 <= lam <= 1.0:
        raise QueryError(f"lambda must be in [0, 1], got {lam}")
    if not 0.0 <= w <= 1.0:
        raise QueryError(f"w must be in [0, 1], got {w}")
