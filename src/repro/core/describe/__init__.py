"""Describing Streets of Interest (Section 4).

Given a street ``s`` and its associated photos ``R_s`` (those within
``eps``), select ``k`` photos maximising the MaxSum diversification
objective ``F = (1 - lambda) * rel + lambda * div`` (Equation 2) built from
spatio-textual relevance and diversity (Definitions 4-7).

* :mod:`repro.core.describe.profile` -- the street context
  (:class:`StreetProfile`): ``R_s``, the keyword frequency vector ``Phi_s``,
  ``maxD(s)`` and precomputed per-photo relevances;
* :mod:`repro.core.describe.measures` -- the exact measures and objective;
* :mod:`repro.core.describe.bounds` -- the per-cell bounds of Section 4.2.2;
* :mod:`repro.core.describe.greedy` -- the naive greedy BL baseline;
* :mod:`repro.core.describe.st_rel_div` -- the ST_Rel+Div algorithm
  (Algorithm 2);
* :mod:`repro.core.describe.variants` -- the nine Table 3 method variants.
"""

from repro.core.describe.profile import StreetProfile, build_street_profile
from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.st_rel_div import DescribeStats, STRelDivDescriber
from repro.core.describe.variants import VARIANTS, MethodSpec, run_variant
from repro.core.describe.measures import objective_value

__all__ = [
    "DescribeStats",
    "GreedyDescriber",
    "MethodSpec",
    "STRelDivDescriber",
    "StreetProfile",
    "VARIANTS",
    "build_street_profile",
    "objective_value",
    "run_variant",
]
