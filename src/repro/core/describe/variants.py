"""The nine selection methods of the Table 3 effectiveness study.

Each method is the same greedy machinery with the objective restricted to
a subset of the four components: the information axis (S = spatial only,
T = textual only, ST = both, i.e. ``w`` fixed to 1 / 0 / the balanced
value) crossed with the criterion axis (Rel = relevance only, Div =
diversity only, Rel+Div = both, i.e. ``lambda`` fixed to 0 / 1 / the
balanced value).  ST_Rel+Div — the paper's method — uses all components.

Scoring for Table 3 always uses the *full* objective of Equation 2 with
the balanced ``lambda = w = 0.5``, regardless of which restricted
objective drove the selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.measures import objective_value
from repro.core.describe.profile import StreetProfile
from repro.core.describe.st_rel_div import STRelDivDescriber


@dataclass(frozen=True, slots=True)
class MethodSpec:
    """A selection method: which components drive the greedy objective.

    ``lam`` and ``w`` are the Equation 10 parameters used *during
    selection*; ``None`` means "use the query's balanced value".
    """

    name: str
    lam: float | None
    w: float | None

    def effective(self, lam: float, w: float) -> tuple[float, float]:
        """Resolve selection-time ``(lambda, w)`` given query defaults."""
        return (self.lam if self.lam is not None else lam,
                self.w if self.w is not None else w)


VARIANTS: dict[str, MethodSpec] = {
    "S_Rel": MethodSpec("S_Rel", lam=0.0, w=1.0),
    "S_Div": MethodSpec("S_Div", lam=1.0, w=1.0),
    "S_Rel+Div": MethodSpec("S_Rel+Div", lam=None, w=1.0),
    "T_Rel": MethodSpec("T_Rel", lam=0.0, w=0.0),
    "T_Div": MethodSpec("T_Div", lam=1.0, w=0.0),
    "T_Rel+Div": MethodSpec("T_Rel+Div", lam=None, w=0.0),
    "ST_Rel": MethodSpec("ST_Rel", lam=0.0, w=None),
    "ST_Div": MethodSpec("ST_Div", lam=1.0, w=None),
    "ST_Rel+Div": MethodSpec("ST_Rel+Div", lam=None, w=None),
}
"""The Table 3/4 method grid, keyed by the paper's method names."""


def run_variant(
    profile: StreetProfile,
    method: str | MethodSpec,
    k: int,
    lam: float = 0.5,
    w: float = 0.5,
    use_index: bool = True,
) -> list[int]:
    """Select ``k`` photos with the named method.

    ``lam`` / ``w`` are the balanced values substituted where the method
    does not pin them.  ``use_index=False`` forces the naive greedy (the
    BL path), which returns the same summary.
    """
    spec = VARIANTS[method] if isinstance(method, str) else method
    sel_lam, sel_w = spec.effective(lam, w)
    if use_index:
        return STRelDivDescriber(profile).select(k, sel_lam, sel_w)
    return GreedyDescriber(profile).select(k, sel_lam, sel_w)


def score_variants(
    profile: StreetProfile,
    k: int,
    lam: float = 0.5,
    w: float = 0.5,
    methods: dict[str, MethodSpec] | None = None,
) -> dict[str, float]:
    """Table 3: the Equation 2 objective of each method's summary.

    Scores are *not* normalised here; see
    :func:`repro.eval.experiments.describe_scores` for the
    normalised-to-ST_Rel+Div presentation the paper uses.
    """
    out: dict[str, float] = {}
    for name, spec in (methods or VARIANTS).items():
        positions = run_variant(profile, spec, k, lam, w)
        out[name] = objective_value(profile, positions, lam, w)
    return out
