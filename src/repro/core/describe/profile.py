"""The street context used by the describe stage.

A :class:`StreetProfile` bundles everything Definitions 4-7 need about one
street: its associated photos ``R_s`` (within ``eps``), the keyword
frequency vector ``Phi_s``, the distance normaliser ``maxD(s)`` (diagonal
of the ``eps``-buffered street MBR) and the neighbourhood radius ``rho``.
It precomputes the per-photo spatial and textual relevances once, since
every selection method reads them repeatedly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.data.keywords import KeywordFrequencyVector
from repro.data.photo import PhotoSet
from repro.data.poi import POISet
from repro.errors import QueryError
from repro.geometry.bbox import BBox
from repro.geometry.distance import points_segment_distance
from repro.network.model import RoadNetwork
from repro.obs.tracer import trace_span

DEFAULT_RHO = 0.0001
"""The neighbourhood radius used in the paper's experiments (Section 5.2.2)."""


class StreetProfile:
    """Everything the describe measures need about one street.

    Parameters
    ----------
    photos:
        ``R_s``: the photos associated with the street.
    phi:
        ``Phi_s``: the street's keyword frequency vector.
    max_d:
        ``maxD(s)``: largest possible distance between two associated
        photos (Definition 5's normaliser).
    extent:
        Rectangle for the photo grid (the ``eps``-buffered street MBR).
    rho:
        Neighbourhood radius of Definition 4.
    street_id, street_name:
        Identification, carried through to reports.
    """

    def __init__(
        self,
        photos: PhotoSet,
        phi: KeywordFrequencyVector,
        max_d: float,
        extent: BBox,
        rho: float = DEFAULT_RHO,
        street_id: int = -1,
        street_name: str = "",
    ) -> None:
        if rho <= 0:
            raise QueryError(f"rho must be positive, got {rho}")
        if max_d <= 0:
            raise QueryError(f"max_d must be positive, got {max_d}")
        self.photos = photos
        self.phi = phi
        self.max_d = float(max_d)
        self.extent = extent
        self.rho = float(rho)
        self.street_id = street_id
        self.street_name = street_name
        self.keyword_sets: tuple[frozenset[str], ...] = tuple(
            photo.keywords for photo in photos)
        self.tag_id_sets = self._intern_keyword_sets()
        self.spatial_rel = self._compute_spatial_rel()
        self.textual_rel = self._compute_textual_rel()

    def _intern_keyword_sets(self) -> tuple[frozenset[int], ...]:
        """``keyword_sets`` with every tag replaced by a small integer id.

        Jaccard distance (Definition 7) only needs intersection/union
        *cardinalities*, and the interning is injective, so distances over
        the id sets equal distances over the string sets — while set
        operations on small ints avoid re-hashing tag strings on every
        pairwise diversity evaluation.  Ids follow the sorted global
        vocabulary, so they are deterministic across runs.
        """
        vocabulary = sorted(set().union(*self.keyword_sets))
        intern = {keyword: tag_id
                  for tag_id, keyword in enumerate(vocabulary)}
        return tuple(
            frozenset(intern[keyword] for keyword in keywords)
            for keywords in self.keyword_sets)

    # -- precomputed per-photo relevances ----------------------------------

    def _compute_spatial_rel(self) -> np.ndarray:
        """Definition 4 for every photo: neighbours within ``rho`` / ``|R_s|``.

        A photo counts itself (its distance to itself is zero), matching
        the cell lower bound of Equation 11.
        """
        n = len(self.photos)
        out = np.zeros(n, dtype=np.float64)
        if n == 0:
            return out
        xs, ys = self.photos.xs, self.photos.ys
        for pos in range(n):
            within = np.hypot(xs - xs[pos], ys - ys[pos]) <= self.rho
            out[pos] = np.count_nonzero(within) / n
        return out

    def _compute_textual_rel(self) -> np.ndarray:
        """Definition 6 (Equation 8) for every photo."""
        n = len(self.photos)
        out = np.zeros(n, dtype=np.float64)
        norm = self.phi.norm1
        if norm == 0:
            return out
        for pos in range(n):
            out[pos] = self.phi.weight_of_set(self.keyword_sets[pos]) / norm
        return out

    def __len__(self) -> int:
        return len(self.photos)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StreetProfile(street={self.street_name!r}, "
                f"photos={len(self.photos)}, rho={self.rho})")


def photos_near_street(
    network: RoadNetwork,
    street_id: int,
    photos: PhotoSet,
    eps: float,
) -> list[int]:
    """Positions of photos within ``eps`` of the street.

    ``dist(r, s) = min over segments of dist(r, l)`` (Section 4.1.1 defines
    photo-to-street distance exactly as for POIs).
    """
    if len(photos) == 0:
        return []
    within = np.zeros(len(photos), dtype=bool)
    xs, ys = photos.xs, photos.ys
    for segment in network.segments_of_street(street_id):
        pending = ~within
        if not pending.any():
            break
        dists = points_segment_distance(
            xs[pending], ys[pending],
            segment.ax, segment.ay, segment.bx, segment.by)
        hits = np.flatnonzero(pending)
        within[hits[dists <= eps]] = True
    return [int(pos) for pos in np.flatnonzero(within)]


@trace_span("describe.profile_build")
def build_street_profile(
    network: RoadNetwork,
    street_id: int,
    photos: PhotoSet,
    eps: float,
    rho: float = DEFAULT_RHO,
    pois: POISet | None = None,
    poi_keyword_weight: float = 1.0,
) -> StreetProfile:
    """Assemble the :class:`StreetProfile` for a street.

    ``Phi_s`` is derived from the keyword sets of the associated photos
    (the paper notes several derivations are possible, including "from the
    keywords of its neighbouring POIs and/or photos"); pass ``pois`` to also
    blend in the keywords of POIs within ``eps``, each contributing
    ``poi_keyword_weight`` per keyword occurrence.
    """
    positions = photos_near_street(network, street_id, photos, eps)
    street_photos = photos.subset(positions)
    keyword_sets: list[Iterable[str]] = [r.keywords for r in street_photos]
    freq: dict[str, float] = {}
    for keywords in keyword_sets:
        for keyword in keywords:
            # The Phi_s frequency vector is algorithmic state, not telemetry.
            freq[keyword] = freq.get(keyword, 0.0) + 1.0  # repro-lint: disable=REP-O502 (Phi_s state)
    if pois is not None:
        for pos in _pois_near_street(network, street_id, pois, eps):
            for keyword in pois[pos].keywords:
                freq[keyword] = freq.get(keyword, 0.0) + poi_keyword_weight  # repro-lint: disable=REP-O502 (Phi_s state)
    extent = network.street_bbox(street_id).expanded(eps)
    return StreetProfile(
        photos=street_photos,
        phi=KeywordFrequencyVector(freq),
        max_d=extent.diagonal,
        extent=extent,
        rho=rho,
        street_id=street_id,
        street_name=network.street(street_id).name,
    )


def _pois_near_street(
    network: RoadNetwork, street_id: int, pois: POISet, eps: float
) -> Sequence[int]:
    """Positions of POIs within ``eps`` of the street (mirror of photos)."""
    if len(pois) == 0:
        return []
    within = np.zeros(len(pois), dtype=bool)
    for segment in network.segments_of_street(street_id):
        pending = ~within
        if not pending.any():
            break
        dists = points_segment_distance(
            pois.xs[pending], pois.ys[pending],
            segment.ax, segment.ay, segment.bx, segment.by)
        hits = np.flatnonzero(pending)
        within[hits[dists <= eps]] = True
    return [int(pos) for pos in np.flatnonzero(within)]
