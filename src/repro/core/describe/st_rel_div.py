"""The ST_Rel+Div algorithm (Algorithm 2).

Greedy MaxSum diversification where each iteration first *filters* grid
cells using the Section 4.2.2 bounds — discarding any cell whose ``mmr``
upper bound falls below the best cell lower bound — and then *refines* the
surviving cells in decreasing upper-bound order, computing exact ``mmr``
only for their photos and shrinking the candidate list as better exact
values are found.

The selected summary is identical to the naive
:class:`~repro.core.describe.greedy.GreedyDescriber` (both maximise exact
``mmr`` with the same smallest-position tie-break); only the amount of work
differs, which is what the Figure 6 experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import contracts
from repro.core.describe.bounds import CellBoundsContext
from repro.core.describe.greedy import _validate
from repro.core.describe.measures import mmr_value
from repro.core.describe.profile import StreetProfile
from repro.index.photo_grid import PhotoCell, PhotoGridIndex


@dataclass(slots=True)
class DescribeStats:
    """Work counters of one ST_Rel+Div run (for the Figure 6 analysis)."""

    iterations: int = 0
    cells_considered: int = 0
    cells_pruned_filter: int = 0
    cells_pruned_refine: int = 0
    photos_examined: int = 0

    @property
    def cells_refined(self) -> int:
        return (self.cells_considered - self.cells_pruned_filter
                - self.cells_pruned_refine)


class STRelDivDescriber:
    """Bound-accelerated greedy photo selection over a street profile."""

    def __init__(self, profile: StreetProfile,
                 index: PhotoGridIndex | None = None) -> None:
        self.profile = profile
        self.index = index or PhotoGridIndex(
            profile.photos, profile.extent, profile.rho)
        self._bounds = CellBoundsContext(profile, self.index)
        # Per-cell running sums of the diversity bounds towards the
        # already-selected photos.  The selected set only grows, so each
        # new selection adds one increment per cell — O(cells) per
        # iteration instead of O(cells * |selected|).
        self._div_lo: dict[tuple[int, int], float] = {}
        self._div_hi: dict[tuple[int, int], float] = {}

    def select(self, k: int, lam: float = 0.5, w: float = 0.5) -> list[int]:
        """Photo positions of the ``k``-photo summary (same contract as
        :meth:`GreedyDescriber.select`)."""
        positions, _stats = self.select_with_stats(k, lam, w)
        return positions

    def select_with_stats(
        self, k: int, lam: float = 0.5, w: float = 0.5
    ) -> tuple[list[int], DescribeStats]:
        """Like :meth:`select` but also returns work counters."""
        _validate(k, lam, w)
        stats = DescribeStats()
        n = len(self.profile)
        selected: list[int] = []
        selected_set: set[int] = set()
        selected_per_cell: dict[tuple[int, int], int] = {}
        self._div_lo = {cell.coord: 0.0 for cell in self.index.cells()}
        self._div_hi = dict(self._div_lo)
        while len(selected) < min(k, n):
            stats.iterations += 1
            best_pos = self._next_candidate(
                selected, selected_set, selected_per_cell, lam, w, k, stats)
            if contracts.ENABLED:
                contracts.check_describe_selection(best_pos, stats.iterations)
            selected.append(best_pos)
            selected_set.add(best_pos)
            coord = self.index.grid.cell_of(
                float(self.profile.photos.xs[best_pos]),
                float(self.profile.photos.ys[best_pos]))
            selected_per_cell[coord] = selected_per_cell.get(coord, 0) + 1
            if lam > 0 and k > 1:
                self._accumulate_div_bounds(best_pos, w)
        return selected, stats

    def _accumulate_div_bounds(self, pos: int, w: float) -> None:
        """Fold the newly selected photo into the per-cell diversity sums."""
        for cell in self.index.cells():
            s_lo, s_hi = self._bounds.spatial_div_bounds(cell, pos)
            t_lo, t_hi = self._bounds.textual_div_bounds(cell, pos)
            self._div_lo[cell.coord] += w * s_lo + (1.0 - w) * t_lo
            self._div_hi[cell.coord] += w * s_hi + (1.0 - w) * t_hi

    # -- one greedy step ------------------------------------------------------

    def _next_candidate(
        self,
        selected: list[int],
        selected_set: set[int],
        selected_per_cell: dict[tuple[int, int], int],
        lam: float,
        w: float,
        k: int,
        stats: DescribeStats,
    ) -> int:
        # Filtering phase: bound every cell that still holds candidates.
        # Relevance bounds are cached per cell; diversity-sum bounds are
        # maintained incrementally in _div_lo / _div_hi.
        div_scale = lam / (k - 1) if (selected and k > 1) else 0.0
        bounded: list[tuple[float, float, PhotoCell]] = []
        mmr_min = float("-inf")
        for cell in self.index.cells():
            if selected_per_cell.get(cell.coord, 0) >= len(cell):
                continue  # no unselected photos left in this cell
            stats.cells_considered += 1
            rel = self._bounds.relevance_bounds(cell)
            lo = (1.0 - lam) * (w * rel.spatial_lo
                                + (1.0 - w) * rel.textual_lo)
            hi = (1.0 - lam) * (w * rel.spatial_hi
                                + (1.0 - w) * rel.textual_hi)
            if div_scale:
                lo += div_scale * self._div_lo[cell.coord]
                hi += div_scale * self._div_hi[cell.coord]
            bounded.append((lo, hi, cell))
            if lo > mmr_min:
                mmr_min = lo
        candidates = [(hi, cell) for lo, hi, cell in bounded
                      if hi >= mmr_min]
        stats.cells_pruned_filter += len(bounded) - len(candidates)

        # Refinement phase: visit candidate cells by decreasing upper bound.
        candidates.sort(key=lambda item: (-item[0], item[1].coord))
        best_value = float("-inf")
        best_pos = -1
        for hi, cell in candidates:
            if hi < best_value:
                stats.cells_pruned_refine += 1
                continue
            for pos in cell.positions:
                if pos in selected_set:
                    continue
                stats.photos_examined += 1
                value = mmr_value(self.profile, pos, selected, lam, w, k)
                if contracts.ENABLED:
                    contracts.check_describe_candidate(
                        self.profile, self._bounds, cell, pos, selected,
                        lam, w, k, value)
                if value > best_value or (value == best_value
                                          and pos < best_pos):
                    best_value = value
                    best_pos = pos
        return best_pos
