"""The ST_Rel+Div algorithm (Algorithm 2).

Greedy MaxSum diversification where each iteration first *filters* grid
cells using the Section 4.2.2 bounds — discarding any cell whose ``mmr``
upper bound falls below the best cell lower bound — and then *refines* the
surviving cells in decreasing upper-bound order, computing exact ``mmr``
only for their photos and shrinking the candidate list as better exact
values are found.

The selected summary is identical to the naive
:class:`~repro.core.describe.greedy.GreedyDescriber` (both maximise exact
``mmr`` with the same smallest-position tie-break); only the amount of work
differs, which is what the Figure 6 experiments measure.

The per-cell bound bookkeeping is kept in flat arrays indexed by cell
position (one slot per occupied cell, in coordinate order): cell
rectangles, interned keyword bitmasks and the selected-independent
relevance bounds are materialised once per describer, and each new
selection folds its diversity bounds into running per-cell sums with one
vectorised pass instead of per-cell method calls.  Every inlined formula
replicates :class:`~repro.core.describe.bounds.CellBoundsContext`
operation for operation, so the bounds — and therefore the selection —
are bit-identical to the reference implementation the runtime contracts
check against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import contracts
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.obs.slowlog import SLOWLOG
from repro.obs.tracer import perf_now, trace_span
from repro.core.describe.bounds import CellBoundsContext
from repro.core.describe.greedy import _validate
from repro.core.describe.measures import MMREvaluator
from repro.core.describe.profile import StreetProfile
from repro.core.describe.stats import DescribeStats
from repro.index.photo_grid import PhotoCell, PhotoGridIndex

__all__ = ["DescribeStats", "STRelDivDescriber"]


class STRelDivDescriber:
    """Bound-accelerated greedy photo selection over a street profile."""

    def __init__(self, profile: StreetProfile,
                 index: PhotoGridIndex | None = None) -> None:
        self.profile = profile
        self.index = index or PhotoGridIndex(
            profile.photos, profile.extent, profile.rho)
        self._bounds = CellBoundsContext(profile, self.index)
        self._cells: list[PhotoCell] = list(self.index.cells())
        self._cell_slot = {cell.coord: slot
                           for slot, cell in enumerate(self._cells)}
        self._build_cell_arrays()
        # Per-cell running sums of the diversity bounds towards the
        # already-selected photos.  The selected set only grows, so each
        # new selection adds one increment per cell — O(cells) per
        # iteration instead of O(cells * |selected|).
        self._div_lo = np.zeros(len(self._cells))
        self._div_hi = np.zeros(len(self._cells))
        # Per-photo fold vectors (Equations 15-18 towards every cell) are
        # selection- and parameter-independent; memoise them across
        # select() calls, like the SOI session mass memos.
        self._fold_cache: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}

    @trace_span("describe.cell_bounds")
    def _build_cell_arrays(self) -> None:
        """Flat per-cell data reused by every :meth:`select` call."""
        cells = self._cells
        boxes = [self.index.cell_bbox(cell.coord) for cell in cells]
        self._box_x0 = np.array([box.min_x for box in boxes])
        self._box_y0 = np.array([box.min_y for box in boxes])
        self._box_x1 = np.array([box.max_x for box in boxes])
        self._box_y1 = np.array([box.max_y for box in boxes])
        # Interned tag bitmasks: cardinalities of mask intersections equal
        # cardinalities of the string-set intersections, which is all the
        # Equation 17/18 closed forms read.
        tag_sets = self.profile.tag_id_sets
        self._photo_masks = [
            sum(1 << tag_id for tag_id in tags) for tags in tag_sets]
        self._cell_masks = [0] * len(cells)
        for slot, cell in enumerate(cells):
            mask = 0
            for pos in cell.positions:
                mask |= self._photo_masks[pos]
            self._cell_masks[slot] = mask
        self._cell_sizes = [len(cell) for cell in cells]
        # Selected-independent relevance bounds (Equations 11-14), via the
        # reference evaluator so the flat arrays share its cache.
        rel = [self._bounds.relevance_bounds(cell) for cell in cells]
        self._rel_spatial_lo = np.array([b.spatial_lo for b in rel])
        self._rel_spatial_hi = np.array([b.spatial_hi for b in rel])
        self._rel_textual_lo = np.array([b.textual_lo for b in rel])
        self._rel_textual_hi = np.array([b.textual_hi for b in rel])

    def select(self, k: int, lam: float = 0.5, w: float = 0.5) -> list[int]:
        """Photo positions of the ``k``-photo summary (same contract as
        :meth:`GreedyDescriber.select`)."""
        positions, _stats = self.select_with_stats(k, lam, w)
        return positions

    def select_with_stats(
        self, k: int, lam: float = 0.5, w: float = 0.5
    ) -> tuple[list[int], DescribeStats]:
        """Like :meth:`select` but also returns work counters."""
        _validate(k, lam, w)
        stats = DescribeStats()
        mark = obs_tracer.TRACER.mark() if obs_tracer.ENABLED else 0
        t0 = perf_now()
        with trace_span("describe.select", method="st_rel_div",
                        k=k, lam=lam, w=w):
            n = len(self.profile)
            evaluator = MMREvaluator(self.profile, lam, w, k)
            selected: list[int] = []
            selected_set: set[int] = set()
            selected_per_cell = [0] * len(self._cells)
            alive = np.ones(len(self._cells), dtype=bool)
            self._div_lo = np.zeros(len(self._cells))
            self._div_hi = np.zeros(len(self._cells))
            # The relevance part of every cell's mmr bound is
            # selection-independent; weight it once per query.
            rel_lo = (1.0 - lam) * (w * self._rel_spatial_lo
                                    + (1.0 - w) * self._rel_textual_lo)
            rel_hi = (1.0 - lam) * (w * self._rel_spatial_hi
                                    + (1.0 - w) * self._rel_textual_hi)
            while len(selected) < min(k, n):
                stats.iterations += 1
                with trace_span("describe.round"):
                    best_pos = self._next_candidate(
                        evaluator, rel_lo, rel_hi, alive, selected,
                        selected_set, lam, w, k, stats)
                    if contracts.ENABLED:
                        contracts.check_describe_selection(
                            best_pos, stats.iterations)
                    selected.append(best_pos)
                    selected_set.add(best_pos)
                    evaluator.extend_selection(best_pos)
                    coord = self.index.grid.cell_of(
                        float(self.profile.photos.xs[best_pos]),
                        float(self.profile.photos.ys[best_pos]))
                    slot = self._cell_slot[coord]
                    # Aliveness bookkeeping of the greedy loop, not telemetry.
                    selected_per_cell[slot] += 1  # repro-lint: disable=REP-O502 (algorithmic state)
                    if selected_per_cell[slot] >= self._cell_sizes[slot]:
                        # No unselected photos left in the cell.
                        alive[slot] = False
                    if lam > 0 and k > 1:
                        self._accumulate_div_bounds(best_pos, w)
            stats.pair_div_evals = evaluator.pair_div_evals
        seconds = perf_now() - t0
        obs_metrics.record_describe_query(stats, seconds, method="st_rel_div")
        if SLOWLOG.enabled:
            SLOWLOG.maybe_record(
                "describe",
                {"method": "st_rel_div", "k": k, "lam": lam, "w": w,
                 "photos": len(self.profile)},
                seconds, stats.counters(),
                obs_tracer.TRACER.spans_since(mark)
                if obs_tracer.ENABLED else ())
        return selected, stats

    def _accumulate_div_bounds(self, pos: int, w: float) -> None:
        """Fold the newly selected photo into the per-cell diversity sums.

        Inlines :meth:`CellBoundsContext.spatial_div_bounds` /
        :meth:`~CellBoundsContext.textual_div_bounds` over the flat cell
        arrays: the min/max point-box legs are exact IEEE max/subtract
        operations, the hypotenuses go through the same ``math.hypot`` as
        the scalar kernels, and the Jaccard closed forms divide the same
        integers — so every folded value is bitwise what the reference
        methods return.
        """
        cached = self._fold_cache.get(pos)
        if cached is None:
            with trace_span("describe.fold_bounds"):
                cached = self._fold_vectors(pos)
            self._fold_cache[pos] = cached
        s_lo, s_hi, t_lo, t_hi = cached
        self._div_lo += w * s_lo + (1.0 - w) * t_lo
        self._div_hi += w * s_hi + (1.0 - w) * t_hi

    def _fold_vectors(
        self, pos: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The four per-cell diversity-bound vectors of one photo."""
        px = float(self.profile.photos.xs[pos])
        py = float(self.profile.photos.ys[pos])
        max_d = self.profile.max_d
        # Equations 15/16 legs, vectorised (exact elementwise ops).
        lo_dx = np.maximum(np.maximum(self._box_x0 - px, 0.0),
                           px - self._box_x1).tolist()
        lo_dy = np.maximum(np.maximum(self._box_y0 - py, 0.0),
                           py - self._box_y1).tolist()
        hi_dx = np.maximum(px - self._box_x0, self._box_x1 - px).tolist()
        hi_dy = np.maximum(py - self._box_y0, self._box_y1 - py).tolist()
        s_lo = np.array([math.hypot(dx, dy)
                         for dx, dy in zip(lo_dx, lo_dy)]) / max_d
        s_hi = np.array([math.hypot(dx, dy)
                         for dx, dy in zip(hi_dx, hi_dy)]) / max_d
        # Equations 17/18 closed forms over the interned tag bitmasks.
        tags_mask = self._photo_masks[pos]
        n_r = len(self.profile.tag_id_sets[pos])
        t_lo = [0.0] * len(self._cells)
        t_hi = [0.0] * len(self._cells)
        for slot, cell in enumerate(self._cells):
            inter = (self._cell_masks[slot] & tags_mask).bit_count()
            diff = self._cell_masks[slot].bit_count() - inter
            if inter < cell.psi_min:
                denom = n_r + cell.psi_min - inter
                t_lo[slot] = 1.0 - inter / denom if denom else 0.0
            else:
                overlap = min(inter, cell.psi_max)
                t_lo[slot] = (1.0 - overlap / n_r if n_r
                              else (0.0 if cell.psi_min == 0 else 1.0))
            if diff >= cell.psi_min:
                t_hi[slot] = 1.0
            else:
                denom = n_r + diff
                t_hi[slot] = (1.0 - (cell.psi_min - diff) / denom
                              if denom else 0.0)
        return s_lo, s_hi, np.array(t_lo), np.array(t_hi)

    # -- one greedy step ------------------------------------------------------

    def _next_candidate(
        self,
        evaluator: MMREvaluator,
        rel_lo: np.ndarray,
        rel_hi: np.ndarray,
        alive: np.ndarray,
        selected: list[int],
        selected_set: set[int],
        lam: float,
        w: float,
        k: int,
        stats: DescribeStats,
    ) -> int:
        # Filtering phase: bound every cell that still holds candidates.
        # Relevance bounds are precomputed per cell; diversity-sum bounds
        # are maintained incrementally in _div_lo / _div_hi.
        with trace_span("describe.filter"):
            div_scale = lam / (k - 1) if (selected and k > 1) else 0.0
            if div_scale:
                lo = rel_lo + div_scale * self._div_lo
                hi = rel_hi + div_scale * self._div_hi
            else:
                lo = rel_lo
                hi = rel_hi
            alive_slots = np.flatnonzero(alive).tolist()
            stats.cells_considered += len(alive_slots)
            mmr_min = lo[alive].max()
            hi_alive = hi[alive].tolist()
            candidates = [(cell_hi, self._cells[slot])
                          for cell_hi, slot in zip(hi_alive, alive_slots)
                          if cell_hi >= mmr_min]
            stats.cells_pruned_filter += len(alive_slots) - len(candidates)

        # Refinement phase: visit candidate cells by decreasing upper bound.
        with trace_span("describe.refine"):
            candidates.sort(key=lambda item: (-item[0], item[1].coord))
            best_value = float("-inf")
            best_pos = -1
            for cell_hi, cell in candidates:
                if cell_hi < best_value:
                    stats.cells_pruned_refine += 1
                    continue
                for pos in cell.positions:
                    if pos in selected_set:
                        continue
                    stats.photos_examined += 1
                    value = evaluator.value(pos)
                    if contracts.ENABLED:
                        contracts.check_describe_candidate(
                            self.profile, self._bounds, cell, pos, selected,
                            lam, w, k, value)
                    if value > best_value or (value == best_value
                                              and pos < best_pos):
                        best_value = value
                        best_pos = pos
        return best_pos
