"""Exact spatio-textual relevance and diversity measures (Section 4.1.2).

All functions operate on photo *positions* within a
:class:`~repro.core.describe.profile.StreetProfile` so that the greedy
baseline, Algorithm 2's refinement and the objective scoring all evaluate
bit-identical arithmetic — which is what lets the tests assert that
ST_Rel+Div selects exactly the same photos as the naive greedy.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.describe.profile import StreetProfile


def spatial_div(profile: StreetProfile, a: int, b: int) -> float:
    """Definition 5: pairwise distance normalised by ``maxD(s)``."""
    photos = profile.photos
    d = math.hypot(photos.xs[a] - photos.xs[b], photos.ys[a] - photos.ys[b])
    return d / profile.max_d


def textual_div(profile: StreetProfile, a: int, b: int) -> float:
    """Definition 7: Jaccard distance of the two photos' tag sets."""
    return jaccard_distance(profile.keyword_sets[a], profile.keyword_sets[b])


def jaccard_distance(a: frozenset[str], b: frozenset[str]) -> float:
    """``1 - |a n b| / |a u b|``; two empty sets have distance 0."""
    union = len(a | b)
    if union == 0:
        return 0.0
    return 1.0 - len(a & b) / union


def pair_div(profile: StreetProfile, a: int, b: int, w: float) -> float:
    """Weighted pairwise diversity ``w * spatial + (1 - w) * textual``."""
    return (w * spatial_div(profile, a, b)
            + (1.0 - w) * textual_div(profile, a, b))


def photo_rel(profile: StreetProfile, pos: int, w: float) -> float:
    """Weighted relevance ``w * spatial + (1 - w) * textual`` of one photo."""
    return (w * float(profile.spatial_rel[pos])
            + (1.0 - w) * float(profile.textual_rel[pos]))


def set_relevance(profile: StreetProfile, positions: Sequence[int],
                  w: float) -> float:
    """Equation 4: mean weighted relevance of the set."""
    k = len(positions)
    if k == 0:
        return 0.0
    return sum(photo_rel(profile, pos, w) for pos in positions) / k


def set_diversity(profile: StreetProfile, positions: Sequence[int],
                  w: float) -> float:
    """Equation 5: mean weighted pairwise diversity of the set."""
    k = len(positions)
    if k < 2:
        return 0.0
    total = 0.0
    for i in range(k):
        for j in range(i + 1, k):
            total += pair_div(profile, positions[i], positions[j], w)
    return 2.0 * total / (k * (k - 1))


def objective_value(profile: StreetProfile, positions: Sequence[int],
                    lam: float, w: float) -> float:
    """Equation 2: ``F = (1 - lambda) * rel + lambda * div``."""
    return ((1.0 - lam) * set_relevance(profile, positions, w)
            + lam * set_diversity(profile, positions, w))


def mmr_value(
    profile: StreetProfile,
    pos: int,
    selected: Sequence[int],
    lam: float,
    w: float,
    k: int,
) -> float:
    """Equation 10: the maximal-marginal-relevance score of a candidate.

    ``mmr(r) = (1 - lambda) * rel(r) + lambda / (k - 1) *
    sum_{r' in R} div(r, r')`` where ``R`` is the already-selected set and
    ``k`` the target summary size.  With ``k = 1`` the diversity term is
    undefined in the paper's formula; selection then degenerates to pure
    relevance, which is the natural reading.
    """
    value = (1.0 - lam) * photo_rel(profile, pos, w)
    if selected and k > 1:
        div_sum = sum(pair_div(profile, pos, other, w) for other in selected)
        value += lam / (k - 1) * div_sum
    return value
