"""Exact spatio-textual relevance and diversity measures (Section 4.1.2).

All functions operate on photo *positions* within a
:class:`~repro.core.describe.profile.StreetProfile` so that the greedy
baseline, Algorithm 2's refinement and the objective scoring all evaluate
bit-identical arithmetic — which is what lets the tests assert that
ST_Rel+Div selects exactly the same photos as the naive greedy.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.describe.profile import StreetProfile


def spatial_div(profile: StreetProfile, a: int, b: int) -> float:
    """Definition 5: pairwise distance normalised by ``maxD(s)``."""
    photos = profile.photos
    d = math.hypot(photos.xs[a] - photos.xs[b], photos.ys[a] - photos.ys[b])
    return d / profile.max_d


def textual_div(profile: StreetProfile, a: int, b: int) -> float:
    """Definition 7: Jaccard distance of the two photos' tag sets.

    Evaluated over the profile's interned integer-id sets: interning is
    injective, so intersection/union cardinalities — and hence the
    distance — are exactly those of the string sets, without re-hashing
    tag strings on every pairwise evaluation.
    """
    return jaccard_distance(profile.tag_id_sets[a], profile.tag_id_sets[b])


def jaccard_distance(a: frozenset, b: frozenset) -> float:
    """``1 - |a n b| / |a u b|``; two empty sets have distance 0."""
    union = len(a | b)
    if union == 0:
        return 0.0
    return 1.0 - len(a & b) / union


def pair_div(profile: StreetProfile, a: int, b: int, w: float) -> float:
    """Weighted pairwise diversity ``w * spatial + (1 - w) * textual``."""
    return (w * spatial_div(profile, a, b)
            + (1.0 - w) * textual_div(profile, a, b))


def photo_rel(profile: StreetProfile, pos: int, w: float) -> float:
    """Weighted relevance ``w * spatial + (1 - w) * textual`` of one photo."""
    return (w * float(profile.spatial_rel[pos])
            + (1.0 - w) * float(profile.textual_rel[pos]))


def set_relevance(profile: StreetProfile, positions: Sequence[int],
                  w: float) -> float:
    """Equation 4: mean weighted relevance of the set."""
    k = len(positions)
    if k == 0:
        return 0.0
    return sum(photo_rel(profile, pos, w) for pos in positions) / k


def set_diversity(profile: StreetProfile, positions: Sequence[int],
                  w: float) -> float:
    """Equation 5: mean weighted pairwise diversity of the set."""
    k = len(positions)
    if k < 2:
        return 0.0
    total = 0.0
    for i in range(k):
        for j in range(i + 1, k):
            total += pair_div(profile, positions[i], positions[j], w)
    return 2.0 * total / (k * (k - 1))


def objective_value(profile: StreetProfile, positions: Sequence[int],
                    lam: float, w: float) -> float:
    """Equation 2: ``F = (1 - lambda) * rel + lambda * div``."""
    return ((1.0 - lam) * set_relevance(profile, positions, w)
            + lam * set_diversity(profile, positions, w))


def mmr_value(
    profile: StreetProfile,
    pos: int,
    selected: Sequence[int],
    lam: float,
    w: float,
    k: int,
) -> float:
    """Equation 10: the maximal-marginal-relevance score of a candidate.

    ``mmr(r) = (1 - lambda) * rel(r) + lambda / (k - 1) *
    sum_{r' in R} div(r, r')`` where ``R`` is the already-selected set and
    ``k`` the target summary size.  With ``k = 1`` the diversity term is
    undefined in the paper's formula; selection then degenerates to pure
    relevance, which is the natural reading.
    """
    value = (1.0 - lam) * photo_rel(profile, pos, w)
    if selected and k > 1:
        div_sum = sum(pair_div(profile, pos, other, w) for other in selected)
        value += lam / (k - 1) * div_sum
    return value


class MMREvaluator:
    """Incremental Equation 10 evaluator for greedy selection loops.

    :func:`mmr_value` recomputes ``sum_{r' in R} div(r, r')`` from scratch
    on every call, making one greedy selection pass
    ``O(|R| * candidates)``.  This evaluator keeps, per candidate, the
    running diversity sum towards the selected photos it has already seen;
    a :meth:`value` call only folds in selections made since the
    candidate's last evaluation — amortised ``O(1)`` additional pair
    evaluations per (candidate, selection).

    Bit-identity with :func:`mmr_value` is load-bearing (the tests assert
    that ST_Rel+Div and the greedy baseline pick identical photos):

    * the running sum extends by folding new selections left-to-right from
      ``0.0``, exactly the left fold ``sum()`` performs over the full
      selection list in order;
    * the final combination ``base + (lam / (k - 1)) * div_sum`` evaluates
      in the same operation order as :func:`mmr_value`'s
      ``value += lam / (k - 1) * div_sum``.

    Candidates never seen by :meth:`value` cost nothing, which preserves
    ST_Rel+Div's examine-fewer-photos advantage over the baseline.
    """

    __slots__ = ("profile", "lam", "w", "k", "_base", "_div_scale",
                 "_selected", "_div_sum", "_upto", "pair_div_evals")

    def __init__(self, profile: StreetProfile, lam: float, w: float,
                 k: int) -> None:
        self.profile = profile
        self.lam = lam
        self.w = w
        self.k = k
        n = len(profile)
        self._base = [(1.0 - lam) * photo_rel(profile, pos, w)
                      for pos in range(n)]
        self._div_scale = lam / (k - 1) if k > 1 else 0.0
        self._selected: list[int] = []
        self._div_sum = [0.0] * n
        self._upto = [0] * n  # selections already folded in, per candidate
        self.pair_div_evals = 0

    def extend_selection(self, pos: int) -> None:
        """Record a newly selected photo (candidates fold it in lazily)."""
        self._selected.append(pos)

    @property
    def selected(self) -> list[int]:
        """The selection list (shared, in selection order)."""
        return self._selected

    def value(self, pos: int) -> float:
        """``mmr_value(profile, pos, selected, lam, w, k)``, incrementally."""
        value = self._base[pos]
        selected = self._selected
        if selected and self.k > 1:
            upto = self._upto[pos]
            div_sum = self._div_sum[pos]
            if upto < len(selected):
                for other in selected[upto:]:
                    div_sum += pair_div(self.profile, pos, other, self.w)
                self.pair_div_evals += len(selected) - upto
                self._div_sum[pos] = div_sum
                self._upto[pos] = len(selected)
            value += self._div_scale * div_sum
        return value
