"""Work counters shared by the describe-stage selection methods.

Both the naive greedy baseline and ST_Rel+Div (Algorithm 2) report their
work through the same :class:`DescribeStats` so the Figure 6 analysis — and
the ``repro bench`` harness — can compare them counter for counter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class DescribeStats:
    """Work counters of one photo-selection run.

    ``iterations`` is the number of greedy steps (= photos selected);
    ``photos_examined`` counts exact Equation-10 evaluations;
    ``pair_div_evals`` counts pairwise-diversity evaluations inside them
    (the dominant cost once photos have been selected).  The ``cells_*``
    counters are only populated by ST_Rel+Div, which operates on grid
    cells; the greedy baseline has no cells to prune.
    """

    iterations: int = 0
    cells_considered: int = 0
    cells_pruned_filter: int = 0
    cells_pruned_refine: int = 0
    photos_examined: int = 0
    pair_div_evals: int = 0

    @property
    def cells_refined(self) -> int:
        return (self.cells_considered - self.cells_pruned_filter
                - self.cells_pruned_refine)

    def counters(self) -> dict[str, int]:
        """All counters as a plain dict (for bench reports)."""
        return {
            "iterations": self.iterations,
            "cells_considered": self.cells_considered,
            "cells_pruned_filter": self.cells_pruned_filter,
            "cells_pruned_refine": self.cells_pruned_refine,
            "cells_refined": self.cells_refined,
            "photos_examined": self.photos_examined,
            "pair_div_evals": self.pair_div_evals,
        }
