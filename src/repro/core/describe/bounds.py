"""Per-cell bounds for ST_Rel+Div (Section 4.2.2, Equations 11-18).

For any photo inside a grid cell ``c`` the four components of the ``mmr``
objective can be bounded using only cell statistics:

* spatial relevance — Equations 11/12 (own-cell count vs 2-cell
  neighbourhood count, both over ``|R_s|``);
* textual relevance — Equations 13/14 (keyword sets ``Psi-`` / ``Psi+``
  built from the cell vocabulary under the ``psi_min`` / ``psi_max``
  cardinality constraints);
* spatial diversity to a fixed photo — Equations 15/16 (min/max point-box
  distance over ``maxD(s)``);
* textual diversity to a fixed photo — Equations 17/18 (closed forms of
  the Jaccard bounds).

The relevance bounds do not depend on the already-selected photos, so
:class:`CellBoundsContext` computes them once per query and reuses them
across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.describe.profile import StreetProfile
from repro.geometry.distance import point_bbox_maxdist, point_bbox_mindist
from repro.index.photo_grid import PhotoCell, PhotoGridIndex


@dataclass(frozen=True, slots=True)
class RelevanceBounds:
    """Selected-independent relevance bounds of one cell."""

    spatial_lo: float
    spatial_hi: float
    textual_lo: float
    textual_hi: float


class CellBoundsContext:
    """Bound evaluator for one (profile, index) pair."""

    def __init__(self, profile: StreetProfile, index: PhotoGridIndex) -> None:
        self.profile = profile
        self.index = index
        self._rel_cache: dict[tuple[int, int], RelevanceBounds] = {}
        self._bbox_cache: dict[tuple[int, int], object] = {}

    def _cell_bbox(self, coord: tuple[int, int]):
        box = self._bbox_cache.get(coord)
        if box is None:
            box = self.index.cell_bbox(coord)
            self._bbox_cache[coord] = box
        return box

    # -- relevance (Equations 11-14) ---------------------------------------

    def relevance_bounds(self, cell: PhotoCell) -> RelevanceBounds:
        cached = self._rel_cache.get(cell.coord)
        if cached is not None:
            return cached
        bounds = RelevanceBounds(
            spatial_lo=self._spatial_rel_lower(cell),
            spatial_hi=self._spatial_rel_upper(cell),
            textual_lo=self._textual_rel_lower(cell),
            textual_hi=self._textual_rel_upper(cell),
        )
        self._rel_cache[cell.coord] = bounds
        return bounds

    def _spatial_rel_lower(self, cell: PhotoCell) -> float:
        """Equation 11: every photo covers at least its own cell."""
        n = len(self.profile)
        return len(cell) / n if n else 0.0

    def _spatial_rel_upper(self, cell: PhotoCell) -> float:
        """Equation 12: at most everything within two cells.

        Delegated to :meth:`PhotoGridIndex.spatial_reach_count`, which also
        counts boundary photos that floating-point cell assignment can push
        one ring further out than the exact-arithmetic two-cell radius.
        """
        n = len(self.profile)
        if n == 0:
            return 0.0
        return self.index.spatial_reach_count(cell.coord) / n

    def _textual_rel_lower(self, cell: PhotoCell) -> float:
        """Equation 13 via the ``Psi-(c|s)`` construction.

        Choose the ``psi_min`` cheapest keywords: first those outside
        ``Psi_s`` (contributing zero), then — if the cardinality constraint
        forces it — the lowest-frequency keywords of ``c.Psi n Psi_s``.
        """
        phi = self.profile.phi
        if phi.norm1 == 0 or cell.psi_min == 0:
            return 0.0
        outside = sum(1 for kw in cell.keywords if kw not in phi)
        needed = cell.psi_min - outside
        if needed <= 0:
            return 0.0
        matching = sorted(phi[kw] for kw in cell.keywords if kw in phi)
        return sum(matching[:needed]) / phi.norm1

    def _textual_rel_upper(self, cell: PhotoCell) -> float:
        """Equation 14 via the ``Psi+(c|s)`` construction.

        Choose up to ``psi_max`` keywords of ``c.Psi n Psi_s`` with the
        highest frequencies (padding with outside keywords adds zero).
        """
        phi = self.profile.phi
        if phi.norm1 == 0:
            return 0.0
        matching = sorted((phi[kw] for kw in cell.keywords if kw in phi),
                          reverse=True)
        return sum(matching[:cell.psi_max]) / phi.norm1

    # -- diversity to a fixed photo (Equations 15-18) -------------------------

    def spatial_div_bounds(self, cell: PhotoCell, pos: int) -> tuple[float, float]:
        """Equations 15/16: min/max cell distance over ``maxD(s)``."""
        photos = self.profile.photos
        box = self._cell_bbox(cell.coord)
        px = float(photos.xs[pos])
        py = float(photos.ys[pos])
        return (point_bbox_mindist(px, py, box) / self.profile.max_d,
                point_bbox_maxdist(px, py, box) / self.profile.max_d)

    def textual_div_bounds(self, cell: PhotoCell, pos: int) -> tuple[float, float]:
        """Equations 17/18 with guards for empty tag sets."""
        tags = self.profile.keyword_sets[pos]
        n_r = len(tags)
        inter = len(cell.keywords & tags)
        diff = len(cell.keywords) - inter

        # Lower bound (Equation 17): maximise overlap with Psi+(c|r).
        if inter < cell.psi_min:
            denom = n_r + cell.psi_min - inter
            lower = 1.0 - inter / denom if denom else 0.0
        else:
            overlap = min(inter, cell.psi_max)
            lower = 1.0 - overlap / n_r if n_r else (0.0 if cell.psi_min == 0
                                                     else 1.0)

        # Upper bound (Equation 18): minimise overlap with Psi-(c|r).
        if diff >= cell.psi_min:
            upper = 1.0
        else:
            denom = n_r + diff
            upper = 1.0 - (cell.psi_min - diff) / denom if denom else 0.0
        return lower, upper

    # -- combined mmr bounds -------------------------------------------------

    def mmr_bounds(
        self,
        cell: PhotoCell,
        selected: list[int],
        lam: float,
        w: float,
        k: int,
    ) -> tuple[float, float]:
        """Lower/upper bounds on ``mmr`` (Equation 10) for any photo in ``c``.

        Combines the relevance bounds with, for each already-selected
        photo, the diversity bounds — all weighted exactly as the exact
        :func:`~repro.core.describe.measures.mmr_value` weights them.
        """
        rel = self.relevance_bounds(cell)
        rel_lo = w * rel.spatial_lo + (1.0 - w) * rel.textual_lo
        rel_hi = w * rel.spatial_hi + (1.0 - w) * rel.textual_hi
        lo = (1.0 - lam) * rel_lo
        hi = (1.0 - lam) * rel_hi
        if selected and k > 1:
            div_lo = 0.0
            div_hi = 0.0
            for pos in selected:
                s_lo, s_hi = self.spatial_div_bounds(cell, pos)
                t_lo, t_hi = self.textual_div_bounds(cell, pos)
                div_lo += w * s_lo + (1.0 - w) * t_lo
                div_hi += w * s_hi + (1.0 - w) * t_hi
            lo += lam / (k - 1) * div_lo
            hi += lam / (k - 1) * div_hi
        return lo, hi


#: Paper-facing alias: Section 4.2.2 calls this component the bounds
#: computer.  The runtime contracts and tests patch/reference it under
#: this name.
BoundsComputer = CellBoundsContext
