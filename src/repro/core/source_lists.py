"""The three ranked source lists of the SOI algorithm (Section 3.2.2).

* **SL1**: grid cells sorted decreasingly on the (upper bound of the)
  number of relevant POIs they contain;
* **SL2**: segments sorted decreasingly on ``|C_eps(l)|``, the number of
  cells within distance ``eps``;
* **SL3**: segments sorted increasingly on length.

Each list supports ``pop`` (retrieve the next entry to *access*) and
``top`` (peek at the weight used in the unseen upper bound ``UB``).  Both
operations lazily skip entries that no longer qualify — popped cells, and
segments that have already been seen/finalised — which never loosens the
bound: skipping a *seen* segment in ``top`` only makes the maximum over the
remaining (unseen) segments smaller or equal.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.index.grid import CellCoord


class CellSourceList:
    """SL1: ``(cell, relevant-count-upper-bound)`` entries, count-descending."""

    def __init__(self, entries: Sequence[tuple[CellCoord, int]],
                 presorted: bool = False) -> None:
        # Deterministic order: count desc, then cell coordinates.  A
        # session that already holds the sorted entries (the order depends
        # only on the keyword signature) passes ``presorted=True`` so warm
        # queries skip the O(n log n) re-sort; the list never mutates the
        # sequence, so a shared tuple is safe.
        if presorted:
            self._entries = entries
        else:
            self._entries = sorted(entries, key=lambda e: (-e[1], e[0]))
        self._next = 0

    def top(self) -> int:
        """Count of the next un-popped cell; 0 when exhausted."""
        if self._next >= len(self._entries):
            return 0
        return self._entries[self._next][1]

    def pop(self) -> CellCoord | None:
        """The next cell to access, or ``None`` when exhausted."""
        if self._next >= len(self._entries):
            return None
        cell, _count = self._entries[self._next]
        self._next += 1
        return cell

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._entries)

    def __len__(self) -> int:
        return len(self._entries) - self._next


class SegmentSourceList:
    """SL2 or SL3: segment ids with a weight, in a fixed total order.

    ``pop`` skips segments that are already *final* (their exact interest
    is known, so accessing them again is useless); ``top`` skips segments
    that are already *seen* (the ``UB`` formula bounds unseen segments
    only).  The two predicates are supplied by the algorithm so both SL2
    and SL3 share one implementation.
    """

    def __init__(
        self,
        entries: Sequence[tuple[int, float]],
        descending: bool,
        is_final: Callable[[int], bool],
        is_seen: Callable[[int], bool],
        presorted: bool = False,
    ) -> None:
        if presorted:
            self._entries = entries
        else:
            sign = -1.0 if descending else 1.0
            self._entries = sorted(entries,
                                   key=lambda e: (sign * e[1], e[0]))
        self._is_final = is_final
        self._is_seen = is_seen
        self._pop_next = 0
        self._top_next = 0

    def top(self) -> float | None:
        """Weight of the best-ranked *unseen* segment; ``None`` if none left.

        Seen-ness is monotone, so the scan pointer never moves backwards
        and the total cost over a query is linear.
        """
        while self._top_next < len(self._entries):
            segment_id, weight = self._entries[self._top_next]
            if not self._is_seen(segment_id):
                return weight
            self._top_next += 1
        return None

    def pop(self) -> int | None:
        """The next non-final segment to access, or ``None`` when exhausted."""
        while self._pop_next < len(self._entries):
            segment_id, _weight = self._entries[self._pop_next]
            self._pop_next += 1
            if not self._is_final(segment_id):
                return segment_id
        return None

    @property
    def exhausted(self) -> bool:
        """Whether ``pop`` would return ``None``."""
        while self._pop_next < len(self._entries):
            if not self._is_final(self._entries[self._pop_next][0]):
                return False
            self._pop_next += 1
        return True
