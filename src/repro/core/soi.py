"""The SOI algorithm (Algorithm 1) and its public entry point, SOIEngine.

The algorithm processes a k-SOI query top-k style: it pulls promising
street segments from three ranked source lists (see
:mod:`repro.core.source_lists`), maintains a *seen* lower bound ``LBk`` on
the interest of the k best streets so far and an *unseen* upper bound
``UB`` on the interest of any untouched segment, and stops pulling as soon
as ``LBk >= UB`` (Lemma 1).  A refinement phase then finalises the exact
interest of the seen segments — optionally pruning those whose optimistic
interest cannot reach the k-th best street.

Correctness notes (also summarised in DESIGN.md):

* Popping a cell from SL1 touches every segment of ``L_eps(c)``, so any
  still-unseen segment has only un-popped cells in its ``eps``-
  neighbourhood; hence ``top(SL1)`` bounds the relevant count of each of
  its cells, ``top(SL2)`` bounds how many such cells it has, and
  ``top(SL3)`` bounds its length from below.
* For weighted-POI queries every count bound is multiplied by the maximum
  POI weight, keeping ``UB`` and the refinement bounds sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import numpy as np

from repro.analysis import contracts
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.obs.slowlog import SLOWLOG
from repro.obs.tracer import perf_now, trace_span
from repro.core.interest import (
    RelevantCellCache,
    _segment_mass_in_cell_uncached,
    buffer_area,
    segment_interest,
    segment_mass_batched,
    segment_mass_batched_slots,
    segment_mass_in_cell,
    validate_query,
)
from repro.core.results import SOIResult, SOIStats
from repro.core.source_lists import CellSourceList, SegmentSourceList
from repro.core.state_store import (
    MassSlots,
    SegmentStateStore,
    SignatureBindings,
    StoreLayout,
    TopKThreshold,
)
from repro.data.poi import POISet
from repro.geometry.bbox import BBox
from repro.index.cell_maps import SegmentCellMaps
from repro.index.grid import CellCoord
from repro.index.poi_grid import POIGridIndex
from repro.network.model import RoadNetwork, Segment

DEFAULT_EPS = 0.0005
"""The distance threshold used throughout the paper's experiments
(0.0005 degrees, about 55 m)."""


class AccessStrategy(Enum):
    """How the filtering phase cycles through the source lists.

    The paper notes that correctness "is not affected by the access
    strategy" and that in practice it alternates between SL1 and SL3;
    the pseudocode itself round-robins SL1 -> SL2 -> SL3.  All variants
    are provided for the ablation benchmark.
    """

    ALTERNATE = "alternate"          # SL1 <-> SL3 (the paper's practice)
    ROUND_ROBIN = "round_robin"      # SL1 -> SL2 -> SL3 (the pseudocode)
    CELLS_FIRST = "cells_first"      # drain SL1, then segments
    SEGMENTS_FIRST = "segments_first"  # drain SL3, then cells

    @property
    def cycle(self) -> tuple[str, ...]:
        return {
            AccessStrategy.ALTERNATE: ("SL1", "SL3"),
            AccessStrategy.ROUND_ROBIN: ("SL1", "SL2", "SL3"),
            AccessStrategy.CELLS_FIRST: ("SL1",),
            AccessStrategy.SEGMENTS_FIRST: ("SL3",),
        }[self]


@dataclass(slots=True)
class _SegmentState:
    """Book-keeping for a *seen* segment (the paper's partial/final states).

    ``to_visit`` is a dict used as an *ordered* set: iteration follows the
    canonical ``cells_of_segment`` order, which keeps the scalar path's
    float accumulation order identical to the store path's CSR order (and
    hence the sums bit-identical).
    """

    segment: Segment
    to_visit: dict[CellCoord, None]
    buffer_area: float = 0.0
    mass: float = 0.0
    final: bool = False


class SOIEngine:
    """Indexes a road network and a POI set; answers k-SOI queries.

    Builds the offline structures of Section 3.2.1 once (grid + local and
    global inverted indexes over POIs, cell/segment maps); the query-time
    ``eps`` augmentation is cached inside :class:`SegmentCellMaps`.

    Parameters
    ----------
    network, pois:
        The data to index.
    cell_size:
        Grid cell side; defaults to ``2 * DEFAULT_EPS``.
    extent_margin:
        How far beyond the joint network/POI MBR the grid extends, so that
        ``eps``-buffers near the border stay inside the grid.  Defaults to
        ``4 * cell_size``.
    vectorized_build:
        Build the cold-path index structures (POI bucketing, segment/cell
        maps) through the batched NumPy kernels (the default).  The scalar
        construction path is kept behind ``False`` for ablation; both
        produce bit-identical structures.
    """

    def __init__(
        self,
        network: RoadNetwork,
        pois: POISet,
        cell_size: float | None = None,
        extent_margin: float | None = None,
        session_pool_size: int | None = None,
        vectorized_build: bool = True,
    ) -> None:
        from repro.perf.session import DEFAULT_MAX_SESSIONS, QuerySessionPool

        self.network = network
        self.pois = pois
        self._cell_size = cell_size
        self._extent_margin = extent_margin
        self.vectorized_build = vectorized_build
        self.index_generation = 0
        self._build_indexes()
        self.sessions = QuerySessionPool(
            self.poi_index,
            maxsize=(DEFAULT_MAX_SESSIONS if session_pool_size is None
                     else session_pool_size))

    @classmethod
    def from_prebuilt(
        cls,
        network: RoadNetwork,
        pois: POISet,
        poi_index: POIGridIndex,
        cell_maps: SegmentCellMaps,
        extent: BBox,
        sl3_entries: tuple[tuple[int, float], ...],
        index_generation: int = 0,
        session_pool_size: int | None = None,
    ) -> "SOIEngine":
        """An engine over *already built* index structures.

        The constructor path derives every structure from the raw data;
        this one wires externally supplied ones instead — it is how
        :func:`repro.serve.views.attach_engine` rebuilds a serving view
        over a shared-memory :class:`~repro.serve.snapshot.IndexSnapshot`
        without re-running index construction.  The caller is responsible
        for the structures being mutually consistent (same grid, same
        data); everything derived here (``_max_weight``, the SL2 cache
        seed) is recomputed from them exactly as ``__init__`` would.
        """
        from repro.perf.session import DEFAULT_MAX_SESSIONS, QuerySessionPool

        engine = cls.__new__(cls)
        engine.network = network
        engine.pois = pois
        engine._cell_size = poi_index.grid.cell_size
        engine._extent_margin = None
        engine.vectorized_build = getattr(cell_maps, "vectorized", True)
        engine.index_generation = index_generation
        engine.extent = extent
        engine.poi_index = poi_index
        engine.cell_maps = cell_maps
        engine._max_weight = (float(pois.weights.max()) if len(pois)
                              else 0.0)
        engine._sl3_entries = sl3_entries
        engine._sl2_cache = {}
        engine._store_layouts = {}
        engine.sessions = QuerySessionPool(
            poi_index,
            maxsize=(DEFAULT_MAX_SESSIONS if session_pool_size is None
                     else session_pool_size))
        return engine

    @trace_span("index.build")
    def _build_indexes(self) -> None:
        cell_size = self._cell_size
        extent_margin = self._extent_margin
        if cell_size is None:
            cell_size = 2.0 * DEFAULT_EPS
        if extent_margin is None:
            extent_margin = 4.0 * cell_size
        network, pois = self.network, self.pois
        extent = network.bbox()
        if len(pois):
            extent = extent.union(
                BBox(float(pois.xs.min()), float(pois.ys.min()),
                     float(pois.xs.max()), float(pois.ys.max())))
        self.extent = extent.expanded(extent_margin)
        with trace_span("index.poi_grid"):
            self.poi_index = POIGridIndex(
                pois, self.extent, cell_size,
                vectorized=self.vectorized_build)
        with trace_span("index.cell_maps"):
            self.cell_maps = SegmentCellMaps(
                network, self.poi_index.grid,
                vectorized=self.vectorized_build)
        self._max_weight = float(pois.weights.max()) if len(pois) else 0.0
        # SL3 order (length ascending) is query-independent; SL2 order
        # depends only on eps, so it is cached per eps value.
        with trace_span("index.source_list_orders"):
            self._sl3_entries: tuple[tuple[int, float], ...] = tuple(sorted(
                ((seg.id, seg.length) for seg in network.iter_segments()),
                key=lambda e: (e[1], e[0])))
        self._sl2_cache: dict[float, tuple[tuple[tuple[int, float], ...],
                                           float]] = {}
        self._store_layouts: dict[float, StoreLayout] = {}

    def rebuild_indexes(
        self,
        cell_size: float | None = None,
        extent_margin: float | None = None,
    ) -> None:
        """Rebuild the offline structures (e.g. after re-tuning the grid).

        Passing ``cell_size``/``extent_margin`` overrides the construction
        parameters; omitted values keep the current ones.  Every retained
        :class:`~repro.perf.session.QuerySession` is invalidated — their
        cached materialisations point into the old index — and
        ``index_generation`` is bumped so that exported
        :class:`~repro.serve.snapshot.IndexSnapshot` blocks (which record
        the generation they captured) are recognised as stale by the
        serving layer.
        """
        if cell_size is not None:
            self._cell_size = cell_size
        if extent_margin is not None:
            self._extent_margin = extent_margin
        self._build_indexes()
        self.index_generation += 1
        self.sessions.invalidate(self.poi_index)

    def invalidate_sessions(self) -> None:
        """Drop all cached query sessions (alias for pool invalidation)."""
        self.sessions.invalidate()

    def session_for(self, keywords: Iterable[str]):
        """The :class:`~repro.perf.session.QuerySession` for a keyword set."""
        from repro.data.keywords import normalize_keywords

        return self.sessions.get(normalize_keywords(keywords))

    def _sl2_entries(self, eps: float) -> tuple[
            tuple[tuple[int, float], ...], float]:
        """Sorted SL2 entries and the adaptive-SL2 threshold, per eps."""
        cached = self._sl2_cache.get(eps)
        if cached is None:
            counts_col = getattr(
                self.cell_maps, "augmented_cell_counts_column", None)
            if counts_col is not None:
                # Column path: one lexsort over the cached per-eps count
                # column instead of materialising the legacy dict.  The
                # (-count, sid) sort key and the low-median threshold
                # match the dict path value for value.
                col = counts_col(eps)
                sids = self.cell_maps.segment_ids_column
                order = np.lexsort((sids, -col))
                entries = tuple(
                    (int(sids[pos]), float(col[pos]))
                    for pos in order.tolist())
                n = int(col.shape[0])
                median = int(np.sort(col)[n // 2]) if n else 0.0
            else:
                cell_counts = self.cell_maps.augmented_cell_counts(eps)
                entries = tuple(sorted(
                    ((sid, float(count))
                     for sid, count in cell_counts.items()),
                    key=lambda e: (-e[1], e[0])))
                counts = sorted(cell_counts.values())
                median = counts[len(counts) // 2] if counts else 0.0
            cached = (entries, 1.5 * median)
            self._sl2_cache[eps] = cached
        return cached

    def store_layout(self, eps: float) -> StoreLayout:
        """The dense/CSR :class:`StoreLayout` for one ``eps`` (cached).

        Query-independent like the SL2/SL3 orders; rebuilt lazily after
        :meth:`rebuild_indexes` (which resets the cache).
        """
        layout = self._store_layouts.get(eps)
        if layout is None:
            with trace_span("index.store_layout", eps=eps):
                layout = StoreLayout(self.network, self.cell_maps, eps)
            self._store_layouts[eps] = layout
        return layout

    # -- public API ---------------------------------------------------------

    def top_k(
        self,
        keywords: Iterable[str],
        k: int,
        eps: float = DEFAULT_EPS,
        strategy: AccessStrategy = AccessStrategy.ALTERNATE,
        prune_refinement: bool = True,
        weighted: bool = False,
        use_session: bool = True,
        use_store: bool = True,
        session=None,
    ) -> list[SOIResult]:
        """Answer a k-SOI query (Problem 1).

        Returns up to ``k`` streets ordered by decreasing interest (ties
        broken by street id); streets with zero interest are never
        reported.  Set ``weighted=True`` to sum POI weights instead of
        counting POIs (the Definition 1 adaptation).

        ``use_session=True`` (the default) serves the query through the
        engine's :class:`~repro.perf.session.QuerySessionPool`, so sweeps
        over ``k``/``eps``/strategy with the same keywords reuse per-cell
        materialisations; cached values are bitwise what a fresh run would
        compute, so results are identical either way.  A caller that
        already resolved the session (batched serving) may pass it via
        ``session`` — it must belong to this engine and to the same
        normalised keyword set.

        ``use_store=True`` (the default) drives the filter phase through
        the array-native :class:`~repro.core.state_store.SegmentStateStore`
        columns; ``use_store=False`` keeps the per-object scalar path (the
        ablation/bit-identity reference).  Both return identical results.
        """
        results, _stats = self.top_k_with_stats(
            keywords, k, eps, strategy=strategy,
            prune_refinement=prune_refinement, weighted=weighted,
            use_session=use_session, use_store=use_store, session=session)
        return results

    def top_k_with_stats(
        self,
        keywords: Iterable[str],
        k: int,
        eps: float = DEFAULT_EPS,
        strategy: AccessStrategy = AccessStrategy.ALTERNATE,
        prune_refinement: bool = True,
        weighted: bool = False,
        use_session: bool = True,
        use_store: bool = True,
        session=None,
    ) -> tuple[list[SOIResult], SOIStats]:
        """Like :meth:`top_k` but also returns work/timing counters."""
        query = validate_query(keywords, k, eps)
        if session is None and use_session:
            session = self.sessions.get(query)
        run = _SOIRun(self, query, k, eps,
                      strategy, prune_refinement, weighted, session=session,
                      use_store=use_store)
        return run.execute()

    def segment_exact_interest(
        self,
        segment_id: int,
        keywords: Iterable[str],
        eps: float = DEFAULT_EPS,
        weighted: bool = False,
        use_session: bool = True,
    ) -> float:
        """Exact Definition 2 interest of one segment (indexed path)."""
        from repro.core.interest import segment_mass

        query = validate_query(keywords, 1, eps)
        session = self.sessions.get(query) if use_session else None
        segment = self.network.segment(segment_id)
        mass = segment_mass(
            segment, self.poi_index, self.cell_maps, query, eps, weighted,
            cache=session.cache if session is not None else None,
            mass_cache=(session.mass_cache(eps, weighted)
                        if session is not None else None))
        return segment_interest(mass, segment.length, eps)


class _SOIRun:
    """One execution of Algorithm 1 over a prepared :class:`SOIEngine`."""

    def __init__(
        self,
        engine: SOIEngine,
        query: frozenset[str],
        k: int,
        eps: float,
        strategy: AccessStrategy,
        prune_refinement: bool,
        weighted: bool,
        session=None,
        use_store: bool = False,
    ) -> None:
        self.engine = engine
        self.query = query
        self.k = k
        self.eps = eps
        self.strategy = strategy
        self.prune_refinement = prune_refinement
        self.weighted = weighted
        self.stats = SOIStats()
        self.session = session
        self.use_store = use_store
        if session is not None:
            # Cross-query reuse: the session owns the relevant-cell cache
            # and the (segment, cell) mass memo for this (eps, weighted).
            self.cache = session.cache
            self._mass_cache = (None if use_store
                                else session.mass_cache(eps, weighted))
            self.stats.session_reused = session.queries_served > 0
            session.queries_served += 1
        else:
            self.cache = RelevantCellCache(engine.poi_index, query)
            self._mass_cache = None
        self._states: dict[int, _SegmentState] = {}
        # Store-path state (bound by _store_setup when use_store is on).
        self.store: SegmentStateStore | None = None
        self._layout: StoreLayout | None = None
        self._bind: SignatureBindings | None = None
        self._mass_slots: MassSlots | None = None
        # Whether memoised masses outlive this run (session-owned slots);
        # mirrors the mass_cache-is-None counter behaviour of the dict memo.
        self._count_memo = session is not None
        self._lbk_topk = TopKThreshold(k)
        self._lbk_dirty = True
        self._lbk = 0.0
        # Weighted queries bound per-cell relevant mass by count * max weight.
        self._weight_cap = engine._max_weight if weighted else 1.0
        # Contract monitor (Lemma 1 / Definition 1); None on the fast path.
        self._monitor = (contracts.SOIContractMonitor()
                         if contracts.ENABLED else None)

    # -- driver -----------------------------------------------------------

    def execute(self) -> tuple[list[SOIResult], SOIStats]:
        mark = obs_tracer.TRACER.mark() if obs_tracer.ENABLED else 0
        with trace_span("soi.query", k=self.k, eps=self.eps,
                        strategy=self.strategy.value, weighted=self.weighted,
                        keywords=",".join(sorted(self.query))):
            hits0, misses0 = self.cache.hits, self.cache.misses
            t0 = perf_now()
            with trace_span("soi.build_source_lists"):
                self._build_source_lists()
            t1 = perf_now()
            with trace_span("soi.filter"):
                self._filter()
            t2 = perf_now()
            kernels_before_refine = self.stats.kernel_calls
            with trace_span("soi.refine"):
                results = (self._refine_store() if self.use_store
                           else self._refine())
            t3 = perf_now()
        if self.store is not None and self.session is not None:
            # Recycle the scratch columns; on an exception the store is
            # simply dropped, so a poisoned run can never be reused.
            self.session.release_state_store(self.store)
        self.stats.refine_kernel_calls = (
            self.stats.kernel_calls - kernels_before_refine)
        self.stats.relevant_cache_hits = self.cache.hits - hits0
        self.stats.relevant_cache_misses = self.cache.misses - misses0
        self.stats.phase_seconds = {
            "build": t1 - t0, "filter": t2 - t1, "refine": t3 - t2}
        obs_metrics.record_soi_query(self.stats)
        if SLOWLOG.enabled:
            SLOWLOG.maybe_record(
                "soi",
                {"keywords": sorted(self.query), "k": self.k, "eps": self.eps,
                 "strategy": self.strategy.value, "weighted": self.weighted},
                t3 - t0, self.stats.counters(),
                obs_tracer.TRACER.spans_since(mark)
                if obs_tracer.ENABLED else ())
        if self._monitor is not None:
            self._monitor.check_results(self.engine, self.query, self.eps,
                                        self.weighted, self.k, results)
        return results, self.stats

    # -- phase 1: source lists --------------------------------------------

    def _build_source_lists(self) -> None:
        # Per-cell |P_Psi(c)| upper bounds; cells absent from this map hold
        # no relevant POI, so visiting them contributes nothing to mass.
        if self.session is not None:
            # Keyword-only aggregate: computed once per signature, shared
            # by every (k, eps, strategy) configuration of the sweep.  The
            # SL1 order is likewise signature-only, so the session serves
            # it presorted and warm queries skip the re-sort.
            self._cell_ub = self.session.cell_upper_bounds()
            self.sl1 = CellSourceList(self.session.sl1_entries(),
                                      presorted=True)
        else:
            poi_index = self.engine.poi_index
            self._cell_ub: dict[CellCoord, int] = {}
            sl1_entries = []
            for cell in poi_index.candidate_cells(self.query):
                ub = poi_index.relevant_count_upper_bound(cell, self.query)
                if ub > 0:
                    self._cell_ub[cell] = ub
                    sl1_entries.append((cell, ub))
            self.sl1 = CellSourceList(sl1_entries)

        # Threshold for the paper's adaptive SL2 access: "we only access
        # segments via the second source SL2 in the case that a few
        # segments with a large number of neighboring cells exist".  A
        # segment whose |C_eps| is far above the median is such an outlier:
        # it keeps top(SL2) — and hence UB — inflated, so it is retrieved
        # directly instead of waiting for a cell access to reach it.
        sl2_entries, self._sl2_threshold = self.engine._sl2_entries(self.eps)
        if self.use_store:
            self._store_setup()
            is_final = self._store_is_final
            is_seen = self._store_is_seen
        else:
            is_final = self._is_final
            is_seen = self._is_seen
        self.sl2 = SegmentSourceList(
            sl2_entries, descending=True,
            is_final=is_final, is_seen=is_seen, presorted=True)
        self.sl3 = SegmentSourceList(
            self.engine._sl3_entries, descending=False,
            is_final=is_final, is_seen=is_seen, presorted=True)
        self._lists = {"SL1": self.sl1, "SL2": self.sl2, "SL3": self.sl3}

    def _is_seen(self, segment_id: int) -> bool:
        return segment_id in self._states

    def _is_final(self, segment_id: int) -> bool:
        state = self._states.get(segment_id)
        return state is not None and state.final

    def _store_setup(self) -> None:
        """Bind the layout, signature bindings, mass slots and scratch.

        With a session every piece is pooled: the bindings and slot memo
        are computed once per signature and the scratch store is recycled
        run-to-run, so a warm query allocates no columns at all.
        """
        layout = self.engine.store_layout(self.eps)
        self._layout = layout
        session = self.session
        if session is not None:
            self._bind = session.store_bindings(layout)
            self._mass_slots = session.store_mass_slots(layout, self.weighted)
            store, reused = session.acquire_state_store(layout)
            self.stats.store_reused = reused
        else:
            self._bind = SignatureBindings(layout, self._cell_ub)
            self._mass_slots = MassSlots(layout.num_slots)
            store = SegmentStateStore(layout)
        store.begin_run()
        self.store = store

    def _store_is_seen(self, segment_id: int) -> bool:
        return segment_id in self.store.seen_ids

    def _store_is_final(self, segment_id: int) -> bool:
        return segment_id in self.store.final_ids

    # -- phase 2: filtering --------------------------------------------------

    _CHECK_EVERY = 4
    """Termination-test frequency.  Testing LBk >= UB on every access costs
    more than the few extra accesses a delayed test allows, and a delayed
    test is conservative (it can only keep filtering longer)."""

    def _filter(self) -> None:
        cycle = self.strategy.cycle
        ncycle = len(cycle)
        position = 0
        stats = self.stats
        monitor = self._monitor
        check_every = self._CHECK_EVERY
        # Hot loop: the attribute chains below are loop-invariant, so they
        # are hoisted into locals (the warm-session profile is dominated by
        # this loop's per-access bookkeeping, not by mass kernels).
        # Tracing likewise binds once: the untraced access method when off,
        # so the disabled path pays nothing per access.
        tracing = obs_tracer.ENABLED
        plain_access = self._access_store if self.use_store else self._access
        if tracing:
            def access(name: str, _plain=plain_access) -> bool:
                with trace_span("soi.pull", source=name):
                    return _plain(name)
        else:
            access = plain_access
        alternate = (self.strategy is AccessStrategy.ALTERNATE
                     and self._sl2_threshold > 0)
        sl2_top = self.sl2.top
        sl2_threshold = self._sl2_threshold
        while True:
            if stats.iterations % check_every == 0:
                stats.termination_checks += 1
                if tracing:
                    with trace_span("soi.termination_check"):
                        lbk = self._compute_lbk()
                        ub = self._compute_ub()
                else:
                    lbk = self._compute_lbk()
                    ub = self._compute_ub()
                if monitor is not None:
                    monitor.observe_threshold(lbk, ub)
                if lbk >= ub:
                    break
            accessed = False
            if alternate:
                top2 = sl2_top()
                if top2 is not None and top2 > sl2_threshold:
                    accessed = access("SL2")
            for offset in range(ncycle):
                if accessed:
                    break
                name = cycle[(position + offset) % ncycle]
                if access(name):
                    position = (position + offset + 1) % ncycle
                    accessed = True
            if not accessed:
                # Preferred lists drained; fall back to any remaining list.
                for name in ("SL1", "SL2", "SL3"):
                    if access(name):
                        accessed = True
                        break
            if not accessed:
                break
            stats.iterations += 1

    def _access(self, name: str) -> bool:
        """Perform one access on the named list; False when exhausted."""
        if name == "SL1":
            cell = self.sl1.pop()
            if cell is None:
                return False
            self.stats.cells_popped += 1
            states = self._states
            state_of = self._state_of
            update = self._update_interest
            for sid in self.engine.cell_maps.segments_of_cell(cell, self.eps):
                state = states.get(sid)
                update(state if state is not None else state_of(sid), cell)
            return True
        source: SegmentSourceList = self._lists[name]
        segment_id = source.pop()
        if segment_id is None:
            return False
        self.stats.segments_popped += 1
        self._finalize(self._state_of(segment_id))
        return True

    def _state_of(self, segment_id: int) -> _SegmentState:
        state = self._states.get(segment_id)
        if state is None:
            segment = self.engine.network.segment(segment_id)
            cells = self.engine.cell_maps.cells_of_segment(segment_id, self.eps)
            state = _SegmentState(
                segment=segment, to_visit=dict.fromkeys(cells),
                buffer_area=buffer_area(segment.length, self.eps))
            self._states[segment_id] = state
            self.stats.segments_seen += 1
        return state

    def _update_interest(self, state: _SegmentState, cell: CellCoord) -> None:
        """The paper's ``UpdateInterest(l, c, Psi)`` procedure.

        Cells known (from the global inverted index) to hold no relevant
        POI are ticked off ``toVisit`` without touching the POI data.
        """
        to_visit = state.to_visit
        if cell not in to_visit:
            return
        del to_visit[cell]
        stats = self.stats
        stats.cell_visits += 1
        if cell in self._cell_ub:
            # Memo hits are the common case on a warm session; serving
            # them inline skips a function call per (segment, cell) pair.
            memo = self._mass_cache
            cached = (memo.get((state.segment.id, cell))
                      if memo is not None else None)
            if cached is not None:
                stats.mass_cache_hits += 1
                state.mass += cached
            else:
                state.mass += segment_mass_in_cell(
                    state.segment, cell, self.cache, self.eps, self.weighted,
                    stats=stats, mass_cache=memo)
            self._record_lower_bound(state)
        if not to_visit and not state.final:
            state.final = True
            stats.segments_finalized_in_filter += 1

    def _finalize(self, state: _SegmentState) -> None:
        """Visit every remaining cell of a segment with one batched kernel.

        Equivalent to calling :meth:`_update_interest` per remaining cell:
        the batched kernel accumulates per-cell contributions in the same
        visit order (bit-identical floats), and recording the lower bound
        once with the final mass subsumes the intermediate records (the
        street map keeps the maximum, and mass only grows).
        """
        to_visit = tuple(state.to_visit)
        if to_visit:
            self.stats.cell_visits += len(to_visit)
            relevant = [cell for cell in to_visit if cell in self._cell_ub]
            if relevant:
                state.mass += segment_mass_batched(
                    state.segment, relevant, self.cache, self.eps,
                    self.weighted, stats=self.stats,
                    mass_cache=self._mass_cache)
            state.to_visit.clear()
        if not state.final:
            state.final = True
            self.stats.segments_finalized_in_filter += 1
        self._record_lower_bound(state)

    def _record_lower_bound(self, state: _SegmentState) -> None:
        if state.mass <= 0.0:
            # int-(l) = 0 can never contribute to LBk (zero-interest
            # streets are not reported); skipping keeps the street map
            # small and LBk a valid lower bound.
            return
        # Definition 2 with the state's precomputed denominator — the same
        # buffer_area(length, eps) value segment_interest would derive, so
        # the quotient is bitwise identical.
        if contracts.ENABLED:
            contracts.check_definition2(
                state.mass, state.segment.length, self.eps)
        value = state.mass / state.buffer_area
        if self._lbk_topk.update(state.segment.street_id, value):
            self.stats.lbk_heap_updates += 1
            self._lbk_dirty = True

    def _compute_lbk(self) -> float:
        """Current LBk; recomputed lazily and at most every few iterations.

        Using a slightly stale (hence smaller) LBk in the termination test
        is conservative — it can only delay termination, never cause a
        wrong result — so even the O(log k) threshold read is throttled,
        preserving the exact refresh cadence of the old full rescan.
        """
        if not self._lbk_dirty or self.stats.iterations % 8 != 0:
            return self._lbk
        current = self._lbk_topk.current()
        if current is not None:
            self._lbk = current
        self._lbk_dirty = False
        return self._lbk

    def _compute_ub(self) -> float:
        top_cells = self.sl1.top()
        top_count = self.sl2.top()
        top_length = self.sl3.top()
        if top_count is None or top_length is None:
            return 0.0  # no unseen segments remain
        mass_ub = top_cells * top_count * self._weight_cap
        return mass_ub / buffer_area(top_length, self.eps)

    # -- phase 3: refinement -------------------------------------------------

    def _refine(self) -> list[SOIResult]:
        # street_id -> (exact interest, best segment id).  The incremental
        # threshold tracks the k-th best exact value so the pruning test
        # needs no nlargest rescan per candidate.
        exact: dict[int, tuple[float, int]] = {}
        exact_topk = TopKThreshold(self.k)

        def record_exact(state: _SegmentState) -> None:
            if contracts.ENABLED:
                contracts.check_definition2(
                    state.mass, state.segment.length, self.eps)
            value = state.mass / state.buffer_area
            street_id = state.segment.street_id
            best = exact.get(street_id)
            if best is None or value > best[0]:
                exact[street_id] = (value, state.segment.id)
                exact_topk.update(street_id, value)

        partial: list[tuple[float, int, _SegmentState]] = []
        for state in self._states.values():
            if state.final:
                record_exact(state)
                continue
            remaining_ub = sum(
                self._cell_ub.get(cell, 0)
                for cell in state.to_visit) * self._weight_cap
            if remaining_ub == 0:
                # The unvisited cells hold no relevant POIs: mass is exact.
                state.to_visit.clear()
                state.final = True
                record_exact(state)
                continue
            optimistic = segment_interest(
                state.mass + remaining_ub, state.segment.length, self.eps)
            partial.append((optimistic, state.segment.id, state))

        partial.sort(key=lambda item: (-item[0], item[1]))
        for index, (optimistic, _sid, state) in enumerate(partial):
            if self.prune_refinement:
                kth = exact_topk.current()
                if kth is not None and optimistic < kth:
                    self.stats.refinement_pruned += len(partial) - index
                    break
            self._finalize_exact(state)
            record_exact(state)
            self.stats.refinement_finalized += 1

        ranked = sorted(
            ((value, street_id, seg_id)
             for street_id, (value, seg_id) in exact.items() if value > 0),
            key=lambda item: (-item[0], item[1]))
        network = self.engine.network
        return [
            SOIResult(street_id=street_id,
                      street_name=network.street(street_id).name,
                      interest=value,
                      best_segment_id=seg_id)
            for value, street_id, seg_id in ranked[: self.k]
        ]

    def _finalize_exact(self, state: _SegmentState) -> None:
        to_visit = tuple(state.to_visit)
        self.stats.cell_visits += len(to_visit)
        relevant = [cell for cell in to_visit if cell in self._cell_ub]
        if relevant:
            state.mass += segment_mass_batched(
                state.segment, relevant, self.cache, self.eps, self.weighted,
                stats=self.stats, mass_cache=self._mass_cache)
        state.to_visit.clear()
        state.final = True

    # -- phases 2 and 3, array-native store path -----------------------------
    #
    # Column-for-attribute mirror of _access/_update_interest/_finalize/
    # _refine: every float operation is applied to the same operands in
    # the same order as the scalar path (see state_store module docs), so
    # results, bounds and work counters are identical — only the per-pop
    # bookkeeping is vectorised.

    def _access_store(self, name: str) -> bool:
        """Store-path access on the named list; False when exhausted."""
        if name == "SL1":
            cell = self.sl1.pop()
            if cell is None:
                return False
            self.stats.cells_popped += 1
            self._store_visit_cell(cell)
            return True
        source: SegmentSourceList = self._lists[name]
        segment_id = source.pop()
        if segment_id is None:
            return False
        self.stats.segments_popped += 1
        self._store_finalize(self._layout.dense_index[segment_id])
        return True

    def _store_visit_cell(self, cell: CellCoord) -> None:
        """UpdateInterest over every segment of a popped cell (store path).

        Identical operation sequence to the scalar path — per
        ``(segment, slot)`` pair in ``segments_of_cell`` order: mark
        visited, init-if-fresh, decrement ``to_visit``, add the slot
        mass (memoised or freshly computed), record the street lower
        bound, finalise on zero ``to_visit`` — driven by Python ints
        against the flat columns (cell groups hold only a handful of
        segments, see the state_store module docs).
        """
        layout = self._layout
        group = layout.by_cell.get(cell)
        if group is None:
            return
        seg_list, slot_list = group
        store = self.store
        stats = self.stats
        epoch = store.epoch
        visit_epoch = store.visit_epoch
        seen_epoch = store.seen_epoch
        final_epoch = store.final_epoch
        to_visit = store.to_visit
        mass_col = store.mass
        remaining = store.remaining_ub
        total_ub = self._bind.total_ub_list
        cell_counts = layout.cell_counts_list
        seg_ids = layout.seg_ids_list
        street_list = layout.street_list
        buffer_list = layout.buffer_list
        lengths_list = layout.lengths_list
        mass_slots = self._mass_slots
        slot_known = mass_slots.known
        slot_mass = mass_slots.mass
        active = store.active
        seen_ids = store.seen_ids
        final_ids = store.final_ids
        topk = self._lbk_topk
        cell_ub = self._cell_ub.get(cell, 0)
        relevant = cell_ub > 0
        checking = contracts.ENABLED
        for dense, slot in zip(seg_list, slot_list):
            if visit_epoch[slot] == epoch:
                continue
            visit_epoch[slot] = epoch
            stats.cell_visits += 1
            if seen_epoch[dense] != epoch:
                seen_epoch[dense] = epoch
                mass_col[dense] = 0.0
                remaining[dense] = total_ub[dense]
                to_visit[dense] = cell_counts[dense]
                active.append(dense)
                seen_ids.add(seg_ids[dense])
                stats.segments_seen += 1
            to_visit[dense] -= 1
            if relevant:
                if slot_known[slot]:
                    stats.mass_cache_hits += 1
                    value = slot_mass[slot]
                else:
                    value = _segment_mass_in_cell_uncached(
                        layout.segments[dense], cell, self.cache, self.eps,
                        self.weighted, stats)
                    slot_mass[slot] = value
                    slot_known[slot] = True
                    if self._count_memo:
                        stats.mass_cache_misses += 1
                new_mass = mass_col[dense] + value
                mass_col[dense] = new_mass
                remaining[dense] -= cell_ub
                if new_mass > 0.0:
                    if checking:
                        contracts.check_definition2(
                            new_mass, lengths_list[dense], self.eps)
                    if topk.update(street_list[dense],
                                   new_mass / buffer_list[dense]):
                        stats.lbk_heap_updates += 1
                        self._lbk_dirty = True
            if to_visit[dense] == 0:
                # An unvisited slot implies the segment was not yet final,
                # so this zero crossing is its (single) finalisation.
                final_epoch[dense] = epoch
                final_ids.add(seg_ids[dense])
                stats.segments_finalized_in_filter += 1

    def _store_record_bound(self, dense: int) -> None:
        """Single-segment lower-bound record (the _finalize tail)."""
        store = self.store
        mass = store.mass[dense]
        if mass <= 0.0:
            return
        layout = self._layout
        if contracts.ENABLED:
            contracts.check_definition2(
                mass, layout.lengths_list[dense], self.eps)
        value = mass / layout.buffer_list[dense]
        if self._lbk_topk.update(layout.street_list[dense], value):
            self.stats.lbk_heap_updates += 1
            self._lbk_dirty = True

    def _store_ensure_seen(self, dense: int) -> None:
        store = self.store
        epoch = store.epoch
        if store.seen_epoch[dense] == epoch:
            return
        layout = self._layout
        store.seen_epoch[dense] = epoch
        store.mass[dense] = 0.0
        store.remaining_ub[dense] = self._bind.total_ub_list[dense]
        store.to_visit[dense] = layout.cell_counts_list[dense]
        store.active.append(dense)
        store.seen_ids.add(layout.seg_ids_list[dense])
        self.stats.segments_seen += 1

    def _store_visit_rest(self, dense: int) -> None:
        """Visit every remaining cell of a segment with one batched kernel.

        The unvisited slots come out of the CSR slice in ascending slot
        order — the canonical ``cells_of_segment`` order the scalar path
        now iterates too — so the accumulated mass is bit-identical.
        """
        store = self.store
        layout = self._layout
        epoch = store.epoch
        start = int(layout.slot_offsets[dense])
        stop = int(layout.slot_offsets[dense + 1])
        if stop == start:
            return
        mass_slots = self._mass_slots
        # Mark visited and split the relevant slots into memoised vs fresh
        # in one walk of the segment's slot run.
        visit_epoch = store.visit_epoch
        slot_relevant = self._bind.slot_relevant_list
        slot_known = mass_slots.known
        rel_list: list[int] = []
        count = 0
        all_known = True
        for slot in range(start, stop):
            if visit_epoch[slot] == epoch:
                continue
            visit_epoch[slot] = epoch
            count += 1
            if slot_relevant[slot]:
                rel_list.append(slot)
                if not slot_known[slot]:
                    all_known = False
        if count:
            self.stats.cell_visits += count
        if not rel_list:
            return
        if all_known:
            # Warm fast path: every contribution is memoised; accumulate
            # the slot run in cell order.
            self.stats.mass_cache_hits += len(rel_list)
            slot_mass = mass_slots.mass
            added = 0.0
            for slot in rel_list:
                added += slot_mass[slot]
        else:
            slot_cells = layout.slot_cells
            added = segment_mass_batched_slots(
                layout.segments[dense],
                [slot_cells[slot] for slot in rel_list], rel_list,
                mass_slots.mass, mass_slots.known, self.cache,
                self.eps, self.weighted, stats=self.stats,
                count_memo=self._count_memo)
        store.mass[dense] = store.mass[dense] + added

    def _store_finalize(self, dense: int) -> None:
        """Store-path _finalize: visit the rest, mark final, record LB."""
        self._store_ensure_seen(dense)
        store = self.store
        self._store_visit_rest(dense)
        store.to_visit[dense] = 0
        store.remaining_ub[dense] = 0
        epoch = store.epoch
        if store.final_epoch[dense] != epoch:
            store.final_epoch[dense] = epoch
            store.final_ids.add(self._layout.seg_ids_list[dense])
            self.stats.segments_finalized_in_filter += 1
        self._store_record_bound(dense)

    def _store_finalize_exact(self, dense: int) -> None:
        """Store-path _finalize_exact: no LB record, no filter counter."""
        store = self.store
        self._store_visit_rest(dense)
        store.to_visit[dense] = 0
        store.remaining_ub[dense] = 0
        store.final_epoch[dense] = store.epoch
        store.final_ids.add(self._layout.seg_ids_list[dense])

    def _refine_store(self) -> list[SOIResult]:
        """Store-path refinement over the active dense positions."""
        layout = self._layout
        store = self.store
        epoch = store.epoch
        eps = self.eps
        seg_ids = layout.seg_ids_list
        street_of = layout.street_list
        lengths = layout.lengths_list
        buffer_col = layout.buffer_list
        mass_col = store.mass
        final_col = store.final_epoch
        remaining_col = store.remaining_ub
        weight_cap = self._weight_cap
        exact: dict[int, tuple[float, int]] = {}
        exact_topk = TopKThreshold(self.k)

        def record_exact(dense: int) -> None:
            mass = float(mass_col[dense])
            if contracts.ENABLED:
                contracts.check_definition2(mass, lengths[dense], eps)
            value = mass / buffer_col[dense]
            street_id = street_of[dense]
            best = exact.get(street_id)
            if best is None or value > best[0]:
                exact[street_id] = (value, seg_ids[dense])
                exact_topk.update(street_id, value)

        partial: list[tuple[float, int, int]] = []
        for dense in store.active:
            if final_col[dense] == epoch:
                record_exact(dense)
                continue
            remaining_ub = int(remaining_col[dense]) * weight_cap
            if remaining_ub == 0:
                # The unvisited cells hold no relevant POIs: mass is exact.
                store.to_visit[dense] = 0
                final_col[dense] = epoch
                store.final_ids.add(seg_ids[dense])
                record_exact(dense)
                continue
            optimistic = segment_interest(
                float(mass_col[dense]) + remaining_ub,
                lengths[dense], eps)
            partial.append((optimistic, seg_ids[dense], dense))

        partial.sort(key=lambda item: (-item[0], item[1]))
        for index, (optimistic, _sid, dense) in enumerate(partial):
            if self.prune_refinement:
                kth = exact_topk.current()
                if kth is not None and optimistic < kth:
                    self.stats.refinement_pruned += len(partial) - index
                    break
            self._store_finalize_exact(dense)
            record_exact(dense)
            self.stats.refinement_finalized += 1

        ranked = sorted(
            ((value, street_id, seg_id)
             for street_id, (value, seg_id) in exact.items() if value > 0),
            key=lambda item: (-item[0], item[1]))
        network = self.engine.network
        return [
            SOIResult(street_id=street_id,
                      street_name=network.street(street_id).name,
                      interest=value,
                      best_segment_id=seg_id)
            for value, street_id, seg_id in ranked[: self.k]
        ]
