"""The SOI algorithm (Algorithm 1) and its public entry point, SOIEngine.

The algorithm processes a k-SOI query top-k style: it pulls promising
street segments from three ranked source lists (see
:mod:`repro.core.source_lists`), maintains a *seen* lower bound ``LBk`` on
the interest of the k best streets so far and an *unseen* upper bound
``UB`` on the interest of any untouched segment, and stops pulling as soon
as ``LBk >= UB`` (Lemma 1).  A refinement phase then finalises the exact
interest of the seen segments — optionally pruning those whose optimistic
interest cannot reach the k-th best street.

Correctness notes (also summarised in DESIGN.md):

* Popping a cell from SL1 touches every segment of ``L_eps(c)``, so any
  still-unseen segment has only un-popped cells in its ``eps``-
  neighbourhood; hence ``top(SL1)`` bounds the relevant count of each of
  its cells, ``top(SL2)`` bounds how many such cells it has, and
  ``top(SL3)`` bounds its length from below.
* For weighted-POI queries every count bound is multiplied by the maximum
  POI weight, keeping ``UB`` and the refinement bounds sound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.analysis import contracts
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.obs.slowlog import SLOWLOG
from repro.obs.tracer import perf_now, trace_span
from repro.core.interest import (
    RelevantCellCache,
    buffer_area,
    segment_interest,
    segment_mass_batched,
    segment_mass_in_cell,
    validate_query,
)
from repro.core.results import SOIResult, SOIStats
from repro.core.source_lists import CellSourceList, SegmentSourceList
from repro.data.poi import POISet
from repro.geometry.bbox import BBox
from repro.index.cell_maps import SegmentCellMaps
from repro.index.grid import CellCoord
from repro.index.poi_grid import POIGridIndex
from repro.network.model import RoadNetwork, Segment

DEFAULT_EPS = 0.0005
"""The distance threshold used throughout the paper's experiments
(0.0005 degrees, about 55 m)."""


class AccessStrategy(Enum):
    """How the filtering phase cycles through the source lists.

    The paper notes that correctness "is not affected by the access
    strategy" and that in practice it alternates between SL1 and SL3;
    the pseudocode itself round-robins SL1 -> SL2 -> SL3.  All variants
    are provided for the ablation benchmark.
    """

    ALTERNATE = "alternate"          # SL1 <-> SL3 (the paper's practice)
    ROUND_ROBIN = "round_robin"      # SL1 -> SL2 -> SL3 (the pseudocode)
    CELLS_FIRST = "cells_first"      # drain SL1, then segments
    SEGMENTS_FIRST = "segments_first"  # drain SL3, then cells

    @property
    def cycle(self) -> tuple[str, ...]:
        return {
            AccessStrategy.ALTERNATE: ("SL1", "SL3"),
            AccessStrategy.ROUND_ROBIN: ("SL1", "SL2", "SL3"),
            AccessStrategy.CELLS_FIRST: ("SL1",),
            AccessStrategy.SEGMENTS_FIRST: ("SL3",),
        }[self]


@dataclass(slots=True)
class _SegmentState:
    """Book-keeping for a *seen* segment (the paper's partial/final states)."""

    segment: Segment
    to_visit: set[CellCoord]
    buffer_area: float = 0.0
    mass: float = 0.0
    final: bool = False


class SOIEngine:
    """Indexes a road network and a POI set; answers k-SOI queries.

    Builds the offline structures of Section 3.2.1 once (grid + local and
    global inverted indexes over POIs, cell/segment maps); the query-time
    ``eps`` augmentation is cached inside :class:`SegmentCellMaps`.

    Parameters
    ----------
    network, pois:
        The data to index.
    cell_size:
        Grid cell side; defaults to ``2 * DEFAULT_EPS``.
    extent_margin:
        How far beyond the joint network/POI MBR the grid extends, so that
        ``eps``-buffers near the border stay inside the grid.  Defaults to
        ``4 * cell_size``.
    """

    def __init__(
        self,
        network: RoadNetwork,
        pois: POISet,
        cell_size: float | None = None,
        extent_margin: float | None = None,
        session_pool_size: int | None = None,
    ) -> None:
        from repro.perf.session import DEFAULT_MAX_SESSIONS, QuerySessionPool

        self.network = network
        self.pois = pois
        self._cell_size = cell_size
        self._extent_margin = extent_margin
        self.index_generation = 0
        self._build_indexes()
        self.sessions = QuerySessionPool(
            self.poi_index,
            maxsize=(DEFAULT_MAX_SESSIONS if session_pool_size is None
                     else session_pool_size))

    @classmethod
    def from_prebuilt(
        cls,
        network: RoadNetwork,
        pois: POISet,
        poi_index: POIGridIndex,
        cell_maps: SegmentCellMaps,
        extent: BBox,
        sl3_entries: tuple[tuple[int, float], ...],
        index_generation: int = 0,
        session_pool_size: int | None = None,
    ) -> "SOIEngine":
        """An engine over *already built* index structures.

        The constructor path derives every structure from the raw data;
        this one wires externally supplied ones instead — it is how
        :func:`repro.serve.views.attach_engine` rebuilds a serving view
        over a shared-memory :class:`~repro.serve.snapshot.IndexSnapshot`
        without re-running index construction.  The caller is responsible
        for the structures being mutually consistent (same grid, same
        data); everything derived here (``_max_weight``, the SL2 cache
        seed) is recomputed from them exactly as ``__init__`` would.
        """
        from repro.perf.session import DEFAULT_MAX_SESSIONS, QuerySessionPool

        engine = cls.__new__(cls)
        engine.network = network
        engine.pois = pois
        engine._cell_size = poi_index.grid.cell_size
        engine._extent_margin = None
        engine.index_generation = index_generation
        engine.extent = extent
        engine.poi_index = poi_index
        engine.cell_maps = cell_maps
        engine._max_weight = (float(pois.weights.max()) if len(pois)
                              else 0.0)
        engine._sl3_entries = sl3_entries
        engine._sl2_cache = {}
        engine.sessions = QuerySessionPool(
            poi_index,
            maxsize=(DEFAULT_MAX_SESSIONS if session_pool_size is None
                     else session_pool_size))
        return engine

    @trace_span("index.build")
    def _build_indexes(self) -> None:
        cell_size = self._cell_size
        extent_margin = self._extent_margin
        if cell_size is None:
            cell_size = 2.0 * DEFAULT_EPS
        if extent_margin is None:
            extent_margin = 4.0 * cell_size
        network, pois = self.network, self.pois
        extent = network.bbox()
        if len(pois):
            extent = extent.union(
                BBox(float(pois.xs.min()), float(pois.ys.min()),
                     float(pois.xs.max()), float(pois.ys.max())))
        self.extent = extent.expanded(extent_margin)
        with trace_span("index.poi_grid"):
            self.poi_index = POIGridIndex(pois, self.extent, cell_size)
        with trace_span("index.cell_maps"):
            self.cell_maps = SegmentCellMaps(network, self.poi_index.grid)
        self._max_weight = float(pois.weights.max()) if len(pois) else 0.0
        # SL3 order (length ascending) is query-independent; SL2 order
        # depends only on eps, so it is cached per eps value.
        with trace_span("index.source_list_orders"):
            self._sl3_entries: tuple[tuple[int, float], ...] = tuple(sorted(
                ((seg.id, seg.length) for seg in network.iter_segments()),
                key=lambda e: (e[1], e[0])))
        self._sl2_cache: dict[float, tuple[tuple[tuple[int, float], ...],
                                           float]] = {}

    def rebuild_indexes(
        self,
        cell_size: float | None = None,
        extent_margin: float | None = None,
    ) -> None:
        """Rebuild the offline structures (e.g. after re-tuning the grid).

        Passing ``cell_size``/``extent_margin`` overrides the construction
        parameters; omitted values keep the current ones.  Every retained
        :class:`~repro.perf.session.QuerySession` is invalidated — their
        cached materialisations point into the old index — and
        ``index_generation`` is bumped so that exported
        :class:`~repro.serve.snapshot.IndexSnapshot` blocks (which record
        the generation they captured) are recognised as stale by the
        serving layer.
        """
        if cell_size is not None:
            self._cell_size = cell_size
        if extent_margin is not None:
            self._extent_margin = extent_margin
        self._build_indexes()
        self.index_generation += 1
        self.sessions.invalidate(self.poi_index)

    def invalidate_sessions(self) -> None:
        """Drop all cached query sessions (alias for pool invalidation)."""
        self.sessions.invalidate()

    def session_for(self, keywords: Iterable[str]):
        """The :class:`~repro.perf.session.QuerySession` for a keyword set."""
        from repro.data.keywords import normalize_keywords

        return self.sessions.get(normalize_keywords(keywords))

    def _sl2_entries(self, eps: float) -> tuple[
            tuple[tuple[int, float], ...], float]:
        """Sorted SL2 entries and the adaptive-SL2 threshold, per eps."""
        cached = self._sl2_cache.get(eps)
        if cached is None:
            cell_counts = self.cell_maps.augmented_cell_counts(eps)
            entries = tuple(sorted(
                ((sid, float(count)) for sid, count in cell_counts.items()),
                key=lambda e: (-e[1], e[0])))
            counts = sorted(cell_counts.values())
            median = counts[len(counts) // 2] if counts else 0.0
            cached = (entries, 1.5 * median)
            self._sl2_cache[eps] = cached
        return cached

    # -- public API ---------------------------------------------------------

    def top_k(
        self,
        keywords: Iterable[str],
        k: int,
        eps: float = DEFAULT_EPS,
        strategy: AccessStrategy = AccessStrategy.ALTERNATE,
        prune_refinement: bool = True,
        weighted: bool = False,
        use_session: bool = True,
    ) -> list[SOIResult]:
        """Answer a k-SOI query (Problem 1).

        Returns up to ``k`` streets ordered by decreasing interest (ties
        broken by street id); streets with zero interest are never
        reported.  Set ``weighted=True`` to sum POI weights instead of
        counting POIs (the Definition 1 adaptation).

        ``use_session=True`` (the default) serves the query through the
        engine's :class:`~repro.perf.session.QuerySessionPool`, so sweeps
        over ``k``/``eps``/strategy with the same keywords reuse per-cell
        materialisations; cached values are bitwise what a fresh run would
        compute, so results are identical either way.
        """
        results, _stats = self.top_k_with_stats(
            keywords, k, eps, strategy=strategy,
            prune_refinement=prune_refinement, weighted=weighted,
            use_session=use_session)
        return results

    def top_k_with_stats(
        self,
        keywords: Iterable[str],
        k: int,
        eps: float = DEFAULT_EPS,
        strategy: AccessStrategy = AccessStrategy.ALTERNATE,
        prune_refinement: bool = True,
        weighted: bool = False,
        use_session: bool = True,
    ) -> tuple[list[SOIResult], SOIStats]:
        """Like :meth:`top_k` but also returns work/timing counters."""
        query = validate_query(keywords, k, eps)
        session = self.sessions.get(query) if use_session else None
        run = _SOIRun(self, query, k, eps,
                      strategy, prune_refinement, weighted, session=session)
        return run.execute()

    def segment_exact_interest(
        self,
        segment_id: int,
        keywords: Iterable[str],
        eps: float = DEFAULT_EPS,
        weighted: bool = False,
        use_session: bool = True,
    ) -> float:
        """Exact Definition 2 interest of one segment (indexed path)."""
        from repro.core.interest import segment_mass

        query = validate_query(keywords, 1, eps)
        session = self.sessions.get(query) if use_session else None
        segment = self.network.segment(segment_id)
        mass = segment_mass(
            segment, self.poi_index, self.cell_maps, query, eps, weighted,
            cache=session.cache if session is not None else None,
            mass_cache=(session.mass_cache(eps, weighted)
                        if session is not None else None))
        return segment_interest(mass, segment.length, eps)


class _SOIRun:
    """One execution of Algorithm 1 over a prepared :class:`SOIEngine`."""

    def __init__(
        self,
        engine: SOIEngine,
        query: frozenset[str],
        k: int,
        eps: float,
        strategy: AccessStrategy,
        prune_refinement: bool,
        weighted: bool,
        session=None,
    ) -> None:
        self.engine = engine
        self.query = query
        self.k = k
        self.eps = eps
        self.strategy = strategy
        self.prune_refinement = prune_refinement
        self.weighted = weighted
        self.stats = SOIStats()
        self.session = session
        if session is not None:
            # Cross-query reuse: the session owns the relevant-cell cache
            # and the (segment, cell) mass memo for this (eps, weighted).
            self.cache = session.cache
            self._mass_cache = session.mass_cache(eps, weighted)
            self.stats.session_reused = session.queries_served > 0
            session.queries_served += 1
        else:
            self.cache = RelevantCellCache(engine.poi_index, query)
            self._mass_cache = None
        self._states: dict[int, _SegmentState] = {}
        self._street_best_lb: dict[int, float] = {}
        self._lbk_dirty = True
        self._lbk = 0.0
        # Weighted queries bound per-cell relevant mass by count * max weight.
        self._weight_cap = engine._max_weight if weighted else 1.0
        # Contract monitor (Lemma 1 / Definition 1); None on the fast path.
        self._monitor = (contracts.SOIContractMonitor()
                         if contracts.ENABLED else None)

    # -- driver -----------------------------------------------------------

    def execute(self) -> tuple[list[SOIResult], SOIStats]:
        mark = obs_tracer.TRACER.mark() if obs_tracer.ENABLED else 0
        with trace_span("soi.query", k=self.k, eps=self.eps,
                        strategy=self.strategy.value, weighted=self.weighted,
                        keywords=",".join(sorted(self.query))):
            hits0, misses0 = self.cache.hits, self.cache.misses
            t0 = perf_now()
            with trace_span("soi.build_source_lists"):
                self._build_source_lists()
            t1 = perf_now()
            with trace_span("soi.filter"):
                self._filter()
            t2 = perf_now()
            kernels_before_refine = self.stats.kernel_calls
            with trace_span("soi.refine"):
                results = self._refine()
            t3 = perf_now()
        self.stats.refine_kernel_calls = (
            self.stats.kernel_calls - kernels_before_refine)
        self.stats.relevant_cache_hits = self.cache.hits - hits0
        self.stats.relevant_cache_misses = self.cache.misses - misses0
        self.stats.phase_seconds = {
            "build": t1 - t0, "filter": t2 - t1, "refine": t3 - t2}
        obs_metrics.record_soi_query(self.stats)
        if SLOWLOG.enabled:
            SLOWLOG.maybe_record(
                "soi",
                {"keywords": sorted(self.query), "k": self.k, "eps": self.eps,
                 "strategy": self.strategy.value, "weighted": self.weighted},
                t3 - t0, self.stats.counters(),
                obs_tracer.TRACER.spans_since(mark)
                if obs_tracer.ENABLED else ())
        if self._monitor is not None:
            self._monitor.check_results(self.engine, self.query, self.eps,
                                        self.weighted, self.k, results)
        return results, self.stats

    # -- phase 1: source lists --------------------------------------------

    def _build_source_lists(self) -> None:
        # Per-cell |P_Psi(c)| upper bounds; cells absent from this map hold
        # no relevant POI, so visiting them contributes nothing to mass.
        if self.session is not None:
            # Keyword-only aggregate: computed once per signature, shared
            # by every (k, eps, strategy) configuration of the sweep.
            self._cell_ub = self.session.cell_upper_bounds()
            sl1_entries = list(self._cell_ub.items())
        else:
            poi_index = self.engine.poi_index
            self._cell_ub: dict[CellCoord, int] = {}
            sl1_entries = []
            for cell in poi_index.candidate_cells(self.query):
                ub = poi_index.relevant_count_upper_bound(cell, self.query)
                if ub > 0:
                    self._cell_ub[cell] = ub
                    sl1_entries.append((cell, ub))
        self.sl1 = CellSourceList(sl1_entries)

        # Threshold for the paper's adaptive SL2 access: "we only access
        # segments via the second source SL2 in the case that a few
        # segments with a large number of neighboring cells exist".  A
        # segment whose |C_eps| is far above the median is such an outlier:
        # it keeps top(SL2) — and hence UB — inflated, so it is retrieved
        # directly instead of waiting for a cell access to reach it.
        sl2_entries, self._sl2_threshold = self.engine._sl2_entries(self.eps)
        is_final = self._is_final
        is_seen = self._is_seen
        self.sl2 = SegmentSourceList(
            sl2_entries, descending=True,
            is_final=is_final, is_seen=is_seen, presorted=True)
        self.sl3 = SegmentSourceList(
            self.engine._sl3_entries, descending=False,
            is_final=is_final, is_seen=is_seen, presorted=True)
        self._lists = {"SL1": self.sl1, "SL2": self.sl2, "SL3": self.sl3}

    def _is_seen(self, segment_id: int) -> bool:
        return segment_id in self._states

    def _is_final(self, segment_id: int) -> bool:
        state = self._states.get(segment_id)
        return state is not None and state.final

    # -- phase 2: filtering --------------------------------------------------

    _CHECK_EVERY = 4
    """Termination-test frequency.  Testing LBk >= UB on every access costs
    more than the few extra accesses a delayed test allows, and a delayed
    test is conservative (it can only keep filtering longer)."""

    def _filter(self) -> None:
        cycle = self.strategy.cycle
        ncycle = len(cycle)
        position = 0
        stats = self.stats
        monitor = self._monitor
        check_every = self._CHECK_EVERY
        # Hot loop: the attribute chains below are loop-invariant, so they
        # are hoisted into locals (the warm-session profile is dominated by
        # this loop's per-access bookkeeping, not by mass kernels).
        # Tracing likewise binds once: the untraced access method when off,
        # so the disabled path pays nothing per access.
        tracing = obs_tracer.ENABLED
        access = self._access_traced if tracing else self._access
        alternate = (self.strategy is AccessStrategy.ALTERNATE
                     and self._sl2_threshold > 0)
        sl2_top = self.sl2.top
        sl2_threshold = self._sl2_threshold
        while True:
            if stats.iterations % check_every == 0:
                if tracing:
                    with trace_span("soi.termination_check"):
                        lbk = self._compute_lbk()
                        ub = self._compute_ub()
                else:
                    lbk = self._compute_lbk()
                    ub = self._compute_ub()
                if monitor is not None:
                    monitor.observe_threshold(lbk, ub)
                if lbk >= ub:
                    break
            accessed = False
            if alternate:
                top2 = sl2_top()
                if top2 is not None and top2 > sl2_threshold:
                    accessed = access("SL2")
            for offset in range(ncycle):
                if accessed:
                    break
                name = cycle[(position + offset) % ncycle]
                if access(name):
                    position = (position + offset + 1) % ncycle
                    accessed = True
            if not accessed:
                # Preferred lists drained; fall back to any remaining list.
                for name in ("SL1", "SL2", "SL3"):
                    if access(name):
                        accessed = True
                        break
            if not accessed:
                break
            stats.iterations += 1

    def _access_traced(self, name: str) -> bool:
        """Traced variant of :meth:`_access` (bound by ``_filter`` when
        tracing is on, so the hot path has no per-access switch check)."""
        with trace_span("soi.pull", source=name):
            return self._access(name)

    def _access(self, name: str) -> bool:
        """Perform one access on the named list; False when exhausted."""
        if name == "SL1":
            cell = self.sl1.pop()
            if cell is None:
                return False
            self.stats.cells_popped += 1
            states = self._states
            state_of = self._state_of
            update = self._update_interest
            for sid in self.engine.cell_maps.segments_of_cell(cell, self.eps):
                state = states.get(sid)
                update(state if state is not None else state_of(sid), cell)
            return True
        source: SegmentSourceList = self._lists[name]
        segment_id = source.pop()
        if segment_id is None:
            return False
        self.stats.segments_popped += 1
        self._finalize(self._state_of(segment_id))
        return True

    def _state_of(self, segment_id: int) -> _SegmentState:
        state = self._states.get(segment_id)
        if state is None:
            segment = self.engine.network.segment(segment_id)
            cells = self.engine.cell_maps.cells_of_segment(segment_id, self.eps)
            state = _SegmentState(
                segment=segment, to_visit=set(cells),
                buffer_area=buffer_area(segment.length, self.eps))
            self._states[segment_id] = state
            self.stats.segments_seen += 1
        return state

    def _update_interest(self, state: _SegmentState, cell: CellCoord) -> None:
        """The paper's ``UpdateInterest(l, c, Psi)`` procedure.

        Cells known (from the global inverted index) to hold no relevant
        POI are ticked off ``toVisit`` without touching the POI data.
        """
        to_visit = state.to_visit
        if cell not in to_visit:
            return
        to_visit.remove(cell)
        stats = self.stats
        stats.cell_visits += 1
        if cell in self._cell_ub:
            # Memo hits are the common case on a warm session; serving
            # them inline skips a function call per (segment, cell) pair.
            memo = self._mass_cache
            cached = (memo.get((state.segment.id, cell))
                      if memo is not None else None)
            if cached is not None:
                stats.mass_cache_hits += 1
                state.mass += cached
            else:
                state.mass += segment_mass_in_cell(
                    state.segment, cell, self.cache, self.eps, self.weighted,
                    stats=stats, mass_cache=memo)
            self._record_lower_bound(state)
        if not to_visit and not state.final:
            state.final = True
            stats.segments_finalized_in_filter += 1

    def _finalize(self, state: _SegmentState) -> None:
        """Visit every remaining cell of a segment with one batched kernel.

        Equivalent to calling :meth:`_update_interest` per remaining cell:
        the batched kernel accumulates per-cell contributions in the same
        visit order (bit-identical floats), and recording the lower bound
        once with the final mass subsumes the intermediate records (the
        street map keeps the maximum, and mass only grows).
        """
        to_visit = tuple(state.to_visit)
        if to_visit:
            self.stats.cell_visits += len(to_visit)
            relevant = [cell for cell in to_visit if cell in self._cell_ub]
            if relevant:
                state.mass += segment_mass_batched(
                    state.segment, relevant, self.cache, self.eps,
                    self.weighted, stats=self.stats,
                    mass_cache=self._mass_cache)
            state.to_visit.clear()
        if not state.final:
            state.final = True
            self.stats.segments_finalized_in_filter += 1
        self._record_lower_bound(state)

    def _record_lower_bound(self, state: _SegmentState) -> None:
        if state.mass <= 0.0:
            # int-(l) = 0 can never contribute to LBk (zero-interest
            # streets are not reported); skipping keeps the street map
            # small and LBk a valid lower bound.
            return
        # Definition 2 with the state's precomputed denominator — the same
        # buffer_area(length, eps) value segment_interest would derive, so
        # the quotient is bitwise identical.
        if contracts.ENABLED:
            contracts.check_definition2(
                state.mass, state.segment.length, self.eps)
        value = state.mass / state.buffer_area
        street_id = state.segment.street_id
        if value > self._street_best_lb.get(street_id, 0.0):
            self._street_best_lb[street_id] = value
            self._lbk_dirty = True

    def _compute_lbk(self) -> float:
        """Current LBk; recomputed lazily and at most every few iterations.

        Using a slightly stale (hence smaller) LBk in the termination test
        is conservative — it can only delay termination, never cause a
        wrong result — so the k-th-largest scan is throttled.
        """
        if not self._lbk_dirty or self.stats.iterations % 8 != 0:
            return self._lbk
        if len(self._street_best_lb) >= self.k:
            self._lbk = heapq.nlargest(
                self.k, self._street_best_lb.values())[-1]
        self._lbk_dirty = False
        return self._lbk

    def _compute_ub(self) -> float:
        top_cells = self.sl1.top()
        top_count = self.sl2.top()
        top_length = self.sl3.top()
        if top_count is None or top_length is None:
            return 0.0  # no unseen segments remain
        mass_ub = top_cells * top_count * self._weight_cap
        return mass_ub / buffer_area(top_length, self.eps)

    # -- phase 3: refinement -------------------------------------------------

    def _refine(self) -> list[SOIResult]:
        # street_id -> (exact interest, best segment id)
        exact: dict[int, tuple[float, int]] = {}

        def record_exact(state: _SegmentState) -> None:
            if contracts.ENABLED:
                contracts.check_definition2(
                    state.mass, state.segment.length, self.eps)
            value = state.mass / state.buffer_area
            street_id = state.segment.street_id
            best = exact.get(street_id)
            if best is None or value > best[0]:
                exact[street_id] = (value, state.segment.id)

        partial: list[tuple[float, int, _SegmentState]] = []
        for state in self._states.values():
            if state.final:
                record_exact(state)
                continue
            remaining_ub = sum(
                self._cell_ub.get(cell, 0)
                for cell in state.to_visit) * self._weight_cap
            if remaining_ub == 0:
                # The unvisited cells hold no relevant POIs: mass is exact.
                state.to_visit.clear()
                state.final = True
                record_exact(state)
                continue
            optimistic = segment_interest(
                state.mass + remaining_ub, state.segment.length, self.eps)
            partial.append((optimistic, state.segment.id, state))

        partial.sort(key=lambda item: (-item[0], item[1]))
        for index, (optimistic, _sid, state) in enumerate(partial):
            if self.prune_refinement and len(exact) >= self.k:
                kth = heapq.nlargest(
                    self.k, (value for value, _seg in exact.values()))[-1]
                if optimistic < kth:
                    self.stats.refinement_pruned += len(partial) - index
                    break
            self._finalize_exact(state)
            record_exact(state)
            self.stats.refinement_finalized += 1

        ranked = sorted(
            ((value, street_id, seg_id)
             for street_id, (value, seg_id) in exact.items() if value > 0),
            key=lambda item: (-item[0], item[1]))
        network = self.engine.network
        return [
            SOIResult(street_id=street_id,
                      street_name=network.street(street_id).name,
                      interest=value,
                      best_segment_id=seg_id)
            for value, street_id, seg_id in ranked[: self.k]
        ]

    def _finalize_exact(self, state: _SegmentState) -> None:
        to_visit = tuple(state.to_visit)
        self.stats.cell_visits += len(to_visit)
        relevant = [cell for cell in to_visit if cell in self._cell_ub]
        if relevant:
            state.mass += segment_mass_batched(
                state.segment, relevant, self.cache, self.eps, self.weighted,
                stats=self.stats, mass_cache=self._mass_cache)
        state.to_visit.clear()
        state.final = True
