"""Alternative street-interest aggregates.

Definition 3 takes a street's interest to be the *maximum* interest among
its segments, and the paper notes "there exist several alternatives for
defining the interest of an entire street; here, we use a simple
definition".  This module implements the natural alternatives so that the
choice can be studied (see ``benchmarks/bench_ablation_aggregates.py``):

* ``MAX`` — the paper's Definition 3 (one hot segment suffices);
* ``MEAN`` — the unweighted mean of segment interests (favours uniformly
  interesting streets);
* ``LENGTH_WEIGHTED`` — segment interests weighted by segment length
  (a long dull stretch dilutes a short hot one);
* ``TOTAL_DENSITY`` — total street mass over total buffer area, i.e.
  Definition 2 applied to the street as a whole.

Only ``MAX`` is compatible with the SOI algorithm's Lemma 1 bounds (a
seen segment lower-bounds the street only under max-aggregation), so the
alternatives are evaluated through the exhaustive path
(:meth:`repro.core.soi_baseline.BaselineSOI` exposes them via
``aggregate=``).
"""

from __future__ import annotations

from enum import Enum
from typing import Mapping, Sequence

from repro.core.interest import buffer_area
from repro.network.model import RoadNetwork


class StreetAggregate(Enum):
    """How per-segment interests combine into a street interest."""

    MAX = "max"
    MEAN = "mean"
    LENGTH_WEIGHTED = "length_weighted"
    TOTAL_DENSITY = "total_density"


def aggregate_street_interest(
    network: RoadNetwork,
    street_id: int,
    segment_interests: Mapping[int, float],
    aggregate: StreetAggregate,
    eps: float,
) -> float:
    """Street interest under the chosen aggregate.

    ``segment_interests`` maps every segment id of the street to its exact
    Definition 2 interest.  ``eps`` is needed by ``TOTAL_DENSITY`` to
    reconstruct masses from densities.
    """
    segments = network.segments_of_street(street_id)
    values = [segment_interests[seg.id] for seg in segments]
    if not values:
        return 0.0
    if aggregate is StreetAggregate.MAX:
        return max(values)
    if aggregate is StreetAggregate.MEAN:
        return sum(values) / len(values)
    if aggregate is StreetAggregate.LENGTH_WEIGHTED:
        total_length = sum(seg.length for seg in segments)
        if total_length == 0:
            return max(values)
        return sum(value * seg.length
                   for value, seg in zip(values, segments)) / total_length
    if aggregate is StreetAggregate.TOTAL_DENSITY:
        # Invert Definition 2 per segment to recover mass, then apply the
        # density ratio to the whole street.  Note that a POI close to two
        # segments of the street is counted once per segment, consistent
        # with how the per-segment buffers overlap.
        total_mass = sum(value * buffer_area(seg.length, eps)
                         for value, seg in zip(values, segments))
        total_area = sum(buffer_area(seg.length, eps) for seg in segments)
        if total_area <= 0.0:
            return 0.0
        return total_mass / total_area
    raise ValueError(f"unknown aggregate {aggregate!r}")


def rank_streets(
    network: RoadNetwork,
    segment_interests: Mapping[int, float],
    aggregate: StreetAggregate,
    eps: float,
    k: int,
) -> list[tuple[int, float]]:
    """Top-k ``(street_id, interest)`` under the chosen aggregate.

    Zero-interest streets are omitted, matching the k-SOI output contract.
    """
    scored = []
    for street_id in network.streets:
        value = aggregate_street_interest(
            network, street_id, segment_interests, aggregate, eps)
        if value > 0:
            scored.append((value, street_id))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [(street_id, value) for value, street_id in scored[:k]]
