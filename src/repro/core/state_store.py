"""Array-native segment state for the SOI filter phase.

The filter loop of Algorithm 1 used to track every *seen* segment in a
``dict[int, _SegmentState]`` of per-object attributes.  This module holds
the columnar replacement: a dense segment-id mapping (the same iteration
order the snapshot schema records) indexes flat columns for partial mass,
the Definition 2 buffer-area denominator, the visited-cell progress and
the remaining per-cell upper-bound contribution.

The immutable layout and per-signature columns are NumPy arrays — they
are *built* vectorised (one ufunc for every buffer area, one ``bincount``
for every segment's total upper bound) and mirrored to Python lists for
element-wise reads.  The mutable run scratch and the slot mass memo are
plain Python lists: profiling the street grids shows a popped cell
touches only 2–8 segments and a finalised segment ~10 slots, far below
NumPy's per-call dispatch break-even, so the filter loop is driven by
list indexing while the heavy lifting (mass kernels, column
construction) stays batched.

Layout vs. scratch
------------------
* :class:`StoreLayout` is immutable and engine-owned, one per ``eps``:
  dense columns plus the CSR of ``(segment, cell)`` *slots* and its
  cell-major inverse.
* :class:`SignatureBindings` and :class:`MassSlots` are per keyword
  signature (the latter also per ``weighted``), normally owned by a
  :class:`~repro.perf.session.QuerySession`: the cell upper bounds of
  Algorithm 1 line 2 projected onto the layout, and the slot-indexed mass
  memo (the columnar twin of the session's ``(segment_id, cell)`` dict).
* :class:`SegmentStateStore` is mutable per-run scratch, recycled across
  runs through an epoch counter so a warm query allocates nothing.

Every cached float is the bitwise-exact value the scalar path computes,
and every column update applies the same IEEE operations in the same
order, so the store-driven run returns bit-identical results.

:class:`TopKThreshold` is the incremental LB_k maintenance shared by both
paths: a bounded min-heap over per-street best values replaces the
``heapq.nlargest`` full rescan of every termination check.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.cell_maps import SegmentCellMaps
    from repro.index.grid import CellCoord
    from repro.network.model import RoadNetwork, Segment

__all__ = [
    "MassSlots",
    "SegmentStateStore",
    "SignatureBindings",
    "StoreLayout",
    "TopKThreshold",
]


class TopKThreshold:
    """Exact k-th largest of per-key values that only ever increase.

    The SOI termination bound LB_k is the k-th largest of the per-street
    best lower bounds, and each street's best only grows as mass
    accumulates.  That monotonicity makes a bounded min-heap with lazy
    deletion exact: an improved value is pushed and the superseded entry
    goes *stale*, but a stale entry is always smaller than its key's live
    value, so stale entries surface at the min end first and pruning only
    at the top keeps ``current()`` the true k-th largest — the same float
    ``heapq.nlargest(k, values)[-1]`` would return, in O(log k) per
    update instead of an O(n log k) rescan.
    """

    __slots__ = ("k", "_best", "_heap", "_in_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.k = k
        self._best: dict[int, float] = {}
        self._heap: list[tuple[float, int]] = []
        # key -> value currently live in the heap; entries in ``_heap``
        # that disagree with this map are stale.
        self._in_heap: dict[int, float] = {}

    def update(self, key: int, value: float) -> bool:
        """Record ``value`` for ``key``; True when it improved the best.

        The return value matches the dict-based predicate
        ``value > best.get(key, 0.0)`` the scalar path used, so callers
        can keep their dirty-flag behaviour unchanged.
        """
        best = self._best.get(key, 0.0)
        if value <= best:
            return False
        self._best[key] = value
        in_heap = self._in_heap
        heap = self._heap
        if key in in_heap:
            in_heap[key] = value
            heapq.heappush(heap, (value, key))
        elif len(in_heap) < self.k:
            in_heap[key] = value
            heapq.heappush(heap, (value, key))
        else:
            self._prune()
            floor_value, floor_key = heap[0]
            if value > floor_value:
                in_heap[key] = value
                heapq.heapreplace(heap, (value, key))
                del in_heap[floor_key]
        if len(heap) > 4 * self.k + 64:
            # Compact: rebuild from the live entries only.  Purely an
            # allocation bound; the pruned heap is value-identical.
            self._heap = [(v, k) for k, v in in_heap.items()]
            heapq.heapify(self._heap)
        return True

    def _prune(self) -> None:
        heap = self._heap
        in_heap = self._in_heap
        while heap and in_heap.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)

    def current(self) -> float | None:
        """The k-th largest recorded value; ``None`` below k distinct keys."""
        if len(self._in_heap) < self.k:
            return None
        self._prune()
        return self._heap[0][0]

    def __len__(self) -> int:
        """Number of distinct keys recorded so far."""
        return len(self._best)


class StoreLayout:
    """Immutable dense/CSR geometry of one ``(engine, eps)`` pair.

    Dense position = the engine's ``network.iter_segments()`` order (the
    order the snapshot exporter records), so a layout rebuilt over an
    attached snapshot indexes identically.  A *slot* is one
    ``(segment, cell)`` incidence of the ``eps``-augmented cell maps;
    ``slot_offsets[d]:slot_offsets[d+1]`` spans segment ``d``'s cells in
    ``cells_of_segment`` order, and ``by_cell`` inverts the CSR into the
    ``segments_of_cell`` order the scalar path iterates.
    """

    __slots__ = (
        "eps", "segments", "num_segments", "seg_ids", "lengths",
        "street_of", "buffer_col", "dense_index", "num_slots", "num_cells",
        "cells", "cell_index", "slot_offsets", "slot_cell", "slot_cells",
        "cell_counts", "by_cell", "seg_ids_list", "street_list",
        "lengths_list", "buffer_list", "cell_counts_list",
    )

    def __init__(self, network: "RoadNetwork",
                 cell_maps: "SegmentCellMaps", eps: float) -> None:
        self.eps = eps
        segments: list["Segment"] = list(network.iter_segments())
        n = len(segments)
        self.segments = segments
        self.num_segments = n
        self.seg_ids = np.fromiter((seg.id for seg in segments),
                                   dtype=np.int64, count=n)
        self.lengths = np.fromiter((seg.length for seg in segments),
                                   dtype=np.float64, count=n)
        self.street_of = np.fromiter((seg.street_id for seg in segments),
                                     dtype=np.int64, count=n)
        # Definition 2 denominator column.  Evaluated as
        # (2.0 * eps) * length + (math.pi * eps) * eps — the exact
        # association Python gives buffer_area(), so each element is the
        # bitwise float the scalar path divides by.
        self.buffer_col = (2.0 * eps) * self.lengths + (math.pi * eps) * eps
        self.dense_index = {seg.id: pos for pos, seg in enumerate(segments)}
        # Python-list mirrors of the read-only columns for the small-group
        # element-wise path: grid cells overlap only a couple of segments
        # each, and at that size a list index beats a NumPy scalar index
        # several-fold.  tolist() round-trips float64 exactly, so the
        # mirrored values are the same bits.
        self.seg_ids_list = [seg.id for seg in segments]
        self.street_list = [seg.street_id for seg in segments]
        self.lengths_list = self.lengths.tolist()
        self.buffer_list = self.buffer_col.tolist()

        ids_col = getattr(cell_maps, "segment_ids_column", None)
        if ids_col is not None and np.array_equal(ids_col, self.seg_ids):
            # The cell maps' CSR rows are already in dense (builder) order;
            # derive the slot geometry from the flat pair arrays instead of
            # re-walking Python dicts.
            offsets, flat_i, flat_j = cell_maps.augmented_csr(eps)
            self._init_cells_from_csr(cell_maps.grid.ny, offsets,
                                      flat_i, flat_j)
        else:
            self._init_cells_from_walk(segments, cell_maps, eps)

    def _init_cells_from_csr(self, ny: int, offsets: np.ndarray,
                             flat_i: np.ndarray,
                             flat_j: np.ndarray) -> None:
        """Slot geometry from flat CSR pair columns, bit-identical to the
        dict walk: cells numbered by first appearance in the slot stream,
        ``by_cell`` groups ascending in slot (= dense segment) order."""
        n = self.num_segments
        lin = flat_i * np.int64(ny) + flat_j
        uniq, first_idx, inverse = np.unique(
            lin, return_index=True, return_inverse=True)
        num_cells = int(uniq.shape[0])
        rank = np.argsort(first_idx, kind="stable")
        inv_rank = np.empty(num_cells, dtype=np.int64)
        inv_rank[rank] = np.arange(num_cells, dtype=np.int64)
        slot_cell = inv_rank[inverse.reshape(-1)]
        cells: list["CellCoord"] = [
            (int(key) // ny, int(key) % ny) for key in uniq[rank].tolist()]  # repro-lint: disable=REP-N202 (ny is a grid dimension, >= 1 by UniformGrid construction)
        seg_col = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        slot_order = np.argsort(slot_cell, kind="stable")
        group_offsets = np.zeros(num_cells + 1, dtype=np.int64)
        np.cumsum(np.bincount(slot_cell, minlength=num_cells),
                  out=group_offsets[1:])
        self.num_slots = int(lin.shape[0])
        self.num_cells = num_cells
        self.cells = cells
        self.cell_index = {cell: pos for pos, cell in enumerate(cells)}
        self.slot_offsets = np.asarray(offsets, dtype=np.int64)
        self.slot_cell = slot_cell
        self.slot_cells = [cells[pos] for pos in slot_cell.tolist()]
        self.cell_counts = np.diff(self.slot_offsets)
        self.cell_counts_list = self.cell_counts.tolist()
        # Per cell: (segments, slots) in segments_of_cell order.  Kept as
        # Python lists — the groups are tiny (a street grid's cell
        # overlaps a handful of segments), so the filter walks them
        # element-wise.
        bounds = group_offsets.tolist()
        segs_sorted = seg_col[slot_order].tolist()
        slots_sorted = slot_order.tolist()
        self.by_cell = {
            cells[pos]: (segs_sorted[bounds[pos]:bounds[pos + 1]],
                         slots_sorted[bounds[pos]:bounds[pos + 1]])
            for pos in range(num_cells)}

    def _init_cells_from_walk(self, segments: "list[Segment]",
                              cell_maps: "SegmentCellMaps",
                              eps: float) -> None:
        """The original per-segment dict walk (attach-compat fallback)."""
        n = self.num_segments
        cell_index: dict["CellCoord", int] = {}
        cells: list["CellCoord"] = []
        slot_cell: list[int] = []
        by_cell_segs: list[list[int]] = []
        by_cell_slots: list[list[int]] = []
        offsets = np.zeros(n + 1, dtype=np.int64)
        for dense, seg in enumerate(segments):
            for cell in cell_maps.cells_of_segment(seg.id, eps):
                pos = cell_index.get(cell)
                if pos is None:
                    pos = len(cells)
                    cell_index[cell] = pos
                    cells.append(cell)
                    by_cell_segs.append([])
                    by_cell_slots.append([])
                by_cell_segs[pos].append(dense)
                by_cell_slots[pos].append(len(slot_cell))
                slot_cell.append(pos)
            offsets[dense + 1] = len(slot_cell)
        self.num_slots = len(slot_cell)
        self.num_cells = len(cells)
        self.cells = cells
        self.cell_index = cell_index
        self.slot_offsets = offsets
        self.slot_cell = np.asarray(slot_cell, dtype=np.int64)
        self.slot_cells = [cells[pos] for pos in slot_cell]
        self.cell_counts = np.diff(offsets)
        self.cell_counts_list = self.cell_counts.tolist()
        # Per cell: (segments, slots) in segments_of_cell order.
        self.by_cell = {
            cells[pos]: (by_cell_segs[pos], by_cell_slots[pos])
            for pos in range(len(cells))}


class SignatureBindings:
    """One keyword signature's cell upper bounds projected onto a layout.

    ``cell_ub[c]`` is ``|P_Psi(c)|`` (Algorithm 1, line 2) for the
    layout's cells (cells the signature never populates stay 0, exactly
    the ``dict.get(cell, 0)`` the scalar path reads), ``relevant`` its
    positivity mask, and ``total_ub[d]`` the per-segment sum over
    ``C_eps(l)`` — the starting value of the incrementally-decremented
    remaining upper-bound column.
    """

    __slots__ = ("layout", "cell_ub", "relevant", "slot_relevant",
                 "slot_relevant_list", "total_ub", "total_ub_list")

    def __init__(self, layout: StoreLayout,
                 cell_ub: dict["CellCoord", int]) -> None:
        self.layout = layout
        bounds = np.zeros(layout.num_cells, dtype=np.int64)
        index = layout.cell_index
        for cell, count in cell_ub.items():
            pos = index.get(cell)
            if pos is not None:
                bounds[pos] = count
        self.cell_ub = bounds
        self.relevant = bounds > 0
        # Slot-major relevance: one list probe per slot in the finalise
        # walk instead of a cell-index indirection.
        self.slot_relevant = (self.relevant[layout.slot_cell]
                              if layout.num_slots
                              else np.zeros(0, dtype=bool))
        self.slot_relevant_list = self.slot_relevant.tolist()
        if layout.num_slots:
            slot_seg = np.repeat(np.arange(layout.num_segments),
                                 layout.cell_counts)
            # bincount sums small integer counts in float64 — exact far
            # below 2**53 — and unlike add.reduceat has no empty-run
            # pitfall for segments with zero cells.
            totals = np.bincount(slot_seg,
                                 weights=bounds[layout.slot_cell].astype(
                                     np.float64),
                                 minlength=layout.num_segments)
            self.total_ub = totals.astype(np.int64)
        else:
            self.total_ub = np.zeros(layout.num_segments, dtype=np.int64)
        self.total_ub_list = self.total_ub.tolist()


class MassSlots:
    """Slot-indexed ``(segment, cell)`` mass memo (columnar twin of the
    session's dict memo, one instance per ``(signature, eps, weighted)``).

    ``known`` gates reads; writers store the mass *before* flipping the
    flag so a concurrent reader can never observe an unset value.  Both
    orders are safe either way — every writer would store the same
    deterministic float — which is what keeps the session's add-only
    thread-compatibility contract intact.

    The columns are Python lists: every access is a single-slot probe or
    a short per-segment slice, where list indexing beats NumPy scalar
    indexing severalfold (see the module docstring).
    """

    __slots__ = ("mass", "known")

    def __init__(self, num_slots: int) -> None:
        self.mass: list[float] = [0.0] * num_slots
        self.known: list[bool] = [False] * num_slots

    def known_count(self) -> int:
        """Memoised slots (for reports), like ``len()`` of the dict memo."""
        return sum(self.known)


_EPOCH_LIMIT = 2**31 - 2
"""Epoch wrap guard (kept at the int32 bound so the columns could be
re-materialised as int32 arrays without a semantic change)."""


class SegmentStateStore:
    """Reusable per-run scratch columns over one :class:`StoreLayout`.

    ``begin_run`` bumps ``epoch`` instead of clearing: a segment is
    *seen*/*final* in the current run iff its epoch column matches, and a
    slot is *visited* likewise, so recycling the store across queries is
    O(1).  ``active`` lists seen segments (dense ids) in first-seen order
    — the iteration order the refinement phase relies on.
    """

    __slots__ = ("layout", "mass", "remaining_ub", "to_visit", "seen_epoch",
                 "final_epoch", "visit_epoch", "epoch", "active",
                 "seen_ids", "final_ids", "runs_served")

    def __init__(self, layout: StoreLayout) -> None:
        n = layout.num_segments
        self.layout = layout
        self.mass: list[float] = [0.0] * n
        self.remaining_ub: list[int] = [0] * n
        self.to_visit: list[int] = [0] * n
        self.seen_epoch: list[int] = [0] * n
        self.final_epoch: list[int] = [0] * n
        self.visit_epoch: list[int] = [0] * layout.num_slots
        self.epoch = 0
        self.active: list[int] = []
        # Plain-set mirrors of the epoch columns, keyed by *segment id*:
        # the source-list is_seen/is_final predicates run in tight scan
        # loops where a set probe beats a NumPy scalar index.
        self.seen_ids: set[int] = set()
        self.final_ids: set[int] = set()
        self.runs_served = 0

    def begin_run(self) -> None:
        """Start a fresh run over the recycled columns."""
        if self.epoch >= _EPOCH_LIMIT:
            self.seen_epoch = [0] * len(self.seen_epoch)
            self.final_epoch = [0] * len(self.final_epoch)
            self.visit_epoch = [0] * len(self.visit_epoch)
            self.epoch = 0
        self.epoch += 1
        self.active = []
        self.seen_ids = set()
        self.final_ids = set()
        self.runs_served += 1
