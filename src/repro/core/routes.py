"""Route recommendation over discovered SOIs (the paper's future work).

Section 6 closes with "we plan ... to provide route recommendations based
on the discovered streets of interest".  This module implements the
natural baseline: visit the best segment of each top-k street, ordered by
a nearest-neighbour heuristic over network shortest-path distances, and
stitch the legs together into one walkable route.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.results import SOIResult
from repro.errors import QueryError
from repro.network.model import RoadNetwork


@dataclass(frozen=True, slots=True)
class Route:
    """A recommended route: ordered vertices, visited streets, length."""

    vertex_ids: tuple[int, ...]
    visited_street_ids: tuple[int, ...]
    total_length: float

    def __len__(self) -> int:
        return len(self.vertex_ids)


def recommend_route(
    network: RoadNetwork,
    results: list[SOIResult],
    start_vertex: int | None = None,
) -> Route:
    """A route visiting the best segment of each result street.

    Uses shortest paths on the undirected network (edge weight = segment
    length).  Streets whose best segment is unreachable from the current
    position are skipped rather than failing the whole route.  With
    ``start_vertex=None`` the route starts at the best segment of the
    highest-ranked street.
    """
    if not results:
        raise QueryError("cannot recommend a route from an empty result list")
    graph = network.as_networkx()
    targets = {
        res.street_id: network.segment(res.best_segment_id).u
        for res in results
    }
    if start_vertex is None:
        first = results[0]
        current = targets.pop(first.street_id)
        vertices: list[int] = [current]
        visited: list[int] = [first.street_id]
    else:
        if start_vertex not in network.vertices:
            raise QueryError(f"unknown start vertex {start_vertex}")
        current = start_vertex
        vertices = [current]
        visited = []
    total = 0.0
    while targets:
        lengths = nx.single_source_dijkstra_path_length(
            graph, current, weight="length")
        reachable = [(lengths[v], street_id, v)
                     for street_id, v in targets.items() if v in lengths]
        if not reachable:
            break
        dist, street_id, vertex = min(reachable)
        path = nx.dijkstra_path(graph, current, vertex, weight="length")
        vertices.extend(path[1:])
        visited.append(street_id)
        total += dist
        del targets[street_id]
        current = vertex
    return Route(tuple(vertices), tuple(visited), total)
