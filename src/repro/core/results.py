"""Result and statistics records shared by the SOI engine and its baseline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interest import validate_query


@dataclass(frozen=True, slots=True)
class SOIQuery:
    """A k-SOI query ``q = <Psi, k, eps>`` (Problem 1).

    ``keywords`` are normalised at construction; invalid parameters raise
    :class:`~repro.errors.QueryError`.
    """

    keywords: frozenset[str]
    k: int
    eps: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "keywords",
            validate_query(self.keywords, self.k, self.eps))


@dataclass(frozen=True, slots=True)
class SOIResult:
    """One street in a k-SOI answer.

    ``interest`` is the exact street interest (Definition 3) and
    ``best_segment_id`` the segment attaining it.
    """

    street_id: int
    street_name: str
    interest: float
    best_segment_id: int


@dataclass(slots=True)
class SOIStats:
    """Work counters of one SOI run, for the performance experiments.

    ``phase_seconds`` records the three phases the paper breaks Figure 4
    bars into: ``"build"`` (source-list construction), ``"filter"`` and
    ``"refine"``.
    """

    cells_popped: int = 0
    segments_popped: int = 0
    segments_seen: int = 0
    segments_finalized_in_filter: int = 0
    cell_visits: int = 0
    refinement_finalized: int = 0
    refinement_pruned: int = 0
    iterations: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())
