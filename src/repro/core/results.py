"""Result and statistics records shared by the SOI engine and its baseline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interest import validate_query


@dataclass(frozen=True, slots=True)
class SOIQuery:
    """A k-SOI query ``q = <Psi, k, eps>`` (Problem 1).

    ``keywords`` are normalised at construction; invalid parameters raise
    :class:`~repro.errors.QueryError`.
    """

    keywords: frozenset[str]
    k: int
    eps: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "keywords",
            validate_query(self.keywords, self.k, self.eps))


@dataclass(frozen=True, slots=True)
class SOIResult:
    """One street in a k-SOI answer.

    ``interest`` is the exact street interest (Definition 3) and
    ``best_segment_id`` the segment attaining it.
    """

    street_id: int
    street_name: str
    interest: float
    best_segment_id: int


@dataclass(slots=True)
class SOIStats:
    """Work counters of one SOI run, for the performance experiments.

    ``phase_seconds`` records the three phases the paper breaks Figure 4
    bars into: ``"build"`` (source-list construction), ``"filter"`` and
    ``"refine"``.

    The kernel and cache counters instrument the performance layer:
    ``kernel_calls`` counts invocations of the vectorised
    :func:`~repro.geometry.distance.points_segment_distance` kernel
    (``refine_kernel_calls`` is the refinement-phase share — at most one
    per refined segment on the batched path), ``scalar_point_evals``
    counts points evaluated through the tiny-cell scalar fast path, and
    the ``*_cache_*`` counters record :class:`RelevantCellCache` and
    per-``(segment, cell)`` mass-cache traffic.  ``session_reused`` is
    true when the run was served from a warm
    :class:`~repro.perf.session.QuerySession`; ``store_reused`` when the
    run recycled a session-pooled
    :class:`~repro.core.state_store.SegmentStateStore` instead of
    allocating fresh columns.  ``termination_checks`` counts LBk >= UB
    evaluations and ``lbk_heap_updates`` improvements pushed into the
    incremental top-k threshold heap.
    """

    cells_popped: int = 0
    segments_popped: int = 0
    segments_seen: int = 0
    segments_finalized_in_filter: int = 0
    cell_visits: int = 0
    refinement_finalized: int = 0
    refinement_pruned: int = 0
    iterations: int = 0
    termination_checks: int = 0
    lbk_heap_updates: int = 0
    kernel_calls: int = 0
    refine_kernel_calls: int = 0
    scalar_point_evals: int = 0
    relevant_cache_hits: int = 0
    relevant_cache_misses: int = 0
    mass_cache_hits: int = 0
    mass_cache_misses: int = 0
    session_reused: bool = False
    store_reused: bool = False
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def counters(self) -> dict[str, int]:
        """The integer work counters as a plain dict (for ``repro bench``)."""
        return {
            "cells_popped": self.cells_popped,
            "segments_popped": self.segments_popped,
            "segments_seen": self.segments_seen,
            "segments_finalized_in_filter": self.segments_finalized_in_filter,
            "cell_visits": self.cell_visits,
            "refinement_finalized": self.refinement_finalized,
            "refinement_pruned": self.refinement_pruned,
            "iterations": self.iterations,
            "termination_checks": self.termination_checks,
            "lbk_heap_updates": self.lbk_heap_updates,
            "kernel_calls": self.kernel_calls,
            "refine_kernel_calls": self.refine_kernel_calls,
            "scalar_point_evals": self.scalar_point_evals,
            "relevant_cache_hits": self.relevant_cache_hits,
            "relevant_cache_misses": self.relevant_cache_misses,
            "mass_cache_hits": self.mass_cache_hits,
            "mass_cache_misses": self.mass_cache_misses,
            "session_reused": int(self.session_reused),
            "store_reused": int(self.store_reused),
        }
