"""The BL baseline of the performance study (Section 5.2.1).

BL "uses only the spatial grid index to efficiently compute the interest of
every segment, and then determines the k-SOIs": no source lists, no bounds,
no early termination — every segment's exact mass is computed via its
``eps``-augmented cells, streets are ranked by their maximum segment
interest, and the top k are returned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.aggregates import StreetAggregate

from repro.core.interest import (
    RelevantCellCache,
    segment_interest,
    segment_mass_batched,
    segment_mass_batched_slots,
    validate_query,
)
from repro.core.results import SOIResult
from repro.core.soi import DEFAULT_EPS, SOIEngine
from repro.core.state_store import MassSlots
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import trace_span


class BaselineSOI:
    """Exhaustive k-SOI evaluation over a prepared :class:`SOIEngine`.

    Shares the engine's indexes (the paper's BL also uses the grid), so a
    timing comparison against :meth:`SOIEngine.top_k` isolates the benefit
    of the source-list filtering rather than of indexing itself.
    """

    def __init__(self, engine: SOIEngine) -> None:
        self.engine = engine

    def top_k(
        self,
        keywords: Iterable[str],
        k: int,
        eps: float = DEFAULT_EPS,
        weighted: bool = False,
        aggregate: StreetAggregate | None = None,
        use_session: bool = True,
        use_store: bool = True,
    ) -> list[SOIResult]:
        """Top-k streets by exhaustive computation.

        Output contract matches :meth:`SOIEngine.top_k`: decreasing
        interest, ties by street id, zero-interest streets omitted.

        ``aggregate`` selects how segment interests combine into a street
        interest (default: Definition 3's maximum).  Alternatives are only
        available on this exhaustive path — the SOI algorithm's bounds are
        specific to max-aggregation (see :mod:`repro.core.aggregates`).
        """
        from repro.core.aggregates import StreetAggregate, rank_streets

        interests = self.all_segment_interests(keywords, k, eps, weighted,
                                               use_session=use_session,
                                               use_store=use_store)
        network = self.engine.network
        if aggregate is None or aggregate is StreetAggregate.MAX:
            best: dict[int, tuple[float, int]] = {}
            for segment_id, value in interests.items():
                street_id = network.segment(segment_id).street_id
                current = best.get(street_id)
                if current is None or value > current[0]:
                    best[street_id] = (value, segment_id)
            ranked = sorted(
                ((value, street_id, seg_id)
                 for street_id, (value, seg_id) in best.items()
                 if value > 0),
                key=lambda item: (-item[0], item[1]))
            return [
                SOIResult(street_id=street_id,
                          street_name=network.street(street_id).name,
                          interest=value,
                          best_segment_id=seg_id)
                for value, street_id, seg_id in ranked[:k]
            ]
        out = []
        for street_id, value in rank_streets(network, interests,
                                             aggregate, eps, k):
            segments = network.segments_of_street(street_id)
            best_segment = max(segments,
                               key=lambda seg: interests[seg.id])
            out.append(SOIResult(
                street_id=street_id,
                street_name=network.street(street_id).name,
                interest=value,
                best_segment_id=best_segment.id))
        return out

    def all_segment_interests(
        self,
        keywords: Iterable[str],
        k: int = 1,
        eps: float = DEFAULT_EPS,
        weighted: bool = False,
        use_session: bool = True,
        use_store: bool = True,
        stats=None,
    ) -> dict[int, float]:
        """Exact Definition 2 interest of *every* segment.

        Also used by the effectiveness experiments that need the full
        ranking rather than just the top k.  One batched distance kernel
        runs per segment (over its whole ``eps``-neighbourhood), and with
        ``use_session=True`` the per-cell materialisations and masses are
        shared with the engine's other queries on the same keyword set.
        ``use_store=True`` memoises masses in the session's slot columns
        (the array-native store layout) instead of the dict memo — the
        values and the accumulation order are bit-identical either way.
        ``stats`` (an :class:`~repro.core.results.SOIStats` or compatible)
        collects kernel/cache counters.
        """
        query = validate_query(keywords, k, eps)
        with trace_span("soi.baseline_query", eps=eps, weighted=weighted,
                        keywords=",".join(sorted(query))):
            session = (self.engine.sessions.get(query) if use_session
                       else None)
            if session is not None:
                cache = session.cache
                if stats is not None:
                    stats.session_reused = session.queries_served > 0
                session.queries_served += 1
            else:
                cache = RelevantCellCache(self.engine.poi_index, query)
            if use_store:
                out = self._interests_via_store(
                    query, eps, weighted, session, cache, stats)
            else:
                mass_cache = (session.mass_cache(eps, weighted)
                              if session is not None else None)
                cell_maps = self.engine.cell_maps
                out = {}
                for segment in self.engine.network.iter_segments():
                    mass = segment_mass_batched(
                        segment, cell_maps.cells_of_segment(segment.id, eps),
                        cache, eps, weighted, stats=stats,
                        mass_cache=mass_cache)
                    out[segment.id] = segment_interest(
                        mass, segment.length, eps)
        obs_metrics.REGISTRY.inc("soi.baseline_queries")
        obs_metrics.REGISTRY.inc("soi.baseline_segments_scanned", len(out))
        return out

    def _interests_via_store(self, query, eps, weighted, session, cache,
                             stats) -> dict[int, float]:
        """Scan every segment through the store layout's CSR slots.

        The dense order *is* ``iter_segments`` order and each segment's
        slot run *is* its ``cells_of_segment`` order, so masses accumulate
        exactly as on the dict-memo path.
        """
        layout = self.engine.store_layout(eps)
        if session is not None:
            mass_slots = session.store_mass_slots(layout, weighted)
            count_memo = True
        else:
            mass_slots = MassSlots(layout.num_slots)
            count_memo = False
        slot_cells = layout.slot_cells
        offsets = layout.slot_offsets
        known_col = mass_slots.known
        mass_col = mass_slots.mass
        out: dict[int, float] = {}
        for dense, segment in enumerate(layout.segments):
            start = int(offsets[dense])
            stop = int(offsets[dense + 1])
            if start < stop and all(known_col[start:stop]):
                # Warm fast path: every contribution is memoised;
                # accumulate the slot run in cell order.
                if stats is not None:
                    stats.mass_cache_hits += stop - start
                mass = 0.0
                for value in mass_col[start:stop]:
                    mass += value
            else:
                mass = segment_mass_batched_slots(
                    segment, slot_cells[start:stop], range(start, stop),
                    mass_col, known_col, cache, eps, weighted,
                    stats=stats, count_memo=count_memo)
            out[segment.id] = segment_interest(mass, segment.length, eps)
        return out
