"""Length-constrained maximum-sum region queries (the closest related work).

The paper contrasts k-SOI against the region query of Cao et al. [7]:
"a connected subgraph of the road network that maximizes an aggregate
score on the relevant POIs that are included, subject to a constraint on
its total length".  That problem is NP-hard; this module implements the
standard greedy expansion approximation so the examples and ablation
benches can demonstrate the behaviours Section 1 criticises — oddly shaped
regions, quantity-over-density, and low-score spur segments attached to a
single popular street.

POIs are assigned to segments via the same ``eps`` proximity rule as
Definition 1 (rather than [7]'s assumption that POIs sit on network
vertices), so both methods see identical relevance information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.interest import (
    RelevantCellCache,
    segment_mass_in_cell,
    validate_query,
)
from repro.core.soi import DEFAULT_EPS, SOIEngine
from repro.errors import QueryError


@dataclass(frozen=True, slots=True)
class RegionResult:
    """A connected region: its segments, aggregate score and total length."""

    segment_ids: tuple[int, ...]
    total_score: float
    total_length: float

    def __len__(self) -> int:
        return len(self.segment_ids)


class RegionQuery:
    """Greedy length-constrained max-sum region search over a SOIEngine."""

    def __init__(self, engine: SOIEngine) -> None:
        self.engine = engine
        self._adjacency = _segment_adjacency(engine)

    def best_region(
        self,
        keywords: Iterable[str],
        max_length: float,
        eps: float = DEFAULT_EPS,
    ) -> RegionResult:
        """Greedy approximation of the [7] query.

        Seeds at the highest-mass segment that fits the budget, then
        repeatedly attaches the adjacent segment with the best marginal
        score (ties: shorter segment, then id) while the length budget
        allows.  Zero-score segments may be attached when they unlock
        nothing better — exactly the artificial-connectivity artefact the
        paper criticises.
        """
        if max_length <= 0:
            raise QueryError(f"max_length must be positive, got {max_length}")
        query = validate_query(keywords, 1, eps)
        cache = RelevantCellCache(self.engine.poi_index, query)
        scores: dict[int, float] = {}
        for segment in self.engine.network.iter_segments():
            mass = 0.0
            for cell in self.engine.cell_maps.cells_of_segment(segment.id, eps):
                mass += segment_mass_in_cell(segment, cell, cache, eps)
            scores[segment.id] = mass

        seed = self._best_seed(scores, max_length)
        if seed is None:
            return RegionResult((), 0.0, 0.0)
        network = self.engine.network
        region = {seed}
        total_score = scores[seed]
        total_length = network.segment(seed).length
        frontier = set(self._adjacency[seed])
        while frontier:
            best = None
            for sid in frontier:
                length = network.segment(sid).length
                if total_length + length > max_length:
                    continue
                key = (-scores[sid], length, sid)
                if best is None or key < best[0]:
                    best = (key, sid, length)
            if best is None:
                break
            _key, sid, length = best
            region.add(sid)
            total_score += scores[sid]
            total_length += length
            frontier.discard(sid)
            frontier.update(n for n in self._adjacency[sid]
                            if n not in region)
        return RegionResult(tuple(sorted(region)), total_score, total_length)

    def _best_seed(self, scores: dict[int, float],
                   max_length: float) -> int | None:
        network = self.engine.network
        best = None
        for sid, score in scores.items():
            length = network.segment(sid).length
            if length > max_length:
                continue
            key = (-score, length, sid)
            if best is None or key < best[0]:
                best = (key, sid)
        return None if best is None else best[1]


def _segment_adjacency(engine: SOIEngine) -> dict[int, tuple[int, ...]]:
    """Segments sharing a vertex, for the greedy expansion."""
    by_vertex: dict[int, list[int]] = {}
    for segment in engine.network.iter_segments():
        by_vertex.setdefault(segment.u, []).append(segment.id)
        by_vertex.setdefault(segment.v, []).append(segment.id)
    adjacency: dict[int, set[int]] = {
        seg.id: set() for seg in engine.network.iter_segments()}
    for sids in by_vertex.values():
        for sid in sids:
            adjacency[sid].update(s for s in sids if s != sid)
    return {sid: tuple(sorted(neighbors))
            for sid, neighbors in adjacency.items()}
