"""The paper's primary contributions.

* :mod:`repro.core.interest` -- segment mass / interest / street interest
  (Definitions 1-3, plus the weighted-POI variant);
* :mod:`repro.core.soi` -- the SOI top-k algorithm (Algorithm 1) behind
  :class:`~repro.core.soi.SOIEngine`;
* :mod:`repro.core.soi_baseline` -- the BL grid-scan baseline of the
  performance study (Section 5.2.1);
* :mod:`repro.core.describe` -- the describe stage: spatio-textual
  relevance/diversity measures, the naive greedy, ST_Rel+Div (Algorithm 2)
  and the nine Table 3 method variants;
* :mod:`repro.core.region` -- the length-constrained max-sum region
  comparator (Cao et al., the paper's closest related work);
* :mod:`repro.core.routes` -- route recommendation over discovered SOIs
  (the paper's stated future work).
"""

from repro.core.aggregates import StreetAggregate
from repro.core.results import SOIQuery, SOIResult, SOIStats
from repro.core.soi import AccessStrategy, SOIEngine
from repro.core.soi_baseline import BaselineSOI

__all__ = [
    "AccessStrategy",
    "BaselineSOI",
    "SOIEngine",
    "SOIQuery",
    "SOIResult",
    "SOIStats",
    "StreetAggregate",
]
