"""repro — Identifying and Describing Streets of Interest (EDBT 2016).

A full reproduction of Skoutas, Sacharidis & Stamatoukos: given a road
network, keyword-tagged POIs and geotagged photos, (1) rank streets by the
density of relevant POIs around them (the *k-SOI* query, answered by the
SOI top-k algorithm over spatio-textual grid indexes) and (2) summarise
each discovered street with a small, spatio-textually relevant and diverse
photo set (the ST_Rel+Div algorithm).

Quickstart::

    from repro import SOIEngine, build_street_profile, STRelDivDescriber
    from repro.datagen import build_preset

    city = build_preset("vienna", scale=0.25)
    engine = SOIEngine(city.network, city.pois)
    for soi in engine.top_k(["shop"], k=5):
        print(soi.street_name, round(soi.interest, 1))

    profile = build_street_profile(
        city.network, engine.top_k(["shop"], k=1)[0].street_id,
        city.photos, eps=0.0005)
    summary = STRelDivDescriber(profile).select(k=3)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.aggregates import StreetAggregate
from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.profile import (
    DEFAULT_RHO,
    StreetProfile,
    build_street_profile,
)
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.describe.variants import VARIANTS, run_variant
from repro.core.region import RegionQuery
from repro.core.results import SOIQuery, SOIResult, SOIStats
from repro.core.routes import Route, recommend_route
from repro.core.soi import DEFAULT_EPS, AccessStrategy, SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.data.photo import Photo, PhotoSet
from repro.data.poi import POI, POISet
from repro.analysis.contracts import contracts_enabled, enable_contracts
from repro.errors import (
    ContractViolation,
    DataError,
    GridIndexError,
    IndexError_,  # repro-lint: disable=REP-H304 (back-compat re-export)
    NetworkError,
    QueryError,
    ReproError,
)
from repro.network.builder import RoadNetworkBuilder
from repro.network.model import RoadNetwork, Segment, Street, Vertex

__version__ = "1.0.0"

__all__ = [
    "AccessStrategy",
    "BaselineSOI",
    "ContractViolation",
    "DEFAULT_EPS",
    "DEFAULT_RHO",
    "DataError",
    "GreedyDescriber",
    "GridIndexError",
    "IndexError_",
    "NetworkError",
    "POI",
    "POISet",
    "Photo",
    "PhotoSet",
    "QueryError",
    "RegionQuery",
    "ReproError",
    "RoadNetwork",
    "RoadNetworkBuilder",
    "Route",
    "SOIEngine",
    "SOIQuery",
    "SOIResult",
    "SOIStats",
    "STRelDivDescriber",
    "StreetAggregate",
    "Segment",
    "Street",
    "StreetProfile",
    "VARIANTS",
    "Vertex",
    "build_street_profile",
    "contracts_enabled",
    "enable_contracts",
    "recommend_route",
    "run_variant",
]
