"""OpenMetrics / Prometheus text exposition for the metrics registry.

:func:`registry_to_openmetrics` renders a :class:`~repro.obs.metrics.
MetricsRegistry` (or one of its ``to_dict()`` dumps) as the OpenMetrics
text format a Prometheus scraper ingests:

* counters become ``<name>_total`` samples of type ``counter``;
* gauges become plain samples of type ``gauge``;
* log2-bucket histograms become cumulative ``<name>_bucket{le="..."}``
  series (upper edges are the exact ``2**e`` bucket bounds) plus the
  ``_sum``/``_count`` pair, type ``histogram``;
* quantile sketches become ``summary`` series with
  ``{quantile="0.5|0.9|0.99"}`` labels plus ``_sum``/``_count``.

The output is **stable**: metric names are sanitised deterministically
(dots and dashes to underscores, ``repro_`` prefix), every family and
every sample is emitted in sorted order, floats render via ``repr``
(shortest round-trip), and — matching the repo's determinism convention
— **no timestamps** are written.  Rendering the same registry twice
yields byte-identical text, so an exposition file can be committed or
diffed like any other report.
"""

from __future__ import annotations

import math
import re
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, bucket_bounds

SUMMARY_QUANTILES = (0.5, 0.9, 0.99)
"""Quantiles exposed for each sketch (p50/p90/p99, the serve headline)."""

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitised OpenMetrics metric name for a registry key.

    ``serve.request_s`` becomes ``repro_serve_request_s``; any character
    outside the legal set collapses to ``_``.  The ``repro_`` prefix
    namespaces the exposition against other jobs on the same scraper.
    """
    flat = _INVALID_CHARS.sub("_", name)
    if not flat.startswith("repro_"):
        flat = "repro_" + flat
    if not _NAME_OK.match(flat):  # pragma: no cover - prefix guarantees it
        flat = "repro_invalid"
    return flat


def _render_value(value: float) -> str:
    """Canonical sample value: shortest round-trip repr, ints unpadded."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:  # repro-lint: disable=REP-N201 (exact integral check for canonical rendering)
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def registry_to_openmetrics(registry: "MetricsRegistry | dict") -> str:
    """The full registry as OpenMetrics text (see module docstring)."""
    dump = (registry.to_dict() if isinstance(registry, MetricsRegistry)
            else registry)
    lines: list[str] = []
    for name, value in sorted(dump.get("counters", {}).items()):
        flat = metric_name(name)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat}_total {_render_value(value)}")
    for name, value in sorted(dump.get("gauges", {}).items()):
        flat = metric_name(name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_render_value(value)}")
    for name, hist in sorted(dump.get("histograms", {}).items()):
        flat = metric_name(name)
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for exp in sorted(int(e) for e in hist.get("buckets", {})):
            cumulative += int(hist["buckets"][str(exp)])
            upper = bucket_bounds(exp)[1]
            lines.append(f'{flat}_bucket{{le="{_render_value(upper)}"}} '
                         f"{cumulative}")
        lines.append(f'{flat}_bucket{{le="+Inf"}} '
                     f"{int(hist.get('count', 0))}")
        lines.append(f"{flat}_sum {_render_value(hist.get('sum', 0.0))}")
        lines.append(f"{flat}_count {int(hist.get('count', 0))}")
    for name, sketch in sorted(dump.get("sketches", {}).items()):
        flat = metric_name(name)
        lines.append(f"# TYPE {flat} summary")
        for q in SUMMARY_QUANTILES:
            value = _sketch_quantile(sketch, q)
            lines.append(f'{flat}{{quantile="{_render_value(q)}"}} '
                         f"{_render_value(value)}")
        lines.append(f"{flat}_sum {_render_value(sketch.get('sum', 0.0))}")
        lines.append(f"{flat}_count {int(sketch.get('count', 0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _sketch_quantile(dump: dict, q: float) -> float:
    """Nearest-rank quantile straight off a sketch dump (no rebuild)."""
    count = int(dump.get("count", 0))
    if count == 0:
        return 0.0
    rank = max(1, min(count, math.ceil(q * count)))
    cumulative = 0
    value = 0.0
    for exp in sorted(int(e) for e in dump.get("buckets", {})):
        bucket = dump["buckets"][str(exp)]
        cumulative += int(bucket.get("count", 0))
        value = float(bucket.get("max", 0.0))
        if cumulative >= rank:
            return value
    return value


def write_openmetrics(path: "str | Path",
                      registry: "MetricsRegistry | dict") -> Path:
    path = Path(path)
    path.write_text(registry_to_openmetrics(registry), encoding="utf-8")
    return path


__all__ = [
    "SUMMARY_QUANTILES",
    "metric_name",
    "registry_to_openmetrics",
    "write_openmetrics",
]
