"""Slow-query log: span tree + counters for queries over a threshold.

Disabled unless a threshold is configured — via the ``REPRO_SLOWLOG``
environment variable (a float, seconds) or :func:`configure`.  The query
entry points bracket their work with ``TRACER.mark()`` and hand the
elapsed seconds, the query's counters and its span window to
:meth:`SlowQueryLog.maybe_record`; entries keep the full span tree (as
dicts) so a regression flagged by ``--check-against`` can be explained
from the log alone, without re-running the query under a profiler.

A threshold of ``0.0`` records every query — useful for tests and for
capturing one-off traces without picking a cutoff.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Sequence

from repro.obs.tracer import SpanRecord, current_trace_id

DEFAULT_CAPACITY = 32


def _env_threshold(value: str | None) -> float | None:
    value = (value or "").strip()
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        return None


class SlowQueryLog:
    """Bounded log of the slowest-query evidence bundles."""

    def __init__(self, threshold_s: float | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.threshold_s = threshold_s
        self._records: deque[dict] = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def configure(self, threshold_s: float | None) -> None:
        """Set the slow threshold in seconds (``None`` disables)."""
        self.threshold_s = threshold_s

    def maybe_record(self, kind: str, descriptor: dict, seconds: float,
                     counters: dict | None = None,
                     spans: Sequence[SpanRecord] = (),
                     trace_id: str | None = None) -> bool:
        """Record the query if it is slow enough; returns whether it was.

        ``trace_id`` defaults to the trace id bound to the calling thread
        (see :class:`repro.obs.tracer.trace_context`), so a slow query
        found in the log can be joined against the stitched Chrome trace
        and the latency-sketch exemplars without any caller plumbing.
        """
        threshold = self.threshold_s
        if threshold is None or seconds < threshold:
            return False
        if trace_id is None:
            trace_id = current_trace_id()
        self._records.append({
            "kind": kind,
            "descriptor": dict(descriptor),
            "seconds": seconds,
            "threshold_s": threshold,
            "trace_id": trace_id,
            "counters": dict(counters) if counters else {},
            "spans": [span.to_dict() for span in spans],
        })
        return True

    def records(self) -> list[dict]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


SLOWLOG = SlowQueryLog(threshold_s=_env_threshold(os.environ.get("REPRO_SLOWLOG")))
"""Process-global slow-query log used by the SOI/describe entry points."""


def configure(threshold_s: float | None) -> None:
    """Configure the global slow-query log threshold (seconds)."""
    SLOWLOG.configure(threshold_s)


__all__ = [
    "DEFAULT_CAPACITY",
    "SLOWLOG",
    "SlowQueryLog",
    "configure",
]
