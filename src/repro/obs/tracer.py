"""A near-zero-overhead span tracer for the SOI/describe/serve hot paths.

Tracing is **off by default**: every instrumentation site reduces to one
module-attribute read (``tracer.ENABLED``) — the same switch discipline as
:mod:`repro.analysis.contracts` — plus, for phase-level sites, one no-op
context-manager round trip.  Enabled via the ``REPRO_TRACE=1`` environment
variable, the ``--trace`` CLI flags, or :func:`enable_tracing` in code.

When enabled, :class:`trace_span` records :class:`SpanRecord` entries into
the process-global :class:`Tracer`'s **monotonic-clock ring buffer**
(``time.perf_counter_ns`` timestamps, a bounded :class:`~collections.deque`
that drops the oldest finished spans once full).  Spans nest through a
per-thread open-span stack, so the records form one well-formed tree per
thread; records are appended on span *exit*, which means children precede
their parents in buffer order (exporters in :mod:`repro.obs.export`
reconstruct the tree from ``parent_id``).

``trace_span`` is both a context manager and a decorator::

    with trace_span("soi.filter", k=k):
        ...

    @trace_span("snapshot.export")
    def export(...): ...

The decorator form re-checks ``ENABLED`` on every call, so decorating at
import time (when tracing is usually off) costs one branch per call.

This module is also the only sanctioned clock source for ``core/`` and
``serve/`` code: :func:`perf_now` / :func:`monotonic_now` re-export the
monotonic timers so the REP-O501 lint rule can flag direct ``time.*``
timer calls outside :mod:`repro.obs`.

**Trace context.**  A *trace id* is a request-scoped correlation key: the
serve layer mints one deterministically per request
(:func:`mint_trace_id`, seeded from the request's sequence number — no
wall clock, no randomness), binds it with :class:`trace_context`, and
every span finished inside the binding carries it.  The same id travels
into slow-query-log entries and latency-sketch exemplars, so a slow
request found in any one signal can be joined against the others.

**Span-name registry.**  :data:`SPAN_NAMES` is the closed set of span
names the instrumented packages may use.  Lint rule REP-O503 rejects
``trace_span`` call sites under ``core/``/``serve/``/``index/`` whose
name is not in this table (or is not a string literal), which keeps span
cardinality bounded and names typo-free — a misspelled phase would
otherwise silently vanish from every profile that filters by name.
"""

from __future__ import annotations

import functools
import os
import threading
from collections import deque
from dataclasses import dataclass
from time import monotonic as monotonic_now
from time import perf_counter as perf_now
from time import perf_counter_ns as _clock_ns

DEFAULT_CAPACITY = 65536
"""Ring-buffer size of the global tracer: enough for several fully traced
queries; older finished spans are dropped (and counted) beyond it."""

DROPPED_SPANS_METRIC = "obs.trace.dropped_spans"
"""Registry counter bumped whenever the ring buffer evicts a finished
span: a nonzero value means traces read from the buffer are truncated."""

SPAN_NAMES = frozenset({
    # Algorithm 1 (k-SOI: filter / refine round structure).
    "soi.query", "soi.baseline_query", "soi.build_source_lists",
    "soi.filter", "soi.pull", "soi.cell_gather", "soi.mass_kernel",
    "soi.termination_check", "soi.refine",
    # Algorithm 2 (describe: round / bounds structure).
    "describe.select", "describe.round", "describe.filter",
    "describe.refine", "describe.cell_bounds", "describe.fold_bounds",
    "describe.profile_build",
    # Index construction and eps-augmentation.
    "index.build", "index.poi_grid", "index.cell_maps",
    "index.source_list_orders", "index.store_layout", "index.augment_eps",
    # Snapshot lifecycle and serving.
    "snapshot.export", "snapshot.attach", "snapshot.attach_network",
    "snapshot.attach_pois", "snapshot.attach_photo_set",
    "snapshot.attach_poi_index", "snapshot.attach_cell_maps",
    "snapshot.attach_engine",
    "serve.request",
})
"""Central span-name table (see module docstring).  Adding an
instrumentation site under ``core/``/``serve/``/``index/`` requires
registering its name here first; REP-O503 enforces it."""


def _env_enabled(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


ENABLED: bool = _env_enabled(os.environ.get("REPRO_TRACE"))
"""Module-level switch read by the instrumentation sites.  Mutate only
through :func:`enable_tracing`."""


def enable_tracing(on: bool = True) -> None:
    """Turn span tracing on (or off) for this process."""
    global ENABLED
    ENABLED = bool(on)


def tracing_enabled() -> bool:
    """Whether span tracing is currently active."""
    return ENABLED


class tracing_scope:
    """Context manager that sets the tracing switch and restores it on exit.

    Used by the bench harness and the tests so a traced measurement cannot
    leak the enabled state into subsequent untraced ones.
    """

    __slots__ = ("_on", "_previous")

    def __init__(self, on: bool = True) -> None:
        self._on = bool(on)
        self._previous = ENABLED

    def __enter__(self) -> "tracing_scope":
        self._previous = ENABLED
        enable_tracing(self._on)
        return self

    def __exit__(self, *exc_info) -> bool:
        enable_tracing(self._previous)
        return False


# -- trace context ----------------------------------------------------------

_context = threading.local()


def mint_trace_id(request_id: int, namespace: str = "req") -> str:
    """Deterministic request-scoped trace id.

    Derived purely from the request's sequence number (plus an optional
    caller namespace) — no wall clock, no randomness — so replaying the
    same workload mints the same ids and traces stay joinable across
    runs.
    """
    return f"{namespace}-{request_id:06d}"


def current_trace_id() -> str | None:
    """The trace id bound to this thread, or ``None`` outside a request."""
    return getattr(_context, "trace_id", None)


class trace_context:
    """Bind a trace id to the current thread for the ``with`` block.

    Every span finished inside the block (and every slow-query-log entry
    and sketch exemplar recorded from it) carries the id.  Bindings nest:
    the previous id is restored on exit, so a request served inside an
    already-bound scope cannot leak its id outwards.
    """

    __slots__ = ("_trace_id", "_previous")

    def __init__(self, trace_id: str | None) -> None:
        self._trace_id = trace_id
        self._previous: str | None = None

    def __enter__(self) -> "trace_context":
        self._previous = getattr(_context, "trace_id", None)
        _context.trace_id = self._trace_id
        return self

    def __exit__(self, *exc_info) -> bool:
        _context.trace_id = self._previous
        return False


@dataclass(slots=True)
class SpanRecord:
    """One finished span: monotonic nanosecond interval plus tree links.

    ``parent_id`` is ``-1`` for a root span.  ``attrs`` carries the keyword
    attributes given to :class:`trace_span`; a span that exited through an
    exception gains an ``"error"`` attribute holding the exception type
    name.  ``trace_id`` is the request correlation key bound via
    :class:`trace_context` when the span finished (``None`` outside a
    request).
    """

    span_id: int
    parent_id: int
    name: str
    start_ns: int
    end_ns: int
    thread_id: int
    attrs: dict | None = None
    trace_id: str | None = None

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the exporters)."""
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output (worker shipping)."""
        return cls(
            span_id=int(data["span_id"]),
            parent_id=int(data["parent_id"]),
            name=data["name"],
            start_ns=int(data["start_ns"]),
            end_ns=int(data["end_ns"]),
            thread_id=int(data.get("thread_id", 0)),
            attrs=dict(data["attrs"]) if data.get("attrs") else None,
            trace_id=data.get("trace_id"),
        )


class Tracer:
    """A ring buffer of finished spans plus per-thread open-span stacks.

    Span ids increase monotonically per tracer; the buffer keeps the most
    recent ``capacity`` finished spans (``dropped`` counts the overflow).
    All buffer mutation happens under a lock, and each thread nests spans
    on its own stack, so concurrent traced sections (e.g. the bench
    harness's threaded per-city setup) produce interleaved but internally
    well-formed trees.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.finished_total = 0
        self.dropped = 0

    # -- span lifecycle (driven by trace_span) -----------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, attrs: dict | None = None) -> tuple:
        """Open a span; returns the frame to pass to :meth:`finish`."""
        stack = self._stack()
        parent_id = stack[-1][0] if stack else -1
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        frame = (span_id, parent_id, name, attrs, _clock_ns())
        stack.append(frame)
        return frame

    def finish(self, frame: tuple, exc_type: type | None = None) -> SpanRecord:
        """Close a span frame and append its record to the ring buffer."""
        end_ns = _clock_ns()
        stack = self._stack()
        # ``with``-statement discipline guarantees LIFO unwinding, including
        # on exceptions; tolerate a mismatched frame rather than corrupting
        # sibling spans.
        if stack and stack[-1] is frame:
            stack.pop()
        elif frame in stack:  # pragma: no cover - defensive
            stack.remove(frame)
        span_id, parent_id, name, attrs, start_ns = frame
        if exc_type is not None:
            attrs = dict(attrs) if attrs else {}
            attrs["error"] = exc_type.__name__
        record = SpanRecord(
            span_id=span_id, parent_id=parent_id, name=name,
            start_ns=start_ns, end_ns=end_ns,
            thread_id=threading.get_ident(), attrs=attrs,
            trace_id=getattr(_context, "trace_id", None))
        with self._lock:
            dropping = len(self._buffer) == self.capacity
            if dropping:
                self.dropped += 1
            self._buffer.append(record)
            self.finished_total += 1
        if dropping:
            # Surfaced as a registry counter so truncated ring buffers are
            # never silently misread as complete profiles (the import is
            # deferred: metrics is a sibling leaf module, but the common
            # non-dropping path should not even touch it).
            from repro.obs import metrics as _metrics

            _metrics.REGISTRY.inc(DROPPED_SPANS_METRIC)
        return record

    # -- buffer access -----------------------------------------------------

    def mark(self) -> int:
        """The next span id to be assigned (for :meth:`spans_since`)."""
        with self._lock:
            return self._next_id

    def spans(self) -> list[SpanRecord]:
        """Finished spans currently in the ring buffer (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def spans_since(self, mark: int) -> list[SpanRecord]:
        """Finished spans whose id was assigned at or after ``mark``."""
        return [span for span in self.spans() if span.span_id >= mark]

    def drain(self) -> list[SpanRecord]:
        """Return and clear the buffered spans."""
        with self._lock:
            out = list(self._buffer)
            self._buffer.clear()
            return out

    def reset(self) -> None:
        """Clear the buffer and all counters (ids keep increasing)."""
        with self._lock:
            self._buffer.clear()
            self.finished_total = 0
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


TRACER = Tracer()
"""The process-global tracer all :class:`trace_span` sites record into.
Deliberately per-process: serving workers trace into their own buffer, and
only the (picklable) metrics registry travels back to the parent."""


class trace_span:
    """Span over the global tracer — context manager *and* decorator.

    As a context manager it opens a span when tracing is enabled and is a
    no-op otherwise.  As a decorator it wraps the function in the same
    span, re-checking the switch on every call.  Keyword arguments become
    span attributes.
    """

    __slots__ = ("_name", "_attrs", "_frame")

    def __init__(self, name: str, **attrs) -> None:
        self._name = name
        self._attrs = attrs or None
        self._frame = None

    def __enter__(self) -> "trace_span":
        if ENABLED:
            self._frame = TRACER.begin(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        frame = self._frame
        if frame is not None:
            self._frame = None
            TRACER.finish(frame, exc_type)
        return False

    def __call__(self, fn):
        name, attrs = self._name, self._attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            frame = TRACER.begin(name, attrs)
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:
                TRACER.finish(frame, type(exc))
                raise
            TRACER.finish(frame, None)
            return result

        return wrapper


__all__ = [
    "DEFAULT_CAPACITY",
    "DROPPED_SPANS_METRIC",
    "ENABLED",
    "SPAN_NAMES",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "current_trace_id",
    "enable_tracing",
    "mint_trace_id",
    "monotonic_now",
    "perf_now",
    "trace_context",
    "trace_span",
    "tracing_enabled",
    "tracing_scope",
]
