"""A near-zero-overhead span tracer for the SOI/describe/serve hot paths.

Tracing is **off by default**: every instrumentation site reduces to one
module-attribute read (``tracer.ENABLED``) — the same switch discipline as
:mod:`repro.analysis.contracts` — plus, for phase-level sites, one no-op
context-manager round trip.  Enabled via the ``REPRO_TRACE=1`` environment
variable, the ``--trace`` CLI flags, or :func:`enable_tracing` in code.

When enabled, :class:`trace_span` records :class:`SpanRecord` entries into
the process-global :class:`Tracer`'s **monotonic-clock ring buffer**
(``time.perf_counter_ns`` timestamps, a bounded :class:`~collections.deque`
that drops the oldest finished spans once full).  Spans nest through a
per-thread open-span stack, so the records form one well-formed tree per
thread; records are appended on span *exit*, which means children precede
their parents in buffer order (exporters in :mod:`repro.obs.export`
reconstruct the tree from ``parent_id``).

``trace_span`` is both a context manager and a decorator::

    with trace_span("soi.filter", k=k):
        ...

    @trace_span("snapshot.export")
    def export(...): ...

The decorator form re-checks ``ENABLED`` on every call, so decorating at
import time (when tracing is usually off) costs one branch per call.

This module is also the only sanctioned clock source for ``core/`` and
``serve/`` code: :func:`perf_now` / :func:`monotonic_now` re-export the
monotonic timers so the REP-O501 lint rule can flag direct ``time.*``
timer calls outside :mod:`repro.obs`.
"""

from __future__ import annotations

import functools
import os
import threading
from collections import deque
from dataclasses import dataclass
from time import monotonic as monotonic_now
from time import perf_counter as perf_now
from time import perf_counter_ns as _clock_ns

DEFAULT_CAPACITY = 65536
"""Ring-buffer size of the global tracer: enough for several fully traced
queries; older finished spans are dropped (and counted) beyond it."""


def _env_enabled(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


ENABLED: bool = _env_enabled(os.environ.get("REPRO_TRACE"))
"""Module-level switch read by the instrumentation sites.  Mutate only
through :func:`enable_tracing`."""


def enable_tracing(on: bool = True) -> None:
    """Turn span tracing on (or off) for this process."""
    global ENABLED
    ENABLED = bool(on)


def tracing_enabled() -> bool:
    """Whether span tracing is currently active."""
    return ENABLED


class tracing_scope:
    """Context manager that sets the tracing switch and restores it on exit.

    Used by the bench harness and the tests so a traced measurement cannot
    leak the enabled state into subsequent untraced ones.
    """

    __slots__ = ("_on", "_previous")

    def __init__(self, on: bool = True) -> None:
        self._on = bool(on)
        self._previous = ENABLED

    def __enter__(self) -> "tracing_scope":
        self._previous = ENABLED
        enable_tracing(self._on)
        return self

    def __exit__(self, *exc_info) -> bool:
        enable_tracing(self._previous)
        return False


@dataclass(slots=True)
class SpanRecord:
    """One finished span: monotonic nanosecond interval plus tree links.

    ``parent_id`` is ``-1`` for a root span.  ``attrs`` carries the keyword
    attributes given to :class:`trace_span`; a span that exited through an
    exception gains an ``"error"`` attribute holding the exception type
    name.
    """

    span_id: int
    parent_id: int
    name: str
    start_ns: int
    end_ns: int
    thread_id: int
    attrs: dict | None = None

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the exporters)."""
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Tracer:
    """A ring buffer of finished spans plus per-thread open-span stacks.

    Span ids increase monotonically per tracer; the buffer keeps the most
    recent ``capacity`` finished spans (``dropped`` counts the overflow).
    All buffer mutation happens under a lock, and each thread nests spans
    on its own stack, so concurrent traced sections (e.g. the bench
    harness's threaded per-city setup) produce interleaved but internally
    well-formed trees.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.finished_total = 0
        self.dropped = 0

    # -- span lifecycle (driven by trace_span) -----------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, attrs: dict | None = None) -> tuple:
        """Open a span; returns the frame to pass to :meth:`finish`."""
        stack = self._stack()
        parent_id = stack[-1][0] if stack else -1
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        frame = (span_id, parent_id, name, attrs, _clock_ns())
        stack.append(frame)
        return frame

    def finish(self, frame: tuple, exc_type: type | None = None) -> SpanRecord:
        """Close a span frame and append its record to the ring buffer."""
        end_ns = _clock_ns()
        stack = self._stack()
        # ``with``-statement discipline guarantees LIFO unwinding, including
        # on exceptions; tolerate a mismatched frame rather than corrupting
        # sibling spans.
        if stack and stack[-1] is frame:
            stack.pop()
        elif frame in stack:  # pragma: no cover - defensive
            stack.remove(frame)
        span_id, parent_id, name, attrs, start_ns = frame
        if exc_type is not None:
            attrs = dict(attrs) if attrs else {}
            attrs["error"] = exc_type.__name__
        record = SpanRecord(
            span_id=span_id, parent_id=parent_id, name=name,
            start_ns=start_ns, end_ns=end_ns,
            thread_id=threading.get_ident(), attrs=attrs)
        with self._lock:
            if len(self._buffer) == self.capacity:
                self.dropped += 1
            self._buffer.append(record)
            self.finished_total += 1
        return record

    # -- buffer access -----------------------------------------------------

    def mark(self) -> int:
        """The next span id to be assigned (for :meth:`spans_since`)."""
        with self._lock:
            return self._next_id

    def spans(self) -> list[SpanRecord]:
        """Finished spans currently in the ring buffer (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def spans_since(self, mark: int) -> list[SpanRecord]:
        """Finished spans whose id was assigned at or after ``mark``."""
        return [span for span in self.spans() if span.span_id >= mark]

    def drain(self) -> list[SpanRecord]:
        """Return and clear the buffered spans."""
        with self._lock:
            out = list(self._buffer)
            self._buffer.clear()
            return out

    def reset(self) -> None:
        """Clear the buffer and all counters (ids keep increasing)."""
        with self._lock:
            self._buffer.clear()
            self.finished_total = 0
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


TRACER = Tracer()
"""The process-global tracer all :class:`trace_span` sites record into.
Deliberately per-process: serving workers trace into their own buffer, and
only the (picklable) metrics registry travels back to the parent."""


class trace_span:
    """Span over the global tracer — context manager *and* decorator.

    As a context manager it opens a span when tracing is enabled and is a
    no-op otherwise.  As a decorator it wraps the function in the same
    span, re-checking the switch on every call.  Keyword arguments become
    span attributes.
    """

    __slots__ = ("_name", "_attrs", "_frame")

    def __init__(self, name: str, **attrs) -> None:
        self._name = name
        self._attrs = attrs or None
        self._frame = None

    def __enter__(self) -> "trace_span":
        if ENABLED:
            self._frame = TRACER.begin(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        frame = self._frame
        if frame is not None:
            self._frame = None
            TRACER.finish(frame, exc_type)
        return False

    def __call__(self, fn):
        name, attrs = self._name, self._attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            frame = TRACER.begin(name, attrs)
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:
                TRACER.finish(frame, type(exc))
                raise
            TRACER.finish(frame, None)
            return result

        return wrapper


__all__ = [
    "DEFAULT_CAPACITY",
    "ENABLED",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "enable_tracing",
    "monotonic_now",
    "perf_now",
    "trace_span",
    "tracing_enabled",
    "tracing_scope",
]
