"""Span exporters: tree assembly, JSON-lines and Chrome trace-event files.

The tracer's ring buffer holds finished spans ordered by *end* time, so a
child always precedes its parent.  :func:`build_tree` reconstructs the
forest from ``parent_id`` links; :func:`self_times_ns` computes per-span
self time (duration minus direct children) — the quantity the acceptance
criterion sums against traced wall time.

Chrome format: one complete-event (``"ph": "X"``) per span, timestamps
and durations in microseconds relative to the earliest span start, thread
ids mapped to small integers.  Load the file at ``chrome://tracing`` or
https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.tracer import SpanRecord


def build_tree(spans: Sequence[SpanRecord]) -> dict[int, list[SpanRecord]]:
    """Children grouped by parent span id (roots under key ``-1``).

    Children keep buffer order; a span whose parent is not in ``spans``
    (evicted from the ring, or outside a ``spans_since`` window) is
    treated as a root.
    """
    present = {span.span_id for span in spans}
    children: dict[int, list[SpanRecord]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in present else -1
        children.setdefault(parent, []).append(span)
    return children


def roots(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """Top-level spans of the forest (see :func:`build_tree`)."""
    return build_tree(spans).get(-1, [])


def self_times_ns(spans: Sequence[SpanRecord]) -> dict[int, int]:
    """Per-span self time: duration minus the sum of direct children."""
    children = build_tree(spans)
    out: dict[int, int] = {}
    for span in spans:
        child_ns = sum(c.duration_ns for c in children.get(span.span_id, ()))
        out[span.span_id] = span.duration_ns - child_ns
    return out


def self_time_by_name(spans: Sequence[SpanRecord]) -> dict[str, int]:
    """Self time in nanoseconds aggregated over span names."""
    selfs = self_times_ns(spans)
    out: dict[str, int] = {}
    for span in spans:
        out[span.name] = out.get(span.name, 0) + selfs[span.span_id]
    return out


# -- JSON-lines ------------------------------------------------------------

def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """One compact JSON object per line, in buffer order."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                   for span in spans)


def write_jsonl(path: str | Path, spans: Iterable[SpanRecord]) -> Path:
    path = Path(path)
    path.write_text(spans_to_jsonl(spans), encoding="utf-8")
    return path


# -- Chrome trace-event format ---------------------------------------------

def spans_to_chrome(spans: Sequence[SpanRecord]) -> dict:
    """Chrome ``chrome://tracing`` trace-event JSON object."""
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin_ns = min(span.start_ns for span in spans)
    tids: dict[int, int] = {}
    pid = os.getpid()
    events = []
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        tid = tids.setdefault(span.thread_id, len(tids))
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        if span.attrs:
            args.update(span.attrs)
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start_ns - origin_ns) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, spans: Sequence[SpanRecord]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(spans_to_chrome(spans)), encoding="utf-8")
    return path


__all__ = [
    "build_tree",
    "roots",
    "self_time_by_name",
    "self_times_ns",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
