"""Span exporters: tree assembly, JSON-lines and Chrome trace-event files.

The tracer's ring buffer holds finished spans ordered by *end* time, so a
child always precedes its parent.  :func:`build_tree` reconstructs the
forest from ``parent_id`` links; :func:`self_times_ns` computes per-span
self time (duration minus direct children) — the quantity the acceptance
criterion sums against traced wall time.

Chrome format: one complete-event (``"ph": "X"``) per span, timestamps
and durations in microseconds relative to the earliest span start, thread
ids mapped to small integers.  Load the file at ``chrome://tracing`` or
https://ui.perfetto.dev.

Cross-process stitching: serving workers trace into their own ring
buffers with their own ``perf_counter_ns`` origins, so worker timestamps
are **not comparable** to the parent's.  :func:`stitch_serve_requests`
never compares the two clocks — it shifts each request's worker-span
window so it *ends* at the parent-observed arrival time (durations, which
are origin-free, are preserved exactly), re-keys span ids into one id
space, and hangs each worker tree under a synthesized ``serve.request``
parent span carrying worker id / queue-wait / batch-group annotations.
:func:`validate_serve_trace` is the CI-smoke schema check over the
resulting Chrome file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.tracer import SpanRecord


def build_tree(spans: Sequence[SpanRecord]) -> dict[int, list[SpanRecord]]:
    """Children grouped by parent span id (roots under key ``-1``).

    Children keep buffer order; a span whose parent is not in ``spans``
    (evicted from the ring, or outside a ``spans_since`` window) is
    treated as a root.
    """
    present = {span.span_id for span in spans}
    children: dict[int, list[SpanRecord]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in present else -1
        children.setdefault(parent, []).append(span)
    return children


def roots(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """Top-level spans of the forest (see :func:`build_tree`)."""
    return build_tree(spans).get(-1, [])


def self_times_ns(spans: Sequence[SpanRecord]) -> dict[int, int]:
    """Per-span self time: duration minus the sum of direct children."""
    children = build_tree(spans)
    out: dict[int, int] = {}
    for span in spans:
        child_ns = sum(c.duration_ns for c in children.get(span.span_id, ()))
        out[span.span_id] = span.duration_ns - child_ns
    return out


def self_time_by_name(spans: Sequence[SpanRecord]) -> dict[str, int]:
    """Self time in nanoseconds aggregated over span names."""
    selfs = self_times_ns(spans)
    out: dict[str, int] = {}
    for span in spans:
        out[span.name] = out.get(span.name, 0) + selfs[span.span_id]
    return out


# -- JSON-lines ------------------------------------------------------------

def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """One compact JSON object per line, in buffer order."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                   for span in spans)


def write_jsonl(path: str | Path, spans: Iterable[SpanRecord]) -> Path:
    path = Path(path)
    path.write_text(spans_to_jsonl(spans), encoding="utf-8")
    return path


# -- Chrome trace-event format ---------------------------------------------

def spans_to_chrome(spans: Sequence[SpanRecord]) -> dict:
    """Chrome ``chrome://tracing`` trace-event JSON object."""
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin_ns = min(span.start_ns for span in spans)
    tids: dict[int, int] = {}
    pid = os.getpid()
    events = []
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        tid = tids.setdefault(span.thread_id, len(tids))
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        if span.attrs:
            args.update(span.attrs)
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start_ns - origin_ns) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, spans: Sequence[SpanRecord]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(spans_to_chrome(spans)), encoding="utf-8")
    return path


# -- cross-process stitching -------------------------------------------------

def stitch_serve_requests(requests: Sequence[dict]) -> list[SpanRecord]:
    """Stitch per-request worker span shipments into one span forest.

    ``requests`` is the server's trace log: one dict per completed request
    with keys ``seq``, ``trace_id``, ``worker``, ``kind``, ``submit_ns``,
    ``arrival_ns`` (parent-clock nanoseconds), ``queue_wait_s``,
    ``batch_group``, and ``worker_spans`` (the worker's
    :meth:`~repro.obs.tracer.SpanRecord.to_dict` dumps for that request).

    For each request a ``serve.request`` parent span spanning
    ``[submit, arrival]`` on the parent clock is synthesized, and the
    worker's spans are rebased onto the parent clock by a per-request
    shift that aligns the *end* of the worker-span window with the
    arrival time — worker and parent ``perf_counter_ns`` origins are
    never compared, only origin-free durations survive.  Span ids are
    re-keyed into one contiguous id space (worker buffers reuse ids
    across processes); each worker's spans land on a synthetic thread id
    of ``worker + 1`` so every worker gets its own track in the Chrome
    view (parent spans sit on track ``0``).
    """
    stitched: list[SpanRecord] = []
    next_id = 0
    for req in sorted(requests, key=lambda r: r["seq"]):
        worker_spans = [SpanRecord.from_dict(d)
                        for d in req.get("worker_spans") or ()]
        submit_ns = int(req["submit_ns"])
        arrival_ns = int(req["arrival_ns"])
        parent_start = submit_ns
        shift = 0
        if worker_spans:
            shift = arrival_ns - max(s.end_ns for s in worker_spans)
            # Durations are real time in both processes, so the shifted
            # window normally fits inside [submit, arrival]; if scheduler
            # jitter makes it poke out on the left, widen the parent
            # instead of truncating the child.
            parent_start = min(
                parent_start,
                min(s.start_ns for s in worker_spans) + shift)
        parent_id = next_id
        next_id += 1
        attrs = {"seq": int(req["seq"])}
        for key in ("worker", "kind", "queue_wait_s", "batch_group"):
            if req.get(key) is not None:
                attrs[key] = req[key]
        stitched.append(SpanRecord(
            span_id=parent_id, parent_id=-1, name="serve.request",
            start_ns=parent_start, end_ns=arrival_ns, thread_id=0,
            attrs=attrs, trace_id=req.get("trace_id")))
        key_map = {}
        for span in worker_spans:
            key_map[span.span_id] = next_id
            next_id += 1
        track = int(req.get("worker", 0)) + 1
        for span in worker_spans:
            stitched.append(SpanRecord(
                span_id=key_map[span.span_id],
                parent_id=key_map.get(span.parent_id, parent_id),
                name=span.name,
                start_ns=span.start_ns + shift,
                end_ns=span.end_ns + shift,
                thread_id=track,
                attrs=span.attrs,
                trace_id=span.trace_id or req.get("trace_id")))
    return stitched


_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid", "args")
_NEST_SLACK_US = 0.01  # microsecond rounding slack for containment checks


def validate_serve_trace(trace: dict) -> list[str]:
    """Schema-check a stitched Chrome trace; returns problem strings.

    Asserts the shape the CI smoke relies on: every event is a complete
    event with the expected keys, timestamps are monotonic (sorted by
    ``ts``) and non-negative, every non-``serve.request`` span's parent
    id resolves to a present event that temporally contains it (no
    orphan parents), and every ``serve.request`` span is a root carrying
    the worker id and queue-wait annotations.  An empty list means the
    trace is valid.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    by_id: dict[int, dict] = {}
    previous_ts = None
    for index, event in enumerate(events):
        missing = [k for k in _EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"event {index}: missing keys {missing}")
            continue
        if event["ph"] != "X":
            problems.append(f"event {index}: ph={event['ph']!r}, expected 'X'")
        if event["ts"] < 0 or event["dur"] < 0:
            problems.append(f"event {index}: negative ts/dur")
        if previous_ts is not None and event["ts"] < previous_ts:
            problems.append(f"event {index}: ts not monotonic")
        previous_ts = event["ts"]
        by_id[event["args"].get("span_id")] = event
    for index, event in enumerate(events):
        if "name" not in event or "args" not in event:
            continue  # already reported above
        args = event["args"]
        parent_id = args.get("parent_id", -1)
        if parent_id == -1:
            # Roots must be the synthesized serve.request parents, each
            # carrying the stitching annotations.
            if event["name"] != "serve.request":
                problems.append(
                    f"event {index} ({event['name']}): root span is not "
                    f"serve.request")
                continue
            for key in ("worker", "queue_wait_s", "trace_id"):
                if key not in args:
                    problems.append(
                        f"event {index}: serve.request missing {key!r}")
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"event {index} ({event['name']}): orphan parent "
                f"{parent_id}")
            continue
        if (event["ts"] + _NEST_SLACK_US < parent["ts"]
                or event["ts"] + event["dur"]
                > parent["ts"] + parent["dur"] + _NEST_SLACK_US):
            problems.append(
                f"event {index} ({event['name']}): not contained in "
                f"parent {parent_id}")
    return problems


__all__ = [
    "build_tree",
    "roots",
    "self_time_by_name",
    "self_times_ns",
    "spans_to_chrome",
    "spans_to_jsonl",
    "stitch_serve_requests",
    "validate_serve_trace",
    "write_chrome_trace",
    "write_jsonl",
]
