"""repro.obs — span tracing, metrics registry, exporters, slow-query log.

The observability layer for the SOI/describe/serve stack.  Everything in
here is stdlib-only and imports nothing from the rest of ``repro``, so
any module (including ``core``) can depend on it without cycles.

* :mod:`repro.obs.tracer` — ``trace_span`` + the global ring-buffer
  :data:`~repro.obs.tracer.TRACER`; off unless ``REPRO_TRACE=1``.
* :mod:`repro.obs.metrics` — the always-on process-local
  :data:`~repro.obs.metrics.REGISTRY` of counters/gauges/histograms.
* :mod:`repro.obs.export` — span-tree assembly, JSON-lines and Chrome
  ``chrome://tracing`` exporters.
* :mod:`repro.obs.slowlog` — the global :data:`~repro.obs.slowlog.SLOWLOG`
  capturing span trees of queries over ``REPRO_SLOWLOG`` seconds.
"""

from repro.obs.export import (
    build_tree,
    roots,
    self_time_by_name,
    self_times_ns,
    spans_to_chrome,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    REGISTRY,
    bucket_bounds,
    bucket_exponent,
    describe_counters,
    record_describe_query,
    record_soi_query,
    soi_counters,
)
from repro.obs.slowlog import SLOWLOG, SlowQueryLog
from repro.obs.tracer import (
    SpanRecord,
    TRACER,
    Tracer,
    enable_tracing,
    monotonic_now,
    perf_now,
    trace_span,
    tracing_enabled,
    tracing_scope,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SLOWLOG",
    "SlowQueryLog",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "bucket_bounds",
    "bucket_exponent",
    "build_tree",
    "describe_counters",
    "enable_tracing",
    "monotonic_now",
    "perf_now",
    "record_describe_query",
    "record_soi_query",
    "roots",
    "self_time_by_name",
    "self_times_ns",
    "soi_counters",
    "spans_to_chrome",
    "spans_to_jsonl",
    "trace_span",
    "tracing_enabled",
    "tracing_scope",
    "write_chrome_trace",
    "write_jsonl",
]
