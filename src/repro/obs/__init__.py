"""repro.obs — span tracing, metrics registry, exporters, slow-query log.

The observability layer for the SOI/describe/serve stack.  Everything in
here is stdlib-only and imports nothing from the rest of ``repro``, so
any module (including ``core``) can depend on it without cycles.

* :mod:`repro.obs.tracer` — ``trace_span`` + the global ring-buffer
  :data:`~repro.obs.tracer.TRACER`; off unless ``REPRO_TRACE=1``.
* :mod:`repro.obs.metrics` — the always-on process-local
  :data:`~repro.obs.metrics.REGISTRY` of counters/gauges/histograms.
* :mod:`repro.obs.export` — span-tree assembly, JSON-lines and Chrome
  ``chrome://tracing`` exporters, cross-process serve-trace stitching.
* :mod:`repro.obs.openmetrics` — OpenMetrics/Prometheus text exposition
  of the registry (``repro metrics --openmetrics``).
* :mod:`repro.obs.slowlog` — the global :data:`~repro.obs.slowlog.SLOWLOG`
  capturing span trees of queries over ``REPRO_SLOWLOG`` seconds.
"""

from repro.obs.export import (
    build_tree,
    roots,
    self_time_by_name,
    self_times_ns,
    spans_to_chrome,
    spans_to_jsonl,
    stitch_serve_requests,
    validate_serve_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    REGISTRY,
    bucket_bounds,
    bucket_exponent,
    describe_counters,
    record_describe_query,
    record_serve_request,
    record_soi_query,
    soi_counters,
)
from repro.obs.openmetrics import registry_to_openmetrics, write_openmetrics
from repro.obs.slowlog import SLOWLOG, SlowQueryLog
from repro.obs.tracer import (
    DROPPED_SPANS_METRIC,
    SPAN_NAMES,
    SpanRecord,
    TRACER,
    Tracer,
    current_trace_id,
    enable_tracing,
    mint_trace_id,
    monotonic_now,
    perf_now,
    trace_context,
    trace_span,
    tracing_enabled,
    tracing_scope,
)

__all__ = [
    "DROPPED_SPANS_METRIC",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "REGISTRY",
    "SLOWLOG",
    "SPAN_NAMES",
    "SlowQueryLog",
    "SpanRecord",
    "TRACER",
    "Tracer",
    "bucket_bounds",
    "bucket_exponent",
    "build_tree",
    "current_trace_id",
    "describe_counters",
    "enable_tracing",
    "mint_trace_id",
    "monotonic_now",
    "perf_now",
    "record_describe_query",
    "record_serve_request",
    "record_soi_query",
    "registry_to_openmetrics",
    "roots",
    "self_time_by_name",
    "self_times_ns",
    "soi_counters",
    "spans_to_chrome",
    "spans_to_jsonl",
    "stitch_serve_requests",
    "trace_context",
    "trace_span",
    "tracing_enabled",
    "tracing_scope",
    "validate_serve_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_openmetrics",
]
