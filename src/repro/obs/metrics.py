"""Process-local metrics registry: counters, gauges, log-scale histograms.

One :class:`MetricsRegistry` per process (the module-global
:data:`REGISTRY`).  Unlike the tracer it is **always on** — recording a
counter is a dict update under a lock, cheap enough to absorb the
per-query `SOIStats`/`DescribeStats` counter dumps without a switch.

Histograms use fixed logarithmic buckets: bucket ``e`` counts
observations ``v`` with ``2**(e-1) < v <= 2**e`` (exact powers of two land
in their own bucket's upper edge), computed exactly with
:func:`math.frexp` — no float-log rounding at the boundaries.  Bucket
exponents are clamped to ``[MIN_EXP, MAX_EXP]`` so the sparse dict stays
bounded; for second-valued latencies that spans ~1 ns to ~2.2e12 s.

Registries merge **commutatively** (counters add, gauges take the max,
histogram buckets add), so aggregating `EngineServer` worker dumps in the
parent is deterministic regardless of response arrival order.

The registry also *supersedes* the scattered per-query stats objects as
the cross-stack aggregation point: :func:`record_soi_query` /
:func:`record_describe_query` fold a stats object's ``counters()`` view
into namespaced registry counters (``soi.*`` / ``describe.*``) and phase
histograms, while the stats dataclasses remain the per-query return
value.  :func:`soi_counters` / :func:`describe_counters` give back the
un-namespaced compatible view.
"""

from __future__ import annotations

import math
import threading

MIN_EXP = -40
MAX_EXP = 41


def bucket_exponent(value: float) -> int:
    """Histogram bucket for ``value``: the smallest ``e`` with ``value <= 2**e``.

    Non-positive values collapse into the bottom bucket.  Exact: uses
    ``math.frexp`` (``value = m * 2**e`` with ``0.5 <= m < 1``), so
    ``2**e`` itself goes to bucket ``e``, ``2**e + ulp`` to ``e + 1``.
    """
    if value <= 0.0:
        return MIN_EXP
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:  # repro-lint: disable=REP-N201 (frexp returns exactly 0.5 iff value is a power of two)
        exponent -= 1
    if exponent < MIN_EXP:
        return MIN_EXP
    if exponent > MAX_EXP:
        return MAX_EXP
    return exponent


def bucket_bounds(exponent: int) -> tuple[float, float]:
    """The ``(lower, upper]`` value range of a bucket exponent."""
    return (math.ldexp(1.0, exponent - 1), math.ldexp(1.0, exponent))


class Histogram:
    """Log2-bucketed histogram with exact count and sum."""

    __slots__ = ("count", "sum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        exp = bucket_exponent(value)
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }

    def merge_dict(self, dump: dict) -> None:
        self.count += int(dump.get("count", 0))
        self.sum += float(dump.get("sum", 0.0))
        for exp, n in dump.get("buckets", {}).items():
            exp = int(exp)
            self.buckets[exp] = self.buckets.get(exp, 0) + int(n)


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock.

    ``to_dict()`` produces a plain-JSON dump (this is what travels over
    the `EngineServer` result queue); ``merge()`` folds such a dump back
    in with commutative semantics: counters and histogram buckets add,
    gauges keep the maximum.  Merging the same dumps in any order yields
    an identical registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def inc_many(self, items: dict[str, int], prefix: str = "") -> None:
        """Fold a counters dict in under one lock acquisition."""
        with self._lock:
            counters = self._counters
            for key, value in items.items():
                name = prefix + key
                counters[name] = counters.get(name, 0) + int(value)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counters under ``prefix``, keys returned without it."""
        start = len(prefix)
        with self._lock:
            return {name[start:]: value
                    for name, value in self._counters.items()
                    if name.startswith(prefix)}

    def to_dict(self) -> dict:
        """JSON-ready snapshot (sorted keys for stable output)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {name: hist.to_dict()
                               for name, hist in sorted(self._histograms.items())},
            }

    # -- merging / lifecycle -------------------------------------------------

    def merge(self, dump: dict) -> None:
        """Fold a ``to_dict()`` dump in (commutative, see class docstring)."""
        if not dump:
            return
        with self._lock:
            for name, value in dump.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in dump.get("gauges", {}).items():
                value = float(value)
                prev = self._gauges.get(name)
                if prev is None or value > prev:
                    self._gauges[name] = value
            for name, hdump in dump.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge_dict(hdump)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


REGISTRY = MetricsRegistry()
"""The process-global registry.  `EngineServer` workers each have their
own (being separate processes) and ship ``to_dict()`` dumps back with
every response; the parent merges them via :meth:`MetricsRegistry.merge`."""


# -- stats absorption ------------------------------------------------------
#
# SOIStats / DescribeStats stay the per-query return value; these helpers
# are the single funnel that folds each finished query into the registry.
# They take duck-typed stats objects (anything with ``counters()``) so the
# obs package keeps zero imports from repro.core.

def record_soi_query(stats, registry: MetricsRegistry | None = None) -> None:
    """Absorb one finished SOI query's stats into ``soi.*`` metrics."""
    reg = REGISTRY if registry is None else registry
    reg.inc_many(stats.counters(), prefix="soi.")
    reg.inc("soi.queries")
    phases = getattr(stats, "phase_seconds", None) or {}
    total = 0.0
    for phase, seconds in phases.items():
        reg.observe(f"soi.phase.{phase}_s", seconds)
        total += seconds
    if phases:
        reg.observe("soi.query_s", total)


def record_describe_query(stats, seconds: float, method: str = "st_rel_div",
                          registry: MetricsRegistry | None = None) -> None:
    """Absorb one finished describe selection into ``describe.*`` metrics."""
    reg = REGISTRY if registry is None else registry
    reg.inc_many(stats.counters(), prefix="describe.")
    reg.inc("describe.queries")
    reg.observe(f"describe.{method}_select_s", seconds)


def record_serve_batch(size: int, groups: int,
                       registry: MetricsRegistry | None = None) -> None:
    """Absorb one worker micro-batch into ``serve.*`` metrics.

    ``size`` is how many queued requests the worker drained in one loop
    turn; ``groups`` how many distinct signature groups they collapsed
    into.  ``serve.batch_grouped`` counts the requests that shared a
    group with a predecessor — the ones that ran against an
    already-resolved session.
    """
    reg = REGISTRY if registry is None else registry
    reg.inc("serve.batches")
    reg.observe("serve.batch_size", float(size))
    if size > groups:
        reg.inc("serve.batch_grouped", size - groups)


def soi_counters(registry: MetricsRegistry | None = None) -> dict[str, int]:
    """Aggregated SOI counters, keyed like ``SOIStats.counters()``."""
    reg = REGISTRY if registry is None else registry
    return reg.counters_with_prefix("soi.")


def describe_counters(registry: MetricsRegistry | None = None) -> dict[str, int]:
    """Aggregated describe counters, keyed like ``DescribeStats.counters()``."""
    reg = REGISTRY if registry is None else registry
    return reg.counters_with_prefix("describe.")


__all__ = [
    "Histogram",
    "MAX_EXP",
    "MIN_EXP",
    "MetricsRegistry",
    "REGISTRY",
    "bucket_bounds",
    "bucket_exponent",
    "describe_counters",
    "record_describe_query",
    "record_serve_batch",
    "record_soi_query",
    "soi_counters",
]
