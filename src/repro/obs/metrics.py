"""Process-local metrics registry: counters, gauges, log-scale histograms.

One :class:`MetricsRegistry` per process (the module-global
:data:`REGISTRY`).  Unlike the tracer it is **always on** — recording a
counter is a dict update under a lock, cheap enough to absorb the
per-query `SOIStats`/`DescribeStats` counter dumps without a switch.

Histograms use fixed logarithmic buckets: bucket ``e`` counts
observations ``v`` with ``2**(e-1) < v <= 2**e`` (exact powers of two land
in their own bucket's upper edge), computed exactly with
:func:`math.frexp` — no float-log rounding at the boundaries.  Bucket
exponents are clamped to ``[MIN_EXP, MAX_EXP]`` so the sparse dict stays
bounded; for second-valued latencies that spans ~1 ns to ~2.2e12 s.

Registries merge **commutatively** (counters add, gauges take the max,
histogram buckets add), so aggregating `EngineServer` worker dumps in the
parent is deterministic regardless of response arrival order.

The registry also *supersedes* the scattered per-query stats objects as
the cross-stack aggregation point: :func:`record_soi_query` /
:func:`record_describe_query` fold a stats object's ``counters()`` view
into namespaced registry counters (``soi.*`` / ``describe.*``) and phase
histograms, while the stats dataclasses remain the per-query return
value.  :func:`soi_counters` / :func:`describe_counters` give back the
un-namespaced compatible view.
"""

from __future__ import annotations

import math
import threading

MIN_EXP = -40
MAX_EXP = 41


def bucket_exponent(value: float) -> int:
    """Histogram bucket for ``value``: the smallest ``e`` with ``value <= 2**e``.

    Non-positive values collapse into the bottom bucket.  Exact: uses
    ``math.frexp`` (``value = m * 2**e`` with ``0.5 <= m < 1``), so
    ``2**e`` itself goes to bucket ``e``, ``2**e + ulp`` to ``e + 1``.
    """
    if value <= 0.0:
        return MIN_EXP
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:  # repro-lint: disable=REP-N201 (frexp returns exactly 0.5 iff value is a power of two)
        exponent -= 1
    if exponent < MIN_EXP:
        return MIN_EXP
    if exponent > MAX_EXP:
        return MAX_EXP
    return exponent


def bucket_bounds(exponent: int) -> tuple[float, float]:
    """The ``(lower, upper]`` value range of a bucket exponent."""
    return (math.ldexp(1.0, exponent - 1), math.ldexp(1.0, exponent))


class Histogram:
    """Log2-bucketed histogram with exact count and sum."""

    __slots__ = ("count", "sum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        exp = bucket_exponent(value)
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }

    def merge_dict(self, dump: dict) -> None:
        self.count += int(dump.get("count", 0))
        self.sum += float(dump.get("sum", 0.0))
        for exp, n in dump.get("buckets", {}).items():
            exp = int(exp)
            self.buckets[exp] = self.buckets.get(exp, 0) + int(n)


class QuantileSketch:
    """Mergeable streaming quantile sketch over the log2 buckets.

    Per bucket it keeps the observation count, the exact min/max seen,
    and an *exemplar*: the trace id of the slowest observation that
    landed in the bucket.  Quantiles are answered by nearest-rank walk
    over the cumulative bucket counts — the returned value is the
    bucket's observed maximum, so the true order statistic is always
    inside ``[bucket_min(q), quantile(q)]``, a rank error bounded by one
    log2 bucket.  No samples are stored: the sketch is O(#buckets)
    regardless of stream length.

    Merging is **commutative and associative** like the rest of the
    registry: counts and sums add, per-bucket min/max fold with min/max,
    and the exemplar of the larger per-bucket maximum wins (ties broken
    by the lexicographically smaller trace id), so worker dumps merge to
    the same sketch in any arrival order.
    """

    __slots__ = ("count", "sum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        # exp -> [count, min, max, exemplar trace id or None]
        self.buckets: dict[int, list] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        exp = bucket_exponent(value)
        bucket = self.buckets.get(exp)
        if bucket is None:
            self.buckets[exp] = [1, value, value, exemplar]
            return
        bucket[0] += 1
        if value < bucket[1]:
            bucket[1] = value
        if value > bucket[2] or (value == bucket[2]  # repro-lint: disable=REP-N201 (deliberate exact tie-break on the recorded max)
                                 and _exemplar_wins(exemplar, bucket[3])):
            bucket[2] = value
            bucket[3] = exemplar

    # -- quantile queries --------------------------------------------------

    def _bucket_at_rank(self, q: float) -> list | None:
        """The bucket holding the nearest-rank order statistic for ``q``."""
        if self.count == 0:
            return None
        rank = max(1, min(self.count, math.ceil(q * self.count)))
        cumulative = 0
        bucket = None
        for exp in sorted(self.buckets):
            bucket = self.buckets[exp]
            cumulative += bucket[0]
            if cumulative >= rank:
                return bucket
        return bucket  # pragma: no cover - counts always telescope

    def quantile(self, q: float) -> float:
        """Upper estimate of the ``q``-quantile (0..1, nearest rank).

        Returns the observed maximum of the bucket holding the rank: the
        exact order statistic lies in ``[quantile_bounds(q)[0], this]``.
        """
        bucket = self._bucket_at_rank(q)
        return bucket[2] if bucket is not None else 0.0

    def quantile_bounds(self, q: float) -> tuple[float, float]:
        """Observed ``[min, max]`` of the bucket holding the ``q``-rank."""
        bucket = self._bucket_at_rank(q)
        return (bucket[1], bucket[2]) if bucket is not None else (0.0, 0.0)

    def exemplar(self, q: float) -> str | None:
        """Trace id of the slowest observation in the ``q``-rank bucket."""
        bucket = self._bucket_at_rank(q)
        return bucket[3] if bucket is not None else None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- serialisation / merge ---------------------------------------------

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                str(exp): {"count": bucket[0], "min": bucket[1],
                           "max": bucket[2], "exemplar": bucket[3]}
                for exp, bucket in sorted(self.buckets.items())
            },
        }

    def merge_dict(self, dump: dict) -> None:
        self.count += int(dump.get("count", 0))
        self.sum += float(dump.get("sum", 0.0))
        for exp, incoming in dump.get("buckets", {}).items():
            exp = int(exp)
            other = [int(incoming.get("count", 0)),
                     float(incoming.get("min", 0.0)),
                     float(incoming.get("max", 0.0)),
                     incoming.get("exemplar")]
            bucket = self.buckets.get(exp)
            if bucket is None:
                self.buckets[exp] = other
                continue
            bucket[0] += other[0]
            if other[1] < bucket[1]:
                bucket[1] = other[1]
            if other[2] > bucket[2] or (other[2] == bucket[2]  # repro-lint: disable=REP-N201 (deliberate exact tie-break on the recorded max)
                                        and _exemplar_wins(other[3],
                                                           bucket[3])):
                bucket[2] = other[2]
                bucket[3] = other[3]


def _exemplar_wins(candidate: str | None, incumbent: str | None) -> bool:
    """Deterministic exemplar tie-break at equal bucket maxima.

    A concrete trace id beats ``None``; between two ids the
    lexicographically smaller one wins, so merge order cannot change
    which exemplar survives.
    """
    if candidate is None:
        return False
    if incumbent is None:
        return True
    return candidate < incumbent


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock.

    ``to_dict()`` produces a plain-JSON dump (this is what travels over
    the `EngineServer` result queue); ``merge()`` folds such a dump back
    in with commutative semantics: counters and histogram buckets add,
    gauges keep the maximum.  Merging the same dumps in any order yields
    an identical registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sketches: dict[str, QuantileSketch] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def inc_many(self, items: dict[str, int], prefix: str = "") -> None:
        """Fold a counters dict in under one lock acquisition."""
        with self._lock:
            counters = self._counters
            for key, value in items.items():
                name = prefix + key
                counters[name] = counters.get(name, 0) + int(value)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def observe_sketch(self, name: str, value: float,
                       exemplar: str | None = None) -> None:
        """Fold one observation into the named quantile sketch.

        ``exemplar`` is typically the request's trace id: the sketch
        keeps the id of the slowest observation per bucket, so a reported
        p99 can be joined back to the concrete trace that produced it.
        """
        with self._lock:
            sketch = self._sketches.get(name)
            if sketch is None:
                sketch = self._sketches[name] = QuantileSketch()
            sketch.observe(value, exemplar)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def sketch(self, name: str) -> QuantileSketch | None:
        with self._lock:
            return self._sketches.get(name)

    def sketch_names(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(name for name in self._sketches
                          if name.startswith(prefix))

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counters under ``prefix``, keys returned without it."""
        start = len(prefix)
        with self._lock:
            return {name[start:]: value
                    for name, value in self._counters.items()
                    if name.startswith(prefix)}

    def to_dict(self) -> dict:
        """JSON-ready snapshot (sorted keys for stable output)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {name: hist.to_dict()
                               for name, hist in sorted(self._histograms.items())},
                "sketches": {name: sketch.to_dict()
                             for name, sketch in sorted(self._sketches.items())},
            }

    # -- merging / lifecycle -------------------------------------------------

    def merge(self, dump: dict) -> None:
        """Fold a ``to_dict()`` dump in (commutative, see class docstring)."""
        if not dump:
            return
        with self._lock:
            for name, value in dump.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in dump.get("gauges", {}).items():
                value = float(value)
                prev = self._gauges.get(name)
                if prev is None or value > prev:
                    self._gauges[name] = value
            for name, hdump in dump.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge_dict(hdump)
            for name, sdump in dump.get("sketches", {}).items():
                sketch = self._sketches.get(name)
                if sketch is None:
                    sketch = self._sketches[name] = QuantileSketch()
                sketch.merge_dict(sdump)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._sketches.clear()


REGISTRY = MetricsRegistry()
"""The process-global registry.  `EngineServer` workers each have their
own (being separate processes) and ship ``to_dict()`` dumps back with
every response; the parent merges them via :meth:`MetricsRegistry.merge`."""


# -- stats absorption ------------------------------------------------------
#
# SOIStats / DescribeStats stay the per-query return value; these helpers
# are the single funnel that folds each finished query into the registry.
# They take duck-typed stats objects (anything with ``counters()``) so the
# obs package keeps zero imports from repro.core.

def record_soi_query(stats, registry: MetricsRegistry | None = None) -> None:
    """Absorb one finished SOI query's stats into ``soi.*`` metrics."""
    reg = REGISTRY if registry is None else registry
    reg.inc_many(stats.counters(), prefix="soi.")
    reg.inc("soi.queries")
    phases = getattr(stats, "phase_seconds", None) or {}
    total = 0.0
    for phase, seconds in phases.items():
        reg.observe(f"soi.phase.{phase}_s", seconds)
        total += seconds
    if phases:
        reg.observe("soi.query_s", total)


def record_describe_query(stats, seconds: float, method: str = "st_rel_div",
                          registry: MetricsRegistry | None = None) -> None:
    """Absorb one finished describe selection into ``describe.*`` metrics."""
    reg = REGISTRY if registry is None else registry
    reg.inc_many(stats.counters(), prefix="describe.")
    reg.inc("describe.queries")
    reg.observe(f"describe.{method}_select_s", seconds)


def record_serve_batch(size: int, groups: int,
                       registry: MetricsRegistry | None = None) -> None:
    """Absorb one worker micro-batch into ``serve.*`` metrics.

    ``size`` is how many queued requests the worker drained in one loop
    turn; ``groups`` how many distinct signature groups they collapsed
    into.  ``serve.batch_grouped`` counts the requests that shared a
    group with a predecessor — the ones that ran against an
    already-resolved session.
    """
    reg = REGISTRY if registry is None else registry
    reg.inc("serve.batches")
    reg.observe("serve.batch_size", float(size))
    if size > groups:
        reg.inc("serve.batch_grouped", size - groups)


def record_serve_request(kind: str, seconds: float,
                         trace_id: str | None = None, error: bool = False,
                         registry: MetricsRegistry | None = None) -> None:
    """Absorb one served request into ``serve.*`` metrics.

    Besides the request counter and latency histogram this feeds the
    per-kind streaming quantile sketch (``serve.latency.<kind>_s``) with
    the request's trace id as the exemplar, so the parent can report
    live p50/p90/p99 per request kind — and name the trace behind a
    tail observation — without storing samples.
    """
    reg = REGISTRY if registry is None else registry
    reg.inc("serve.requests")
    if error:
        reg.inc("serve.errors")
    reg.observe("serve.request_s", seconds)
    reg.observe_sketch(f"serve.latency.{kind}_s", seconds,
                       exemplar=trace_id)


def soi_counters(registry: MetricsRegistry | None = None) -> dict[str, int]:
    """Aggregated SOI counters, keyed like ``SOIStats.counters()``."""
    reg = REGISTRY if registry is None else registry
    return reg.counters_with_prefix("soi.")


def describe_counters(registry: MetricsRegistry | None = None) -> dict[str, int]:
    """Aggregated describe counters, keyed like ``DescribeStats.counters()``."""
    reg = REGISTRY if registry is None else registry
    return reg.counters_with_prefix("describe.")


__all__ = [
    "Histogram",
    "MAX_EXP",
    "MIN_EXP",
    "MetricsRegistry",
    "QuantileSketch",
    "REGISTRY",
    "bucket_bounds",
    "bucket_exponent",
    "describe_counters",
    "record_describe_query",
    "record_serve_batch",
    "record_serve_request",
    "record_soi_query",
    "soi_counters",
]
