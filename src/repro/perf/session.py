"""Keyword-signature query sessions: cross-query reuse of materialisations.

A k-SOI parameter sweep (varying ``k``, ``eps`` or the access strategy)
re-runs the engine with the *same normalised keyword set* many times, and
every run used to rebuild the same per-cell materialisations from scratch:
the relevant-POI gather of each visited cell, the per-cell relevant-count
upper bounds that seed SL1, and — most expensively — the per
``(segment, cell)`` mass contributions of Definition 1.

A :class:`QuerySession` owns exactly those three caches for one keyword
signature:

* the :class:`~repro.core.interest.RelevantCellCache` (positions and
  coordinate arrays of each cell's relevant POIs);
* the per-cell relevant-count aggregate ``|P_Psi(c)|`` (Algorithm 1,
  line 2), which depends only on the keywords — not on ``k``/``eps``;
* per-``(eps, weighted)`` mass memos keyed ``(segment_id, cell)``.  A
  cached mass is the bitwise-exact float the kernel would recompute, so
  serving it cannot change any downstream comparison or bound.

Sessions live in a :class:`QuerySessionPool` with an LRU bound on retained
signatures.  The pool must be **explicitly invalidated when the indexes it
reads are rebuilt** (:meth:`~repro.core.soi.SOIEngine.rebuild_indexes`
does this); stale sessions are discarded wholesale rather than patched.

Thread-compatibility: session caches are only ever *added to* (a lost
update merely recomputes a value), and the pool serialises its LRU
book-keeping behind a lock, so concurrent queries from
:func:`repro.perf.parallel.run_parallel` are safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.interest import RelevantCellCache
from repro.core.state_store import (
    MassSlots,
    SegmentStateStore,
    SignatureBindings,
)
from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state_store import StoreLayout
    from repro.index.grid import CellCoord
    from repro.index.poi_grid import POIGridIndex

DEFAULT_MAX_SESSIONS = 8
"""How many keyword signatures a pool retains by default.  A sweep touches
one signature at a time; interactive workloads rarely rotate through more
than a handful of keyword sets before the oldest is cold anyway."""


class QuerySession:
    """All cached per-query materialisations for one keyword signature."""

    __slots__ = ("signature", "generation", "cache", "_poi_index",
                 "_cell_ub", "_sl1_entries", "_mass", "queries_served",
                 "_store_lock", "_bindings", "_mass_slots", "_state_stores",
                 "store_reuses")

    def __init__(self, poi_index: "POIGridIndex",
                 signature: frozenset[str], generation: int = 0) -> None:
        self.signature = signature
        self.generation = generation
        self._poi_index = poi_index
        self.cache = RelevantCellCache(poi_index, signature)
        self._cell_ub: dict["CellCoord", int] | None = None
        self._sl1_entries: tuple[tuple["CellCoord", int], ...] | None = None
        self._mass: dict[tuple[float, bool],
                         dict[tuple[int, "CellCoord"], float]] = {}
        self.queries_served = 0
        # Store-path materialisations: per-eps signature bindings, per
        # (eps, weighted) slot memos, and the recycled scratch stores.
        # Unlike the add-only dict caches above, the scratch stores are
        # *mutated* per run, so the free-list hands each out exclusively;
        # the lock serialises all three maps.
        self._store_lock = threading.Lock()
        self._bindings: dict[float, SignatureBindings] = {}
        self._mass_slots: dict[tuple[float, bool], MassSlots] = {}
        self._state_stores: dict[float, list[SegmentStateStore]] = {}
        self.store_reuses = 0

    def cell_upper_bounds(self) -> dict["CellCoord", int]:
        """``|P_Psi(c)| > 0`` per candidate cell (Algorithm 1, line 2).

        Computed once per signature; every sweep configuration seeds its
        SL1 from this aggregate instead of re-scanning the global index.
        """
        if self._cell_ub is None:
            bounds: dict["CellCoord", int] = {}
            for cell in self._poi_index.candidate_cells(self.signature):
                ub = self._poi_index.relevant_count_upper_bound(
                    cell, self.signature)
                if ub > 0:
                    bounds[cell] = ub
            self._cell_ub = bounds
        return self._cell_ub

    def sl1_entries(self) -> tuple[tuple["CellCoord", int], ...]:
        """The SL1 entries presorted (count desc, then cell coordinates).

        The order depends only on the keyword signature, so warm queries
        hand the shared tuple straight to
        :class:`~repro.core.source_lists.CellSourceList` without re-sorting.
        """
        if self._sl1_entries is None:
            self._sl1_entries = tuple(sorted(
                self.cell_upper_bounds().items(),
                key=lambda e: (-e[1], e[0])))
        return self._sl1_entries

    def store_bindings(self, layout: "StoreLayout") -> SignatureBindings:
        """This signature's cell upper bounds projected onto ``layout``."""
        with self._store_lock:
            bindings = self._bindings.get(layout.eps)
        if bindings is None:
            built = SignatureBindings(layout, self.cell_upper_bounds())
            with self._store_lock:
                # A concurrent builder may have won; both built the same
                # deterministic arrays, keep whichever landed first.
                bindings = self._bindings.setdefault(layout.eps, built)
        return bindings

    def store_mass_slots(self, layout: "StoreLayout",
                         weighted: bool) -> MassSlots:
        """The slot-indexed mass memo for one ``(eps, weighted)``."""
        key = (layout.eps, weighted)
        with self._store_lock:
            slots = self._mass_slots.get(key)
            if slots is None:
                slots = MassSlots(layout.num_slots)
                self._mass_slots[key] = slots
        return slots

    def acquire_state_store(
            self, layout: "StoreLayout") -> tuple[SegmentStateStore, bool]:
        """A scratch store for one run; True when recycled from the pool.

        The store is handed out exclusively — the caller must return it
        via :meth:`release_state_store` when (and only when) the run
        completed normally.
        """
        with self._store_lock:
            pool = self._state_stores.get(layout.eps)
            store = pool.pop() if pool else None
        if store is None:
            return SegmentStateStore(layout), False
        self.store_reuses += 1
        REGISTRY.inc("session.store_reuse_hits")
        return store, True

    def release_state_store(self, store: SegmentStateStore) -> None:
        """Return a scratch store to the free-list for the next run."""
        with self._store_lock:
            self._state_stores.setdefault(store.layout.eps, []).append(store)

    def mass_cache(self, eps: float,
                   weighted: bool) -> dict[tuple[int, "CellCoord"], float]:
        """The ``(segment_id, cell) -> mass`` memo for one ``(eps, weighted)``."""
        key = (eps, weighted)
        memo = self._mass.get(key)
        if memo is None:
            memo = {}
            self._mass[key] = memo
        return memo

    def cached_masses(self) -> int:
        """Total memoised ``(segment, cell)`` contributions (for reports)."""
        return sum(len(memo) for memo in self._mass.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuerySession(signature={sorted(self.signature)!r}, "
                f"cells={len(self.cache)}, masses={self.cached_masses()})")


class QuerySessionPool:
    """LRU pool of :class:`QuerySession` objects, one per keyword signature."""

    def __init__(self, poi_index: "POIGridIndex",
                 maxsize: int = DEFAULT_MAX_SESSIONS) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be at least 1, got {maxsize}")
        self._poi_index = poi_index
        self.maxsize = maxsize
        self.generation = 0
        self._sessions: OrderedDict[frozenset[str], QuerySession] = \
            OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def get(self, signature: frozenset[str]) -> QuerySession:
        """The session for a normalised keyword set (created on first use)."""
        with self._lock:
            session = self._sessions.get(signature)
            if session is None:
                REGISTRY.inc("session.pool_misses")
                session = QuerySession(self._poi_index, signature,
                                       self.generation)
                self._sessions[signature] = session
                while len(self._sessions) > self.maxsize:
                    self._sessions.popitem(last=False)
                    self.evictions += 1
                    REGISTRY.inc("session.pool_evictions")
            else:
                REGISTRY.inc("session.pool_hits")
                self._sessions.move_to_end(signature)
            REGISTRY.set_gauge("session.pool_size", len(self._sessions))
            return session

    def peek(self, signature: frozenset[str]) -> QuerySession | None:
        """The retained session, if any, without touching LRU order."""
        with self._lock:
            return self._sessions.get(signature)

    def invalidate(self, poi_index: "POIGridIndex | None" = None) -> None:
        """Drop every session (call after the indexes are rebuilt).

        Passing the freshly built ``poi_index`` re-targets future sessions
        at it; omitting it keeps the current index (useful for tests and
        for bounding memory without a rebuild).
        """
        with self._lock:
            self._sessions.clear()
            self.generation += 1
            if poi_index is not None:
                self._poi_index = poi_index

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, signature: frozenset[str]) -> bool:
        with self._lock:
            return signature in self._sessions
