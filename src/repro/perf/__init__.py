"""Performance layer: query sessions, parallel helpers and the bench harness.

This package holds the cross-cutting performance machinery added on top of
the paper's algorithms:

* :mod:`repro.perf.session` — keyword-signature-keyed
  :class:`~repro.perf.session.QuerySession` objects (and their LRU
  :class:`~repro.perf.session.QuerySessionPool`) that let parameter sweeps
  reuse per-cell materialisations across queries;
* :mod:`repro.perf.parallel` — deterministic-order parallel execution of
  independent experiment tasks;
* :mod:`repro.perf.bench` — the ``repro bench`` harness that measures the
  Figure 4 / Figure 6 configurations and writes the ``BENCH_*.json``
  trajectory files;
* :mod:`repro.perf.result_cache` — the generation-stamped exact-result
  :class:`~repro.perf.result_cache.ResultCache` with dominated-``k``
  reuse, backing the serve path's multi-level caching.

Everything here is an *accelerator*: optimised paths must produce results
bit-identical to the plain algorithms (enforced by the equivalence
property tests and the ``REPRO_CHECK=1`` contracts).
"""

from repro.perf.parallel import run_parallel
from repro.perf.result_cache import ResultCache
from repro.perf.session import QuerySession, QuerySessionPool

__all__ = ["QuerySession", "QuerySessionPool", "ResultCache",
           "run_parallel"]
