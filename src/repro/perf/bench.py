"""The ``repro bench`` harness: timed Figure 4 / Figure 6 configurations.

Measures the two hot paths this layer optimises — k-SOI parameter sweeps
(Figure 4's ``k`` and ``|Psi|`` axes, SOI algorithm vs the BL baseline)
and greedy photo selection (Figure 6, naive greedy vs ST_Rel+Div) — and
writes ``BENCH_soi.json`` / ``BENCH_describe.json`` reports that combine:

* **medians**: the median full-sweep wall time over ``repeats`` runs plus
  per-point medians (robust against scheduler noise, comparable across
  commits as long as the machine is);
* **work counters**: kernel calls, cache traffic and pruning counts from
  :class:`~repro.core.results.SOIStats` /
  :class:`~repro.core.describe.stats.DescribeStats` — machine-independent
  evidence of *why* a timing moved, including a cold-vs-warm query pair
  that shows what :class:`~repro.perf.session.QuerySession` reuse saves.

A third mode measures *throughput* rather than single-query latency:
``bench_throughput`` replays a seeded mixed k-SOI/describe workload
(:mod:`repro.serve.workload`) against an
:class:`~repro.serve.server.EngineServer` process pool at increasing
worker counts and appends QPS / latency-percentile records to
``BENCH_serve.json``.

Parallelism is split across two documented code paths: the *untimed*
per-city setup fans out over threads via
:func:`~repro.perf.parallel.run_parallel` (``--jobs``), while *timed*
concurrent query execution always goes through the process-based serving
pool — never the thread pool, whose pure-Python phases serialise on the
GIL.  Latency suites (``soi``/``describe``) still time their query loops
sequentially so medians stay comparable across commits.

Every report carries ``schema_version`` (:data:`SCHEMA_VERSION`) and can
be compared against a committed baseline with :func:`compare_reports`
(``repro bench --check-against``), which flags median/QPS regressions
beyond a tolerance.
"""

from __future__ import annotations

import gc
import json
import math
import os
import platform
import statistics
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.profile import StreetProfile, build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.soi import DEFAULT_EPS, SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.datagen.city import City
from repro.datagen.presets import build_preset
from repro.eval.experiments import PAPER_QUERY_KEYWORDS
from repro.obs import export as obs_export
from repro.obs import tracer as obs_tracer
from repro.perf.parallel import run_parallel

DEFAULT_CITIES: tuple[str, ...] = ("vienna", "berlin", "london")
SOI_KS: tuple[int, ...] = (10, 25, 50, 100)
SOI_PSIS: tuple[int, ...] = (1, 2, 3, 4)
DESCRIBE_KS: tuple[int, ...] = (10, 20, 30, 40, 50)
SOI_REPORT = "BENCH_soi.json"
DESCRIBE_REPORT = "BENCH_describe.json"
SERVE_REPORT = "BENCH_serve.json"
BUILD_REPORT = "BENCH_build.json"

SCHEMA_VERSION = 5
"""Report layout version.  Bumped whenever a field is renamed/removed so
:func:`compare_reports` can refuse cross-schema comparisons; version 1 is
the implicit schema of reports written before the field existed.
Version 3 adds the per-city ``obs`` section (tracer overhead medians and
span counts); version 4 adds the serve suite's informational
``obs.latency_sketch`` section (merged quantile-sketch stats, never
regression-gated); version 5 adds the serve suite's
``cache``/``zipf``/``unique_frac`` workload descriptors and the
informational ``cache_stats`` section.  All are pure additions, so
:func:`compare_reports` treats 2 through 5 as mutually comparable (see
:data:`COMPARABLE_SCHEMAS`)."""

COMPARABLE_SCHEMAS = frozenset({2, 3, 4, 5})
"""Schema versions whose shared metrics kept their meaning; reports inside
this set compare against each other, anything else must match exactly."""


def median_sweep(
    fn: Callable[[object], object],
    points: Sequence[object],
    repeats: int,
) -> tuple[float, dict[object, float]]:
    """Median full-sweep seconds and per-point median seconds.

    Runs ``fn`` over every point ``repeats`` times; the *sweep* median
    (one pass over all points) is the headline number because sweep reuse
    is exactly what the session cache accelerates.

    One untimed warm-up pass precedes the timed repeats so every timed
    sweep measures the steady (session-cached) state.  Without it a
    ``repeats=1`` run times the cold sweep — 1.5–4x slower than the warm
    medians a multi-repeat baseline converges to, which would make
    single-repeat smoke checks against committed baselines meaningless.

    The timed repeats run with the cyclic garbage collector quiesced
    (``timeit`` style): container-heavy sweeps otherwise trigger
    generational collections mid-point, turning small (10–30 ms) leaves
    bimodal by ~2x and flaking single-repeat gate checks.
    """
    for point in points:
        fn(point)
    sweeps: list[float] = []
    per_point: dict[object, list[float]] = {p: [] for p in points}
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            for point in points:
                s0 = time.perf_counter()
                fn(point)
                per_point[point].append(time.perf_counter() - s0)
            sweeps.append(time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return (statistics.median(sweeps),
            {p: statistics.median(v) for p, v in per_point.items()})


def environment() -> dict:
    """Version and hardware stamps a report needs to be comparable.

    ``cpu_count`` matters most for the throughput suite: worker scaling
    is physically bounded by the cores available, so a record from a
    1-core container cannot be judged against a 16-core baseline.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def _build_cities(cities: Sequence[str], scale: float,
                  jobs: int | None) -> list[tuple[str, City, SOIEngine]]:
    """Datasets and engines per city (untimed; safe to parallelise)."""

    def build(name: str) -> tuple[str, City, SOIEngine]:
        city = build_preset(name, scale)
        return name, city, SOIEngine(city.network, city.pois)

    return run_parallel([lambda n=name: build(n) for name in cities],
                        jobs=jobs)


def _cold_warm_counters(
    engine: SOIEngine, keywords: Sequence[str], k: int, eps: float,
) -> dict[str, dict[str, int]]:
    """Counters of a cold query and an identical warm rerun.

    The warm rerun is the session cache's best case: every mass is served
    from the memo, so ``kernel_calls`` collapses to zero.
    """
    engine.invalidate_sessions()
    _res, cold = engine.top_k_with_stats(keywords, k=k, eps=eps)
    _res, warm = engine.top_k_with_stats(keywords, k=k, eps=eps)
    return {"cold": cold.counters(), "warm": warm.counters()}


def bench_soi(
    cities: Sequence[str] = DEFAULT_CITIES,
    repeats: int = 5,
    scale: float = 1.0,
    eps: float = DEFAULT_EPS,
    jobs: int | None = None,
    trace_out: Path | None = None,
) -> dict:
    """The Figure 4 timing suite: SOI vs BL over ``k`` and ``|Psi|`` sweeps.

    ``trace_out`` additionally dumps one Chrome trace per ``k``-sweep point
    (a single traced repetition) into the given directory.
    """
    keywords = PAPER_QUERY_KEYWORDS[:3]
    report: dict = {
        "suite": "soi",
        "schema_version": SCHEMA_VERSION,
        "eps": eps,
        "scale": scale,
        "repeats": repeats,
        "ks": list(SOI_KS),
        "psis": list(SOI_PSIS),
        "keywords": list(keywords),
        "environment": environment(),
        "cities": {},
    }
    for name, _city, engine in _build_cities(cities, scale, jobs):
        engine.cell_maps.augmented_cell_counts(eps)  # untimed eps warm-up
        baseline = BaselineSOI(engine)
        entry: dict = {}
        median, points = median_sweep(
            lambda k: engine.top_k(keywords, k=k, eps=eps), SOI_KS, repeats)
        entry["soi_k_sweep_median_s"] = median
        entry["soi_k_points"] = points
        median, points = median_sweep(
            lambda k: baseline.top_k(keywords, k=k, eps=eps),
            SOI_KS, repeats)
        entry["bl_k_sweep_median_s"] = median
        entry["bl_k_points"] = points
        median, points = median_sweep(
            lambda p: engine.top_k(PAPER_QUERY_KEYWORDS[:p], k=50, eps=eps),
            SOI_PSIS, repeats)
        entry["soi_psi_sweep_median_s"] = median
        entry["soi_psi_points"] = points
        median, points = median_sweep(
            lambda p: baseline.top_k(PAPER_QUERY_KEYWORDS[:p], k=50,
                                     eps=eps),
            SOI_PSIS, repeats)
        entry["bl_psi_sweep_median_s"] = median
        entry["bl_psi_points"] = points
        entry["counters"] = _cold_warm_counters(engine, keywords, 50, eps)
        entry["obs"] = _obs_section(
            lambda k: engine.top_k(keywords, k=k, eps=eps), SOI_KS, repeats)
        if trace_out is not None:
            entry["trace_files"] = _dump_traces(
                Path(trace_out), f"soi_{name}_k",
                lambda k: engine.top_k(keywords, k=k, eps=eps), SOI_KS)
        report["cities"][name] = entry
    return report


def _obs_section(
    fn: Callable[[object], object],
    points: Sequence[object],
    repeats: int,
) -> dict:
    """Tracer overhead on the same sweep with tracing off vs on.

    ``median_trace_off_s`` re-measures the sweep with tracing explicitly
    disabled (the default path every other number in the report uses);
    ``median_trace_on_s`` measures it with the span tracer live, and
    ``span_count`` counts the spans those traced sweeps recorded.  The two
    medians are deliberately *not* named ``*_median_s`` so the baseline
    comparator skips them — tracer overhead is reported, not gated.
    """
    with obs_tracer.tracing_scope(False):
        median_off, _unused = median_sweep(fn, points, repeats)
    tracer = obs_tracer.TRACER
    before = tracer.finished_total
    with obs_tracer.tracing_scope(True):
        median_on, _unused = median_sweep(fn, points, repeats)
    span_count = tracer.finished_total - before
    return {
        "span_count": span_count,
        "median_trace_off_s": median_off,
        "median_trace_on_s": median_on,
        "overhead_ratio": (median_on / median_off if median_off > 0
                           else 0.0),
    }


def _dump_traces(
    out_dir: Path,
    prefix: str,
    fn: Callable[[object], object],
    points: Sequence[object],
) -> list[str]:
    """One Chrome trace file per sweep point (a single traced repetition)."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    with obs_tracer.tracing_scope(True):
        for point in points:
            mark = obs_tracer.TRACER.mark()
            fn(point)
            spans = obs_tracer.TRACER.spans_since(mark)
            path = out_dir / f"{prefix}{point}.trace.json"
            obs_export.write_chrome_trace(path, spans)
            written.append(str(path))
    return written


def _profile_for(city: City, engine: SOIEngine, category: str,
                 eps: float) -> StreetProfile | None:
    results = engine.top_k([category], k=1, eps=eps)
    if not results:
        return None
    return build_street_profile(city.network, results[0].street_id,
                                city.photos, eps)


def bench_describe(
    cities: Sequence[str] = DEFAULT_CITIES,
    repeats: int = 3,
    scale: float = 1.0,
    eps: float = DEFAULT_EPS,
    jobs: int | None = None,
    category: str = "shop",
    lam: float = 0.5,
    w: float = 0.5,
    trace_out: Path | None = None,
) -> dict:
    """The Figure 6 timing suite: greedy BL vs ST_Rel+Div over ``k``."""
    report: dict = {
        "suite": "describe",
        "schema_version": SCHEMA_VERSION,
        "eps": eps,
        "scale": scale,
        "repeats": repeats,
        "ks": list(DESCRIBE_KS),
        "category": category,
        "lam": lam,
        "w": w,
        "environment": environment(),
        "cities": {},
    }
    for name, city, engine in _build_cities(cities, scale, jobs):
        profile = _profile_for(city, engine, category, eps)
        if profile is None or len(profile) == 0:
            report["cities"][name] = {"num_photos": 0, "skipped": True}
            continue
        greedy = GreedyDescriber(profile)
        st = STRelDivDescriber(profile)
        entry: dict = {"num_photos": len(profile),
                       "street": profile.street_name}
        median, points = median_sweep(
            lambda k: greedy.select(k, lam, w), DESCRIBE_KS, repeats)
        entry["bl_k_sweep_median_s"] = median
        entry["bl_k_points"] = points
        median, points = median_sweep(
            lambda k: st.select(k, lam, w), DESCRIBE_KS, repeats)
        entry["st_k_sweep_median_s"] = median
        entry["st_k_points"] = points
        top_k = DESCRIBE_KS[-1]
        _pos, bl_stats = greedy.select_with_stats(top_k, lam, w)
        _pos, st_stats = st.select_with_stats(top_k, lam, w)
        entry["counters"] = {f"bl_k{top_k}": bl_stats.counters(),
                             f"st_k{top_k}": st_stats.counters()}
        entry["obs"] = _obs_section(
            lambda k: st.select(k, lam, w), DESCRIBE_KS, repeats)
        if trace_out is not None:
            entry["trace_files"] = _dump_traces(
                Path(trace_out), f"describe_{name}_k",
                lambda k: st.select(k, lam, w), DESCRIBE_KS)
        report["cities"][name] = entry
    return report


# -- cold-path build suite (BENCH_build.json) --------------------------------

def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall seconds and result of one call."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _cold_build_pass(city: City, eps: float, keywords: Sequence[str],
                     vectorized: bool) -> dict[str, float]:
    """One fully cold build → augment → layout → query → snapshot sequence.

    Every pass constructs a fresh engine, so nothing is served from a
    previous pass's caches; ``median_sweep`` is unusable here because its
    warm-up pass is exactly what a cold-start bench must not do.

    The pass runs with the cyclic garbage collector quiesced (timeit
    style): the dict-heavy builds allocate enough container objects to
    trigger generational collections mid-phase, which made the
    store-layout timing bimodal (~25 vs ~60 ms on the same inputs).  One
    ``gc.collect()`` up front gives every pass the same clean slate.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _cold_build_pass_timed(city, eps, keywords, vectorized)
    finally:
        if was_enabled:
            gc.enable()


def _cold_build_pass_timed(city: City, eps: float, keywords: Sequence[str],
                           vectorized: bool) -> dict[str, float]:
    from repro.index.cell_maps import SegmentCellMaps
    from repro.serve.snapshot import IndexSnapshot
    from repro.serve.views import attach_engine

    times: dict[str, float] = {}
    times["build_s"], engine = _timed(
        lambda: SOIEngine(city.network, city.pois,
                          vectorized_build=vectorized))
    times["augment_first_s"], _unused = _timed(
        lambda: engine.cell_maps.augmented_cell_counts_column(eps))
    times["store_layout_s"], _unused = _timed(
        lambda: engine.store_layout(eps))
    times["first_query_s"], _unused = _timed(
        lambda: engine.top_k(keywords, k=50, eps=eps))
    times["cold_start_s"] = (times["build_s"] + times["augment_first_s"]
                             + times["store_layout_s"]
                             + times["first_query_s"])
    # Second, distinct eps: below the cache it is a pure threshold filter.
    times["augment_filter_s"], _unused = _timed(
        lambda: engine.cell_maps.augmented_cell_counts_column(eps / 2.0))
    # The from-scratch cost of the same second eps, on maps that carry no
    # eps-sized cache — the denominator of the incremental speedup.
    scratch = SegmentCellMaps(city.network, engine.poi_index.grid,
                              vectorized=vectorized)
    times["augment_scratch_s"], _unused = _timed(
        lambda: scratch.augmented_cell_counts_column(eps / 2.0))
    # Above the cache: candidate-ring delta only.
    times["augment_delta_s"], _unused = _timed(
        lambda: engine.cell_maps.augmented_cell_counts_column(2.0 * eps))
    times["export_s"], snapshot = _timed(
        lambda: IndexSnapshot.export(engine, warm_eps=(eps,)))
    try:
        def attach() -> object:
            # Same process as the exporter: keep the default tracker
            # registration (see IndexSnapshot.attach on track=False).
            attached = IndexSnapshot.attach(snapshot.name)
            try:
                return attach_engine(attached)
            finally:
                attached.close()

        times["attach_s"], _unused = _timed(attach)
    finally:
        snapshot.close()
    return times


_BUILD_PHASES = ("build", "augment_first", "store_layout", "first_query",
                 "cold_start", "augment_filter", "augment_scratch",
                 "augment_delta", "export", "attach")

_AUGMENT_COUNTERS = (
    "index.augment.build.fresh", "index.augment.build.filter",
    "index.augment.build.delta", "index.augment.build.scalar",
    "index.augment.candidate_pairs", "index.augment.confirmed_pairs",
    "index.augment.delta_pairs", "index.augment.cache_rows_reused",
    "index.augment.cache_reused",
)


def bench_build(
    cities: Sequence[str] = DEFAULT_CITIES,
    repeats: int = 3,
    scale: float = 1.0,
    eps: float = DEFAULT_EPS,
    jobs: int | None = None,
    ablation: bool = True,
) -> dict:
    """The cold-path suite: index construction and first-query timings.

    Per city and repeat, a fresh engine runs the full cold sequence
    (build, first-``eps`` augmentation, store layout, first query, a
    second smaller ``eps`` served from the incremental cache, a larger
    ``eps`` delta, snapshot export and attach); the per-phase medians are
    the gated ``*_median_s`` metrics.  ``ablation=True`` additionally runs
    the sequence once through the scalar construction path
    (``vectorized_build=False``) and reports the speedups — ablation
    numbers are informational, never gated.

    ``jobs`` is accepted for CLI symmetry but unused: cold timings must
    not share the machine with parallel builds.
    """
    del jobs  # cold-path timings are deliberately sequential
    from repro.obs.metrics import REGISTRY

    keywords = PAPER_QUERY_KEYWORDS[:3]
    report: dict = {
        "suite": "build",
        "schema_version": SCHEMA_VERSION,
        "eps": eps,
        "scale": scale,
        "repeats": repeats,
        "keywords": list(keywords),
        "environment": environment(),
        "cities": {},
    }
    for name in cities:
        city = build_preset(name, scale)  # untimed dataset generation
        before = {key: REGISTRY.counter(key) for key in _AUGMENT_COUNTERS}
        passes = [_cold_build_pass(city, eps, keywords, vectorized=True)
                  for _ in range(repeats)]
        after = {key: REGISTRY.counter(key) for key in _AUGMENT_COUNTERS}
        entry: dict = {
            f"{phase}_median_s": statistics.median(
                p[f"{phase}_s"] for p in passes)
            for phase in _BUILD_PHASES}
        entry["counters"] = {
            "augment": {key: (after[key] - before[key]) // repeats
                        for key in _AUGMENT_COUNTERS}}
        entry["num_segments"] = sum(
            1 for _seg in city.network.iter_segments())
        entry["num_pois"] = len(city.pois)
        if ablation:
            scalar = _cold_build_pass(city, eps, keywords, vectorized=False)
            entry["scalar"] = scalar
            entry["speedups"] = {
                "cold_start_speedup": (
                    scalar["cold_start_s"] / entry["cold_start_median_s"]
                    if entry["cold_start_median_s"] > 0 else 0.0),
                "incremental_augment_speedup": (
                    entry["augment_scratch_median_s"]
                    / entry["augment_filter_median_s"]
                    if entry["augment_filter_median_s"] > 0 else 0.0),
            }
        report["cities"][name] = entry
    return report


def write_report(report: dict, path: Path) -> None:
    """Write one bench report as stable, diff-friendly JSON."""
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# -- history log (BENCH_history.jsonl) ---------------------------------------

def history_record(report: dict) -> dict:
    """One compact history line for a bench report or throughput run.

    Keeps only what trend-reading needs — suite, per-city medians (or QPS
    per worker count for serve runs), the cold/warm counter dumps and the
    environment stamp.  Deliberately carries **no timestamp**: records
    are ordered by their position in the log and stay byte-reproducible
    for a given commit, matching the repo's determinism convention.
    """
    suite = report.get("suite")
    record: dict = {
        "schema_version": report.get("schema_version"),
        "suite": suite,
        "environment": report.get("environment", {}),
        "cities": {},
    }
    if suite == "serve":
        record["micro_batch"] = report.get("micro_batch", 1)
        record["cache"] = report.get("cache", False)
        if report.get("zipf") is not None:
            record["zipf"] = report["zipf"]
        if report.get("unique_frac"):
            record["unique_frac"] = report["unique_frac"]
        for name, entry in report.get("cities", {}).items():
            record["cities"][name] = {
                "qps": {str(rec["workers"]): rec["qps"]
                        for rec in entry.get("records", ())},
            }
        return record
    for name, entry in report.get("cities", {}).items():
        city: dict = {
            "medians": {key: value for key, value in entry.items()
                        if key.endswith("_median_s")},
        }
        if "counters" in entry:
            city["counters"] = entry["counters"]
        record["cities"][name] = city
    return record


def append_history(report: dict, path: Path) -> dict:
    """Append one :func:`history_record` line to a ``.jsonl`` log.

    The log is append-only newline-delimited JSON with sorted keys, so
    each run adds exactly one diff line to the committed history file.
    """
    record = history_record(report)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return record


def read_history(path: Path) -> list[dict]:
    """All records of a history log (blank lines skipped)."""
    if not path.exists():
        return []
    return [json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()]


# -- throughput suite (BENCH_serve.json) -------------------------------------

def worker_counts(max_workers: int) -> list[int]:
    """The 1..N sweep points: powers of two up to ``max_workers``, plus N."""
    if max_workers < 1:
        raise ValueError(f"max_workers must be at least 1, got {max_workers}")
    counts = {1 << shift for shift in range(max_workers.bit_length())
              if 1 << shift <= max_workers}
    counts.add(max_workers)
    return sorted(counts)


def _percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) as the nearest-rank order statistic."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def bench_throughput(
    cities: Sequence[str] = DEFAULT_CITIES,
    workers: int = 4,
    concurrency: int | None = None,
    queries: int = 64,
    seed: int = 0,
    scale: float = 1.0,
    eps: float = DEFAULT_EPS,
    jobs: int | None = None,
    verify: bool = False,
    micro_batch: int = 1,
    trace_out: Path | None = None,
    cache: bool = False,
    zipf: float | None = None,
    unique_frac: float = 0.0,
) -> dict:
    """Replay a seeded mixed workload against 1..``workers`` processes.

    For every city and worker count the same ``queries``-request workload
    is served twice through a fresh :class:`~repro.serve.server.EngineServer`
    — an untimed warm pass (snapshot attach, session/describer warm-up)
    and a timed pass — and recorded as QPS plus worker-side latency
    percentiles.  ``concurrency`` bounds the in-flight window (default:
    four per worker).  ``micro_batch`` sets the per-worker drain size
    (``--batch``): workers pull up to that many queued requests per loop
    turn and run same-signature runs against one shared session.
    ``verify=True`` additionally replays the workload on the in-process
    engine and fails unless every payload is identical (the serving
    layer's accelerator contract).

    At the full pool size each city additionally records an
    ``obs.latency_sketch`` section — live p50/p90/p99 per request kind
    and per worker from the merged streaming quantile sketches the
    workers ship with every response.  The section is informational:
    its keys are never regression-gated by :func:`compare_reports`.
    ``trace_out`` (a directory) serves one extra *untimed* traced replay
    per city at the full pool size and writes the stitched cross-process
    Chrome trace there, one ``serve.request`` parent span per request
    with the worker's spans nested beneath it.

    ``zipf`` switches the workload to the Zipf-skewed repeat mix of
    :func:`~repro.serve.workload.make_zipf_workload` with that exponent
    (``unique_frac`` of the requests become cache-adversarial one-offs);
    ``cache`` turns on the server's multi-level result cache.  With
    ``verify=True`` the cached payloads are still compared bit-for-bit
    against the *uncached* in-process replay, which is the cache's
    exactness contract.  Because the warm pass also warms the result
    cache, the timed pass measures steady-state serving: even an
    all-unique stream replays warm, so its ``cache_stats`` legitimately
    report hits.
    """
    from repro.errors import ReproError
    from repro.serve.server import EngineServer, serve_request
    from repro.serve.workload import DEFAULT_ZIPF_S, make_workload, \
        make_zipf_workload

    run: dict = {
        "suite": "serve",
        "schema_version": SCHEMA_VERSION,
        "queries": queries,
        "seed": seed,
        "eps": eps,
        "scale": scale,
        "concurrency": concurrency,
        "micro_batch": micro_batch,
        "cache": bool(cache),
        "zipf": zipf,
        "unique_frac": unique_frac,
        "worker_counts": worker_counts(workers),
        "verified": bool(verify),
        "environment": environment(),
        "cities": {},
    }
    for name, city, engine in _build_cities(cities, scale, jobs):
        if zipf is not None or unique_frac > 0:
            requests = make_zipf_workload(
                engine, city.photos, num_queries=queries, seed=seed,
                s=DEFAULT_ZIPF_S if zipf is None else zipf,
                unique_frac=unique_frac, eps=eps)
        else:
            requests = make_workload(engine, city.photos,
                                     num_queries=queries, seed=seed, eps=eps)
        inline = ([serve_request(engine, city.photos, request)
                   for request in requests] if verify else None)
        entry: dict = {"num_requests": len(requests), "records": []}
        full_pool = run["worker_counts"][-1]
        for count in run["worker_counts"]:
            with EngineServer.for_engine(engine, city.photos, workers=count,
                                         micro_batch=micro_batch,
                                         cache=cache) as server:
                warm0 = time.perf_counter()
                server.run(requests, window=concurrency)
                warm_s = time.perf_counter() - warm0
                t0 = time.perf_counter()
                payloads, service = server.run_with_stats(
                    requests, window=concurrency)
                wall_s = time.perf_counter() - t0
                if count == full_pool:
                    # Informational only (see docstring): none of these
                    # keys match a _metric_direction pattern, so a
                    # --check-against run never gates on them.
                    entry["obs.latency_sketch"] = server.latency_summary()
                    if cache:
                        entry["cache_stats"] = server.cache_stats()
                    if trace_out is not None:
                        trace_dir = Path(trace_out)
                        trace_dir.mkdir(parents=True, exist_ok=True)
                        with obs_tracer.tracing_scope(True):
                            server.run(requests, window=concurrency)
                        trace_path = server.export_trace(
                            trace_dir / f"serve_{name}.trace.json")
                        entry["trace_file"] = str(trace_path)
            if inline is not None and payloads != inline:
                raise ReproError(
                    f"{name}: worker payloads diverged from the in-process "
                    f"engine at {count} worker(s)")
            entry["records"].append({
                "workers": count,
                "wall_s": wall_s,
                "warm_wall_s": warm_s,
                "qps": len(requests) / wall_s if wall_s > 0 else 0.0,
                "latency_p50_s": _percentile(service, 0.50),
                "latency_p90_s": _percentile(service, 0.90),
                "latency_p99_s": _percentile(service, 0.99),
            })
        base_qps = entry["records"][0]["qps"]
        entry["qps_speedup_vs_1_worker"] = {
            str(record["workers"]):
                (record["qps"] / base_qps if base_qps > 0 else 0.0)
            for record in entry["records"]}
        run["cities"][name] = entry
    return run


def append_serve_run(run: dict, path: Path) -> dict:
    """Append one throughput run to ``BENCH_serve.json`` and rewrite it.

    The serve report is an append-only log (``{"runs": [...]}``): worker
    scaling is hardware-dependent, so history across machines is worth
    more than a single overwritten record.  An existing file with a
    different ``schema_version`` is restarted rather than mixed.
    """
    report = {"suite": "serve", "schema_version": SCHEMA_VERSION, "runs": []}
    if path.exists():
        previous = json.loads(path.read_text(encoding="utf-8"))
        if (previous.get("suite") == "serve"
                and previous.get("schema_version") == SCHEMA_VERSION
                and isinstance(previous.get("runs"), list)):
            report["runs"] = previous["runs"]
    report["runs"].append(run)
    write_report(report, path)
    return report


# -- baseline comparison (--check-against) -----------------------------------

def _metric_direction(path: tuple[str, ...]) -> str | None:
    """Whether a numeric leaf is lower-better, higher-better, or ignored."""
    key = path[-1] if path else ""
    if key == "qps" or (len(path) >= 2
                        and path[-2] == "qps_speedup_vs_1_worker"):
        return "higher"
    if key.endswith("_median_s") or key in (
            "wall_s", "warm_wall_s", "latency_p50_s", "latency_p90_s",
            "latency_p99_s"):
        return "lower"
    if len(path) >= 2 and path[-2].endswith("_points"):
        return "lower"  # per-point median seconds, keyed by sweep value
    return None


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.2,
    min_delta_s: float = 0.005,
) -> list[dict]:
    """Regressions of ``current`` versus a committed baseline report.

    Walks both reports in parallel and compares every shared numeric
    metric: medians/latencies regress when the current value exceeds the
    baseline by more than ``tolerance`` (relative); QPS-style metrics
    regress when they drop below ``baseline * (1 - tolerance)``.  Returns
    one dict per regression (empty list = pass).  Raises ``ValueError``
    on mismatched ``schema_version`` — cross-schema numbers are not
    comparable.

    Seconds-valued (lower-is-better) metrics must additionally exceed the
    baseline by ``min_delta_s`` absolute: per-point values in a
    single-repeat smoke run are single samples of millisecond-scale
    queries, where scheduler jitter alone can breach any relative
    tolerance.  The floor is far below every headline median's tolerance
    band, so it only desensitises the sub-10ms leaves.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    cur_schema = current.get("schema_version", 1)
    base_schema = baseline.get("schema_version", 1)
    if cur_schema != base_schema and not (
            cur_schema in COMPARABLE_SCHEMAS
            and base_schema in COMPARABLE_SCHEMAS):
        raise ValueError(
            f"cannot compare schema_version {cur_schema} against baseline "
            f"schema_version {base_schema}")
    regressions: list[dict] = []

    def walk(cur: object, base: object, path: tuple[str, ...]) -> None:
        if isinstance(cur, dict) and isinstance(base, dict):
            # JSON round-trips stringify int keys (sweep points).
            cur_by_key = {str(key): value for key, value in cur.items()}
            for key, base_value in base.items():
                key = str(key)
                if key in cur_by_key:
                    walk(cur_by_key[key], base_value, path + (key,))
            return
        if isinstance(cur, list) and isinstance(base, list):
            # The serve suite's per-worker-count records: align on the
            # "workers" key so partial sweeps compare the right rows.
            def row_key(item: object, index: int) -> str:
                if isinstance(item, dict) and "workers" in item:
                    return f"workers={item['workers']}"
                return str(index)

            cur_rows = {row_key(item, i): item for i, item in enumerate(cur)}
            for i, base_item in enumerate(base):
                key = row_key(base_item, i)
                if key in cur_rows:
                    walk(cur_rows[key], base_item, path + (key,))
            return
        if (isinstance(cur, (int, float)) and isinstance(base, (int, float))
                and not isinstance(cur, bool) and not isinstance(base, bool)):
            direction = _metric_direction(path)
            if direction is None or base <= 0:
                return
            if direction == "lower":
                regressed = (cur > base * (1.0 + tolerance)
                             and cur - base > min_delta_s)
            else:
                regressed = cur < base * (1.0 - tolerance)
            if regressed:
                regressions.append({
                    "metric": ".".join(path),
                    "direction": direction,
                    "baseline": float(base),
                    "current": float(cur),
                    "ratio": float(cur / base),
                })

    walk(current, baseline, ())
    return regressions
