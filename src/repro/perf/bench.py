"""The ``repro bench`` harness: timed Figure 4 / Figure 6 configurations.

Measures the two hot paths this layer optimises — k-SOI parameter sweeps
(Figure 4's ``k`` and ``|Psi|`` axes, SOI algorithm vs the BL baseline)
and greedy photo selection (Figure 6, naive greedy vs ST_Rel+Div) — and
writes ``BENCH_soi.json`` / ``BENCH_describe.json`` reports that combine:

* **medians**: the median full-sweep wall time over ``repeats`` runs plus
  per-point medians (robust against scheduler noise, comparable across
  commits as long as the machine is);
* **work counters**: kernel calls, cache traffic and pruning counts from
  :class:`~repro.core.results.SOIStats` /
  :class:`~repro.core.describe.stats.DescribeStats` — machine-independent
  evidence of *why* a timing moved, including a cold-vs-warm query pair
  that shows what :class:`~repro.perf.session.QuerySession` reuse saves.

Timed sections always run sequentially (Python threads share the GIL, so
parallel timing would measure contention); ``jobs`` only parallelises the
untimed setup of per-city datasets and engines via
:func:`~repro.perf.parallel.run_parallel`.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.describe.greedy import GreedyDescriber
from repro.core.describe.profile import StreetProfile, build_street_profile
from repro.core.describe.st_rel_div import STRelDivDescriber
from repro.core.soi import DEFAULT_EPS, SOIEngine
from repro.core.soi_baseline import BaselineSOI
from repro.datagen.city import City
from repro.datagen.presets import build_preset
from repro.eval.experiments import PAPER_QUERY_KEYWORDS
from repro.perf.parallel import run_parallel

DEFAULT_CITIES: tuple[str, ...] = ("vienna", "berlin", "london")
SOI_KS: tuple[int, ...] = (10, 25, 50, 100)
SOI_PSIS: tuple[int, ...] = (1, 2, 3, 4)
DESCRIBE_KS: tuple[int, ...] = (10, 20, 30, 40, 50)
SOI_REPORT = "BENCH_soi.json"
DESCRIBE_REPORT = "BENCH_describe.json"


def median_sweep(
    fn: Callable[[object], object],
    points: Sequence[object],
    repeats: int,
) -> tuple[float, dict[object, float]]:
    """Median full-sweep seconds and per-point median seconds.

    Runs ``fn`` over every point ``repeats`` times; the *sweep* median
    (one pass over all points) is the headline number because sweep reuse
    is exactly what the session cache accelerates.
    """
    sweeps: list[float] = []
    per_point: dict[object, list[float]] = {p: [] for p in points}
    for _ in range(repeats):
        t0 = time.perf_counter()
        for point in points:
            s0 = time.perf_counter()
            fn(point)
            per_point[point].append(time.perf_counter() - s0)
        sweeps.append(time.perf_counter() - t0)
    return (statistics.median(sweeps),
            {p: statistics.median(v) for p, v in per_point.items()})


def environment() -> dict[str, str]:
    """Version stamps a report needs to be comparable."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _build_cities(cities: Sequence[str], scale: float,
                  jobs: int | None) -> list[tuple[str, City, SOIEngine]]:
    """Datasets and engines per city (untimed; safe to parallelise)."""

    def build(name: str) -> tuple[str, City, SOIEngine]:
        city = build_preset(name, scale)
        return name, city, SOIEngine(city.network, city.pois)

    return run_parallel([lambda n=name: build(n) for name in cities],
                        jobs=jobs)


def _cold_warm_counters(
    engine: SOIEngine, keywords: Sequence[str], k: int, eps: float,
) -> dict[str, dict[str, int]]:
    """Counters of a cold query and an identical warm rerun.

    The warm rerun is the session cache's best case: every mass is served
    from the memo, so ``kernel_calls`` collapses to zero.
    """
    engine.invalidate_sessions()
    _res, cold = engine.top_k_with_stats(keywords, k=k, eps=eps)
    _res, warm = engine.top_k_with_stats(keywords, k=k, eps=eps)
    return {"cold": cold.counters(), "warm": warm.counters()}


def bench_soi(
    cities: Sequence[str] = DEFAULT_CITIES,
    repeats: int = 5,
    scale: float = 1.0,
    eps: float = DEFAULT_EPS,
    jobs: int | None = None,
) -> dict:
    """The Figure 4 timing suite: SOI vs BL over ``k`` and ``|Psi|`` sweeps."""
    keywords = PAPER_QUERY_KEYWORDS[:3]
    report: dict = {
        "suite": "soi",
        "eps": eps,
        "scale": scale,
        "repeats": repeats,
        "ks": list(SOI_KS),
        "psis": list(SOI_PSIS),
        "keywords": list(keywords),
        "environment": environment(),
        "cities": {},
    }
    for name, _city, engine in _build_cities(cities, scale, jobs):
        engine.cell_maps.augmented_cell_counts(eps)  # untimed eps warm-up
        baseline = BaselineSOI(engine)
        entry: dict = {}
        median, points = median_sweep(
            lambda k: engine.top_k(keywords, k=k, eps=eps), SOI_KS, repeats)
        entry["soi_k_sweep_median_s"] = median
        entry["soi_k_points"] = points
        median, points = median_sweep(
            lambda k: baseline.top_k(keywords, k=k, eps=eps),
            SOI_KS, repeats)
        entry["bl_k_sweep_median_s"] = median
        entry["bl_k_points"] = points
        median, points = median_sweep(
            lambda p: engine.top_k(PAPER_QUERY_KEYWORDS[:p], k=50, eps=eps),
            SOI_PSIS, repeats)
        entry["soi_psi_sweep_median_s"] = median
        entry["soi_psi_points"] = points
        median, points = median_sweep(
            lambda p: baseline.top_k(PAPER_QUERY_KEYWORDS[:p], k=50,
                                     eps=eps),
            SOI_PSIS, repeats)
        entry["bl_psi_sweep_median_s"] = median
        entry["bl_psi_points"] = points
        entry["counters"] = _cold_warm_counters(engine, keywords, 50, eps)
        report["cities"][name] = entry
    return report


def _profile_for(city: City, engine: SOIEngine, category: str,
                 eps: float) -> StreetProfile | None:
    results = engine.top_k([category], k=1, eps=eps)
    if not results:
        return None
    return build_street_profile(city.network, results[0].street_id,
                                city.photos, eps)


def bench_describe(
    cities: Sequence[str] = DEFAULT_CITIES,
    repeats: int = 3,
    scale: float = 1.0,
    eps: float = DEFAULT_EPS,
    jobs: int | None = None,
    category: str = "shop",
    lam: float = 0.5,
    w: float = 0.5,
) -> dict:
    """The Figure 6 timing suite: greedy BL vs ST_Rel+Div over ``k``."""
    report: dict = {
        "suite": "describe",
        "eps": eps,
        "scale": scale,
        "repeats": repeats,
        "ks": list(DESCRIBE_KS),
        "category": category,
        "lam": lam,
        "w": w,
        "environment": environment(),
        "cities": {},
    }
    for name, city, engine in _build_cities(cities, scale, jobs):
        profile = _profile_for(city, engine, category, eps)
        if profile is None or len(profile) == 0:
            report["cities"][name] = {"num_photos": 0, "skipped": True}
            continue
        greedy = GreedyDescriber(profile)
        st = STRelDivDescriber(profile)
        entry: dict = {"num_photos": len(profile),
                       "street": profile.street_name}
        median, points = median_sweep(
            lambda k: greedy.select(k, lam, w), DESCRIBE_KS, repeats)
        entry["bl_k_sweep_median_s"] = median
        entry["bl_k_points"] = points
        median, points = median_sweep(
            lambda k: st.select(k, lam, w), DESCRIBE_KS, repeats)
        entry["st_k_sweep_median_s"] = median
        entry["st_k_points"] = points
        top_k = DESCRIBE_KS[-1]
        _pos, bl_stats = greedy.select_with_stats(top_k, lam, w)
        _pos, st_stats = st.select_with_stats(top_k, lam, w)
        entry["counters"] = {f"bl_k{top_k}": bl_stats.counters(),
                             f"st_k{top_k}": st_stats.counters()}
        report["cities"][name] = entry
    return report


def write_report(report: dict, path: Path) -> None:
    """Write one bench report as stable, diff-friendly JSON."""
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
