"""Exact-result caching with dominated-``k`` reuse for the serve path.

A :class:`ResultCache` memoises finished request payloads — the
:class:`~repro.core.results.SOIResult` list of a k-SOI query or the photo-id
list of a describe query — keyed by the request's *canonical signature*.
For k-SOI the signature is every parameter **except** ``k`` (kind,
normalised ``Ψ``, ``ε``, ``weighted``, access strategy), because the
ranking is *prefix-stable* under the engine's deterministic tie-break:
``sorted(..., key=(-interest, street_id))`` sliced ``[:k]`` means the
k′-result is the first k′ entries of the k-result for any k′ ≤ k
(`repro.core.soi._refine`).

One k-SOI entry per signature therefore answers *every* ``k`` up to the
stored entry's: an equal ``k`` is an exact hit, a smaller ``k`` is a
*dominated-k* hit served by slicing, and a larger ``k`` still hits when
the stored payload is **exhausted** (shorter than its own ``k`` — the
engine ran out of positive-interest streets, so no larger request can
see more).  Under ``REPRO_CHECK=1`` every dominated slice is re-derived
from scratch and compared bit-for-bit
(:func:`repro.analysis.contracts.check_prefix_slice`).

Describe signatures **do carry** ``k`` (street, ``ε``, ``λ``, ``w``,
``ρ``, ``k``): Equation 10 normalises the diversity term by
``λ / (k - 1)``, so the marginal value — and hence the greedy selection
itself, not just its length — depends on the requested summary size.
MMR summaries are *not* prefix-stable across ``k``
(``tests/test_prefix_stability.py`` keeps a concrete counterexample),
so describe payloads are reused only on exact-signature hits.

Entries are LRU-ordered and doubly bounded (entry count and estimated
payload bytes); the cache is stamped with the owning engine's
``index_generation`` and :meth:`ResultCache.ensure_generation` discards
everything wholesale the moment the stamp moves — stale exact results are
never patched, mirroring :class:`~repro.perf.session.QuerySessionPool`.
Counters and gauges flow into :mod:`repro.obs.metrics` under the stable
``serve.cache.*`` names, so hit rates surface in ``repro metrics``,
``repro top`` and the OpenMetrics export.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.analysis import contracts
from repro.data.keywords import normalize_keywords
from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

DEFAULT_MAX_ENTRIES = 256
"""Default signature capacity: enough for every distinct query of the
paper's experiment grid with room to spare, small enough that the LRU
scan stays trivial."""

DEFAULT_MAX_BYTES = 32 << 20
"""Default payload byte budget (32 MiB of estimated payload size)."""

MISS = object()
"""Sentinel returned by :meth:`ResultCache.lookup` on a miss (payloads may
legitimately be empty lists, so ``None`` cannot signal a miss)."""

METRIC_PREFIX = "serve.cache."
"""Stable metric-name prefix: ``serve.cache.exact_hits``,
``serve.cache.dominated_hits``, ``serve.cache.exhausted_hits``,
``serve.cache.misses``, ``serve.cache.insertions``,
``serve.cache.evictions``, ``serve.cache.invalidations`` (counters) and
``serve.cache.bytes`` / ``serve.cache.entries`` (gauges)."""


def request_cache_key(request) -> tuple:
    """The canonical signature of a request.

    k-SOI keys drop ``k`` (the ranking is prefix-stable, so one entry
    answers every smaller ``k`` by slicing); describe keys keep it
    (Equation 10's ``λ / (k - 1)`` normalisation makes the selection
    k-dependent, so only identical requests may share a payload).
    Keywords are normalised exactly as the engine normalises them, so
    requests that the engine cannot distinguish share a key.  The access
    strategy is kept in the key even though all strategies return the
    same exact answer: the cache promises *bit-identity with the path the
    caller asked for*, not merely semantic equality.
    """
    # Imported late to avoid a cycle: serve.server imports this module.
    from repro.serve.server import DescribeRequest, SOIRequest

    if isinstance(request, SOIRequest):
        return ("soi", tuple(sorted(normalize_keywords(request.keywords))),
                request.eps, bool(request.weighted), request.strategy)
    if isinstance(request, DescribeRequest):
        return ("describe", request.street_id, request.eps,
                request.lam, request.w, request.rho, request.k)
    return ("other", type(request).__name__, repr(request))


def slice_payload(payload: list, k: int) -> list:
    """The first ``k`` entries of a cached payload, as a fresh list.

    Always copies — even when ``k`` covers the whole payload — so every
    waiter owns its result and no caller can mutate the cached entry.
    """
    return payload[:k]


def estimate_payload_bytes(payload) -> int:
    """Deterministic rough byte size of a payload for the cache budget.

    ``sys.getsizeof`` of the container plus one level of items (SOI
    results are flat slotted dataclasses; describe payloads are ints).
    An estimate is enough: the budget exists to bound memory growth, not
    to account for it exactly.
    """
    if isinstance(payload, (list, tuple)):
        total = sys.getsizeof(payload)
        for item in payload:
            total += sys.getsizeof(item)
            name = getattr(item, "street_name", None)
            if name is not None:
                total += sys.getsizeof(name)
        return total
    return sys.getsizeof(payload)


class _Entry:
    """One cached payload: the ``k`` it was computed at, and its size."""

    __slots__ = ("k", "payload", "nbytes")

    def __init__(self, k: int, payload: list, nbytes: int) -> None:
        self.k = k
        self.payload = payload
        self.nbytes = nbytes


class ResultCache:
    """Generation-stamped, LRU + byte-bounded exact-result cache.

    Thread-safe: all bookkeeping happens under one lock (lookups copy the
    payload out, so no caller ever holds a reference into the cache).
    """

    __slots__ = ("_entries", "_lock", "_max_entries", "_max_bytes",
                 "_nbytes", "generation", "_registry")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 generation: int = 0,
                 registry: "MetricsRegistry | None" = None) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be at least 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be at least 1, got {max_bytes}")
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._nbytes = 0
        self.generation = generation
        self._registry = REGISTRY if registry is None else registry

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Estimated bytes of all cached payloads."""
        with self._lock:
            return self._nbytes

    @property
    def registry(self) -> "MetricsRegistry":
        """The metrics registry this cache's counters flow into."""
        return self._registry

    COUNTER_NAMES = ("exact_hits", "dominated_hits", "exhausted_hits",
                     "misses", "insertions", "evictions", "invalidations",
                     "kmax_elevations")
    """The canonical ``serve.cache.*`` counters, present in every
    :meth:`stats` snapshot even before their first increment."""

    def stats(self) -> dict:
        """Counter/gauge snapshot of this cache's registry namespace."""
        out = dict(self._registry.counters_with_prefix(METRIC_PREFIX))
        for name in self.COUNTER_NAMES:
            out.setdefault(name, 0)
        with self._lock:
            out["entries"] = len(self._entries)
            out["bytes"] = self._nbytes
        hits = (out.get("exact_hits", 0) + out.get("dominated_hits", 0)
                + out.get("exhausted_hits", 0))
        total = hits + out.get("misses", 0)
        out["hits"] = hits
        out["hit_rate"] = (hits / total) if total else 0.0
        return out

    # -- generation stamping ----------------------------------------------

    def ensure_generation(self, generation: int) -> None:
        """Wholesale invalidation when the index generation moves on."""
        with self._lock:
            if generation == self.generation:
                return
            self._entries.clear()
            self._nbytes = 0
            self.generation = generation
            self._registry.inc(METRIC_PREFIX + "invalidations")
            self._publish_gauges(0, 0)

    def invalidate(self, generation: int | None = None) -> None:
        """Drop every entry; optionally restamp to ``generation``."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
            if generation is not None:
                self.generation = generation
            self._registry.inc(METRIC_PREFIX + "invalidations")
            self._publish_gauges(0, 0)

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: tuple, k: int,
               recompute: "Callable[[], list] | None" = None):
        """The payload for ``(key, k)``, or :data:`MISS`.

        A stored entry at ``k_e`` answers ``k == k_e`` exactly, any
        ``k < k_e`` by slicing (dominated-k reuse), and ``k > k_e`` when
        the stored payload is exhausted (``len(payload) < k_e`` — the
        result set ran dry below ``k_e``, so deeper requests see the same
        list).  With contracts enabled and ``recompute`` given, every
        sliced or exhausted hit is checked bit-for-bit against a fresh
        computation before being served.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._registry.inc(METRIC_PREFIX + "misses")
                return MISS
            if k == entry.k:
                counter, sliced = "exact_hits", False
            elif k < entry.k:
                counter, sliced = "dominated_hits", True
            elif len(entry.payload) < entry.k:
                counter, sliced = "exhausted_hits", True
            else:
                self._registry.inc(METRIC_PREFIX + "misses")
                return MISS
            self._entries.move_to_end(key)
            self._registry.inc(METRIC_PREFIX + counter)
            payload = slice_payload(entry.payload, k)
        if sliced and contracts.ENABLED and recompute is not None:
            contracts.check_prefix_slice(payload, recompute(), key, k)
        return payload

    def store(self, key: tuple, k: int, payload: list) -> None:
        """Remember ``payload`` as the exact answer for ``(key, k)``.

        When an entry already exists, the larger-``k`` payload wins (it
        dominates the smaller one); storing an equal-or-smaller ``k``
        only refreshes the LRU position.
        """
        nbytes = estimate_payload_bytes(payload)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if k <= entry.k:
                    return
                self._nbytes -= entry.nbytes
                entry.k, entry.payload, entry.nbytes = k, payload, nbytes
                self._nbytes += nbytes
            else:
                self._entries[key] = _Entry(k, payload, nbytes)
                self._nbytes += nbytes
                self._registry.inc(METRIC_PREFIX + "insertions")
            evicted = 0
            while (len(self._entries) > self._max_entries
                   or (self._nbytes > self._max_bytes
                       and len(self._entries) > 1)):
                _, old = self._entries.popitem(last=False)
                self._nbytes -= old.nbytes
                evicted += 1
            if evicted:
                self._registry.inc(METRIC_PREFIX + "evictions", evicted)
            self._publish_gauges(self._nbytes, len(self._entries))

    def _publish_gauges(self, nbytes: int, entries: int) -> None:
        """Gauge refresh; values are passed in so callers (which already
        hold the lock) never re-enter it."""
        self._registry.set_gauge(METRIC_PREFIX + "bytes", float(nbytes))
        self._registry.set_gauge(METRIC_PREFIX + "entries", float(entries))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (f"ResultCache(entries={len(self._entries)}, "
                    f"nbytes={self._nbytes}, generation={self.generation})")


__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "MISS",
    "ResultCache",
    "estimate_payload_bytes",
    "request_cache_key",
    "slice_payload",
]
