"""Deterministic-order parallel execution of independent experiment tasks.

The evaluation drivers run many independent units of work — one bench per
city, one variant per describe method, one configuration per sweep point.
:func:`run_parallel` fans such thunks out over a thread pool and returns
their results **in submission order**, so downstream reports stay
deterministic regardless of completion order.

Threads (not processes) are used deliberately: the hot kernels release the
GIL inside NumPy, the engines/caches are shared (a process pool would have
to re-pickle them), and a failed task propagates its exception unchanged.
Pure-Python phases still serialise on the GIL, so *timed* measurements
should keep ``jobs=1`` — the bench harness parallelises only the untimed
setup work by default and documents the caveat for everything else.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def run_parallel(tasks: Sequence[Callable[[], T]],
                 jobs: int | None = None) -> list[T]:
    """Run independent thunks, returning results in submission order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a single task)
    degrades to a plain sequential loop with no executor overhead.  The
    first task exception is re-raised after all submitted tasks settle.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    if jobs is None:
        jobs = default_jobs()
    if jobs == 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]
