"""Deterministic-order parallel execution of independent experiment tasks.

The evaluation drivers run many independent units of work — one bench per
city, one variant per describe method, one configuration per sweep point.
:func:`run_parallel` fans such thunks out over a thread pool and returns
their results **in submission order**, so downstream reports stay
deterministic regardless of completion order.

The library has two parallel code paths, and this is the *thread* one:
right for setup and I/O-bound fan-out (building per-city datasets,
loading files, independent experiment drivers over shared engines) where
the engines/caches are shared in-process and the hot kernels release the
GIL inside NumPy.  Pure-Python query phases serialise on the GIL here, so
**timed concurrent query execution** belongs to the other path: the
process-based :class:`repro.serve.server.EngineServer` pool over
shared-memory snapshots, which is what ``repro bench --mode throughput``
measures.  Sequential latency timings (the ``soi``/``describe`` suites)
still use plain loops — neither executor — so their medians measure the
algorithm, not contention.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def run_parallel(tasks: Sequence[Callable[[], T]],
                 jobs: int | None = None) -> list[T]:
    """Run independent thunks, returning results in submission order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a single task)
    degrades to a plain sequential loop with no executor overhead.  The
    first task exception is re-raised after all submitted tasks settle.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    if jobs is None:
        jobs = default_jobs()
    if jobs == 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]
