"""Fixed-point reachability over the call graph, with witness paths.

The interprocedural rules all reduce to the same question: *which
functions can execution reach from these roots, and by what route?*
This module answers it with a plain BFS (edges are already materialised
by :mod:`repro.analysis.callgraph`) plus a generic worklist
``fixed_point`` for rules that propagate richer facts (taint) instead of
a boolean.

Witness paths matter for the findings: "``time.time`` reachable from
``serve_request``" is only actionable with the chain
``serve_request → _score → _jitter`` attached, so :func:`reachable`
keeps BFS parent pointers and :func:`call_path` reconstructs the chain.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Mapping, TypeVar

N = TypeVar("N", bound=Hashable)


def reachable(edges: Mapping[N, Iterable[N]],
              roots: Iterable[N]) -> dict[N, N | None]:
    """BFS closure of ``roots``: node → BFS parent (roots map to None).

    The returned dict's keys are the reachable set; the parent pointers
    reconstruct shortest witness paths via :func:`call_path`.  Roots
    absent from ``edges`` are still included (reachable, no callees).
    """
    parents: dict[N, N | None] = {}
    queue: deque[N] = deque()
    for root in roots:
        if root not in parents:
            parents[root] = None
            queue.append(root)
    while queue:
        node = queue.popleft()
        for callee in edges.get(node, ()):
            if callee not in parents:
                parents[callee] = node
                queue.append(callee)
    return parents


def call_path(parents: Mapping[N, N | None], node: N) -> list[N]:
    """Witness path root → ... → node from BFS parent pointers."""
    path: list[N] = []
    current: N | None = node
    while current is not None:
        path.append(current)
        current = parents.get(current)
    path.reverse()
    return path


def backward_closure(edges: Mapping[N, Iterable[N]],
                     targets: Iterable[N]) -> set[N]:
    """All nodes from which some target is reachable (callers-of closure)."""
    reverse: dict[N, set[N]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            reverse.setdefault(callee, set()).add(caller)
    return set(reachable(reverse, targets))


def fixed_point(nodes: Iterable[N],
                edges: Mapping[N, Iterable[N]],
                init: Callable[[N], frozenset],
                transfer: Callable[[N, frozenset], frozenset]) -> \
        dict[N, frozenset]:
    """Generic forward worklist solver for set-valued dataflow facts.

    Each node starts at ``init(node)``; whenever a node's fact set grows,
    ``transfer(callee, facts)`` pushes (a possibly filtered copy of) the
    facts into each callee, until no set changes.  Facts only ever grow,
    so termination is guaranteed for finite fact domains.
    """
    facts: dict[N, frozenset] = {node: init(node) for node in nodes}
    work: deque[N] = deque(facts)
    while work:
        node = work.popleft()
        current = facts.get(node, frozenset())
        for callee in edges.get(node, ()):
            pushed = transfer(callee, current)
            before = facts.get(callee, frozenset())
            merged = before | pushed
            if merged != before:
                facts[callee] = merged
                work.append(callee)
    return facts


__all__ = ["backward_closure", "call_path", "fixed_point", "reachable"]
