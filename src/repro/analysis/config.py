"""Linter configuration, loadable from ``[tool.repro.lint]`` in pyproject.toml.

Every knob has a default matching this repository's layout, so the linter
works with no configuration at all; the pyproject table exists to make the
policy explicit and editable without touching the rule code.  TOML keys may
use either hyphens or underscores (``assume-positive`` / ``assume_positive``).

Python 3.11+ ships :mod:`tomllib`; on 3.10 the ``tomli`` backport is used
when available, otherwise the defaults apply silently (the linter must not
require dependencies the runtime lacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.10 fallback path
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None

DEFAULT_BASELINE = ".repro-lint-baseline.json"


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Repo-wide lint policy.

    Directory names are package-relative: ``"core"`` means
    ``repro/core/**`` wherever the ``repro`` package lives.
    """

    baseline: str = DEFAULT_BASELINE
    rng_allowed_dirs: tuple[str, ...] = ("datagen",)
    wallclock_checked_dirs: tuple[str, ...] = ("core", "index")
    division_checked_dirs: tuple[str, ...] = ("core", "geometry")
    perf_checked_dirs: tuple[str, ...] = ("core",)
    # The import closure of a serving worker process (repro.serve.server
    # and everything it pulls in): module-level mutable caches there are
    # fork/spawn hazards (REP-P403) because each worker fills its own
    # silently diverging copy.
    serve_checked_dirs: tuple[str, ...] = (
        "core", "data", "geometry", "index", "network", "perf", "serve")
    # Packages whose timing/telemetry must flow through repro.obs
    # (REP-O501/O502); repro.obs itself is exempt by construction.
    obs_checked_dirs: tuple[str, ...] = ("core", "serve")
    # Packages whose trace_span names must come from the central
    # span-name registry (repro.obs.tracer.SPAN_NAMES) — REP-O503 keeps
    # span cardinality bounded and names typo-free.
    span_checked_dirs: tuple[str, ...] = ("core", "serve", "index")
    # Where scalar geometry kernels in loop bodies are a perf hazard
    # (REP-P405): the vectorised cold-path builders under index/ plus the
    # store-layout pass.  ``geometry_checked_files`` lists individual
    # package-relative files outside those directories.
    geometry_checked_dirs: tuple[str, ...] = ("index",)
    geometry_checked_files: tuple[str, ...] = ("core/state_store.py",)
    # Where unbounded cache-named containers are a memory hazard
    # (REP-P406): the serve path holds caches for the lifetime of a
    # worker process, so any dict/OrderedDict named like a cache needs an
    # eviction bound (pop/popitem/clear/del or a len() guard).
    cache_checked_dirs: tuple[str, ...] = ("perf", "serve")
    assume_positive: tuple[str, ...] = ("buffer_area", "buffer_col", "max_d")
    deprecated_names: dict[str, str] = field(
        default_factory=lambda: {"IndexError_": "GridIndexError"})
    disabled_rules: tuple[str, ...] = ()
    # -- cross-module pass (REP-C6xx / F7xx / R8xx) -----------------------
    cross_module: bool = True
    # Functions executed inside (or on behalf of) serving workers: the
    # REP-C601 fork-safety walk starts here.
    worker_entrypoints: tuple[str, ...] = (
        "repro.serve.server._worker_main",
        "repro.serve.server.serve_request",
    )
    # The paper's exact-result hot paths: REP-F701/F702 flag any
    # nondeterminism transitively reachable from these.
    flow_entrypoints: tuple[str, ...] = (
        "repro.core.soi.SOIEngine.top_k",
        "repro.core.soi.SOIEngine.top_k_with_stats",
        "repro.core.describe.greedy.GreedyDescriber.select",
        "repro.core.describe.greedy.GreedyDescriber.select_with_stats",
        "repro.core.describe.st_rel_div.STRelDivDescriber.select",
        "repro.core.describe.st_rel_div.STRelDivDescriber.select_with_stats",
        "repro.serve.server.serve_request",
    )
    # Module prefixes whose functions the flow rules skip: telemetry is
    # *sanctioned* wall-clock use, datagen is seeded by contract, and the
    # linter itself never runs on the hot path.
    flow_exempt_modules: tuple[str, ...] = (
        "repro.obs", "repro.analysis", "repro.datagen")
    root: Path | None = None

    def baseline_path(self) -> Path:
        path = Path(self.baseline)
        if not path.is_absolute() and self.root is not None:
            path = self.root / path
        return path

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Config from one pyproject.toml (defaults where keys are absent)."""
        config = cls(root=pyproject.parent)
        if _toml is None or not pyproject.is_file():
            return config
        with pyproject.open("rb") as handle:
            data = _toml.load(handle)
        table = data.get("tool", {}).get("repro", {}).get("lint", {})
        if not isinstance(table, dict):
            return config
        known = {f.name for f in fields(cls)}
        updates = {}
        for raw_key, value in table.items():
            key = raw_key.replace("-", "_")
            if key not in known or key == "root":
                continue
            if isinstance(value, list):
                value = tuple(str(item) for item in value)
            elif isinstance(value, dict):
                value = {str(k): str(v) for k, v in value.items()}
            updates[key] = value
        return replace(config, **updates)

    @classmethod
    def discover(cls, start: Path) -> "LintConfig":
        """Walk upwards from ``start`` looking for a pyproject.toml."""
        current = start.resolve()
        if current.is_file():
            current = current.parent
        for candidate in (current, *current.parents):
            pyproject = candidate / "pyproject.toml"
            if pyproject.is_file():
                return cls.from_pyproject(pyproject)
        return cls(root=current)
