"""Correctness tooling for the reproduction: static analysis + contracts.

Two halves, one goal — make the paper's invariants checkable so that
future performance work (sharding, caching, parallel refactors of the hot
paths) has a safety net:

* :mod:`repro.analysis.contracts` — runtime invariant checks for the
  SOI/describe pipelines, zero-overhead unless enabled via
  ``REPRO_CHECK=1``, ``--check`` or :func:`enable_contracts`;
* the **linter** (:mod:`repro.analysis.engine` and
  :mod:`repro.analysis.rules`) — a custom AST lint pass with repo-specific
  determinism, numeric-safety and API-hygiene rules, runnable as
  ``repro lint`` or ``python -m repro.analysis``.

The contracts half is imported eagerly because the core hot paths read
``contracts.ENABLED``; the linter half is loaded lazily through
``__getattr__`` so importing :mod:`repro.core` never pays for the lint
machinery.
"""

from __future__ import annotations

from repro.analysis import contracts
from repro.analysis.contracts import (
    contracts_enabled,
    enable_contracts,
)
from repro.errors import ContractViolation

_LAZY_EXPORTS = {
    "Finding": "repro.analysis.findings",
    "LintConfig": "repro.analysis.config",
    "LintResult": "repro.analysis.engine",
    "lint_paths": "repro.analysis.engine",
    "lint_source": "repro.analysis.engine",
    "default_rules": "repro.analysis.rules",
    "render_json": "repro.analysis.reporters",
    "render_text": "repro.analysis.reporters",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ContractViolation",
    "Finding",
    "LintConfig",
    "LintResult",
    "contracts",
    "contracts_enabled",
    "default_rules",
    "enable_contracts",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
