"""``python -m repro.analysis`` runs the linter."""

import sys

from repro.analysis.cli import main

sys.exit(main())
