"""Command-line front end of the linter.

Reachable two ways with identical semantics:

* ``repro lint [paths...]`` — subcommand of the main CLI;
* ``python -m repro.analysis [paths...]`` — standalone module entry.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import write_baseline
from repro.analysis.config import LintConfig
from repro.analysis.engine import lint_paths
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared by both entry points)."""
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[Path("src/repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: from "
                             "[tool.repro.lint] or .repro-lint-baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current "
                             "findings and exit 0")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix hints from the text report")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    first = args.paths[0] if args.paths else Path.cwd()
    config = LintConfig.discover(Path(first))
    if args.baseline is not None:
        config = dataclasses.replace(config, baseline=str(args.baseline))

    if args.list_rules:
        for rule in default_rules(config):
            print(f"{rule.id}  {rule.name:<22} [{rule.severity}]  "
                  f"{rule.hint}")
        return 0

    missing = [str(p) for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    result = lint_paths(args.paths, config=config,
                        use_baseline=not (args.no_baseline
                                          or args.update_baseline))
    if args.update_baseline:
        path = config.baseline_path()
        write_baseline(path, result.findings)
        print(f"wrote {len(result.findings)} baseline entries to {path}")
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_hints=not args.no_hints))
    return 0 if result.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro static analysis: determinism, numeric-safety "
                    "and API-hygiene rules for the SOI/describe pipelines")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
