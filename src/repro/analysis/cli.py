"""Command-line front end of the linter.

Reachable two ways with identical semantics:

* ``repro lint [paths...]`` — subcommand of the main CLI;
* ``python -m repro.analysis [paths...]`` — standalone module entry.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

``--changed`` scopes *reporting* to files touched per ``git diff`` (plus
untracked files) while still parsing the full path set so the call graph
behind the cross-module rules stays complete.  ``--graph`` prints a
deterministic dump of the module/call graph — definition counts, edges,
per-module unresolved call sites, per-entrypoint reachable set sizes —
for triaging resolution misses.
"""

from __future__ import annotations

import argparse
import dataclasses
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import BaselineFormatError, write_baseline
from repro.analysis.config import LintConfig
from repro.analysis.engine import collect_parsed, lint_paths
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared by both entry points)."""
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[Path("src/repro")],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: from "
                             "[tool.repro.lint] or .repro-lint-baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current "
                             "findings and exit 0")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix hints from the text report")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    parser.add_argument("--changed", action="store_true",
                        help="report only findings in files touched per "
                             "git diff (fast pre-commit runs)")
    parser.add_argument("--no-cross-module", action="store_true",
                        help="skip the interprocedural REP-C6xx/F7xx/R8xx "
                             "pass")
    parser.add_argument("--graph", action="store_true",
                        help="dump the project call graph (definitions, "
                             "edges, unresolved call sites) and exit")


def _git_changed_relpaths(root: Path) -> set[str] | None:
    """Repo-relative paths of modified + untracked ``.py`` files.

    Returns ``None`` when git is unavailable or the root is not a work
    tree (the caller turns that into a usage error).
    """
    changed: set[str] = set()
    for cmd in (["git", "diff", "--name-only", "HEAD"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True,
                timeout=30, check=False)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines()
                       if line.strip().endswith(".py"))
    return changed


def _render_graph(paths: Sequence[Path], config: LintConfig) -> str:
    """Deterministic text dump of the project/call graph for triage."""
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.project import ProjectIndex
    from repro.analysis.reach import reachable

    project = ProjectIndex.from_parsed(collect_parsed(paths, config))
    graph = CallGraph(project)
    out = [
        f"modules:   {len(project.by_module)}",
        f"files:     {len(project.files)}",
        f"classes:   {len(graph.classes)}",
        f"functions: {len(graph.functions)}",
        f"edges:     {graph.edge_count()}",
        f"instances: {len(graph.instances)}",
        "",
        "unresolved call sites by module:",
    ]
    for module, count in sorted(graph.unresolved.items()):
        out.append(f"  {module}: {count}")
    if not graph.unresolved:
        out.append("  (none)")
    out.append("")
    out.append("entrypoint reachability:")
    entrypoints = sorted(set(config.worker_entrypoints)
                         | set(config.flow_entrypoints))
    for entry in entrypoints:
        if entry not in graph.functions:
            out.append(f"  {entry}: MISSING from graph")
            continue
        n = len(reachable(graph.edges, [entry]))
        out.append(f"  {entry}: {n} reachable functions")
    return "\n".join(out)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    first = args.paths[0] if args.paths else Path.cwd()
    config = LintConfig.discover(Path(first))
    if args.baseline is not None:
        config = dataclasses.replace(config, baseline=str(args.baseline))

    if args.list_rules:
        from repro.analysis.rules.crossmodule import default_project_rules
        for rule in (*default_rules(config),
                     *default_project_rules(config)):
            print(f"{rule.id}  {rule.name:<22} [{rule.severity}]  "
                  f"{rule.hint}")
        return 0

    missing = [str(p) for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if args.graph:
        print(_render_graph(args.paths, config))
        return 0

    restrict_to: set[str] | None = None
    if args.changed:
        root = config.root if config.root is not None else Path.cwd()
        restrict_to = _git_changed_relpaths(root)
        if restrict_to is None:
            print(f"repro lint: --changed needs a git work tree at {root}",
                  file=sys.stderr)
            return 2

    try:
        result = lint_paths(
            args.paths, config=config,
            use_baseline=not (args.no_baseline or args.update_baseline),
            cross_module=False if args.no_cross_module else None,
            restrict_to=restrict_to)
    except BaselineFormatError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        path = config.baseline_path()
        write_baseline(path, result.findings)
        print(f"wrote {len(result.findings)} baseline entries to {path}")
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_hints=not args.no_hints))
    return 0 if result.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro static analysis: determinism, numeric-safety, "
                    "API-hygiene and cross-module concurrency/flow rules "
                    "for the SOI/describe/serve pipelines")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
