"""Name-resolution call graph over the project, conservative on dynamics.

The cross-module rules (REP-C6xx/F7xx/R8xx) need to know which functions
are *transitively* reachable from a handful of entry points — worker
loops, ``SOIEngine.top_k``, ``serve_request``.  This module builds a call
graph good enough for that purpose using purely static name resolution:

* module-scope functions and classes, including nested definitions
  (``repro.serve.server.EngineServer.close``,
  ``repro.serve.server._worker_main``);
* ``from``-imports and module aliases via the same :class:`ImportMap`
  the file-local rules use;
* ``self.method()`` through a depth-first MRO walk over project bases;
* parameter/return annotations (including string annotations,
  ``Optional[X]`` and ``X | None``), single-assignment local variable
  types (``snap = IndexSnapshot.attach(...)``), ``self.attr`` types
  recorded from ``__init__``, and module-level singletons
  (``TRACER = Tracer()`` makes ``TRACER.mark`` resolve).

Dynamic dispatch that static names cannot settle (callbacks, dict-of-
functions, ``getattr``) produces *no* edge; such call sites are counted
per module in :attr:`CallGraph.unresolved` so ``repro lint --graph`` can
triage resolution misses.  The graph therefore under-approximates
reachability — rules built on it miss exotic flows but do not hallucinate
them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import ParsedFile, ProjectIndex
from repro.analysis.rules import ImportMap

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_DEFS = (*_FUNC_DEFS, ast.ClassDef)


@dataclass(slots=True)
class FunctionNode:
    """One function/method definition in the project."""

    qual: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    file: ParsedFile

    @property
    def name(self) -> str:
        return self.node.name


@dataclass(slots=True)
class ClassNode:
    """One class definition plus resolved bases and attribute types."""

    qual: str
    module: str
    node: ast.ClassDef
    file: ParsedFile
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


def body_nodes(fn: ast.AST) -> list[ast.AST]:
    """All AST nodes of a function body, excluding nested def/class bodies.

    Nested definitions are their own :class:`FunctionNode`/:class:`ClassNode`
    scopes; their statements must not be attributed to the enclosing
    function.  The nested ``def``/``class`` *statement* itself is included
    (decorators and defaults run in the outer scope).
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, _SCOPE_DEFS):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


class CallGraph:
    """Static call graph of a :class:`ProjectIndex`.

    ``functions``/``classes`` map qualified names to their nodes;
    ``edges`` maps caller quals to callee quals; ``instances`` maps
    module-level singleton dotted names to class quals; ``unresolved``
    counts call sites per module whose target static resolution gave up
    on (fed to ``repro lint --graph``).
    """

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.edges: dict[str, set[str]] = {}
        self.instances: dict[str, str] = {}
        self.returns: dict[str, str] = {}
        self.unresolved: dict[str, int] = {}
        self._imports: dict[str, ImportMap] = {}
        self._collect_definitions()
        self._resolve_types()
        self._resolve_edges()

    @classmethod
    def build(cls, project: ProjectIndex) -> "CallGraph":
        return cls(project)

    # -- pass 1: definitions ----------------------------------------------

    def _collect_definitions(self) -> None:
        for parsed in self.project.files:
            assert parsed.tree is not None
            if parsed.module:
                self._imports[parsed.module] = ImportMap.of(parsed.tree)
            self._collect_scope(parsed, parsed.tree.body,
                                parsed.module, cls=None)

    def _collect_scope(self, parsed: ParsedFile, body: list[ast.stmt],
                       prefix: str, cls: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, _FUNC_DEFS):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                self.functions[qual] = FunctionNode(
                    qual=qual, module=parsed.module, cls=cls,
                    node=stmt, file=parsed)
                if cls is not None and cls in self.classes:
                    self.classes[cls].methods.setdefault(stmt.name, qual)
                self._collect_scope(parsed, stmt.body, qual, cls=cls)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}" if prefix else stmt.name
                self.classes[qual] = ClassNode(
                    qual=qual, module=parsed.module, node=stmt, file=parsed)
                self._collect_scope(parsed, stmt.body, qual, cls=qual)

    # -- pass 2: types -----------------------------------------------------

    def _resolve_types(self) -> None:
        for cnode in self.classes.values():
            for base in cnode.node.bases:
                target = self._resolve_expr_class(cnode.module, base)
                if target is not None:
                    cnode.bases.append(target)
        for parsed in self.project.files:
            assert parsed.tree is not None
            self._collect_instances(parsed)
        for fnode in self.functions.values():
            target = self._resolve_annotation(fnode.module,
                                              fnode.node.returns)
            if target is not None:
                self.returns[fnode.qual] = target
        for fnode in self.functions.values():
            if fnode.cls is not None:
                self._collect_attr_types(fnode)

    def _collect_instances(self, parsed: ParsedFile) -> None:
        """Module-level ``NAME = ClassRef(...)`` singleton bindings."""
        assert parsed.tree is not None
        for stmt in parsed.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not isinstance(value, ast.Call):
                continue
            cls_qual = self._resolve_expr_class(parsed.module, value.func)
            if cls_qual is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.instances[f"{parsed.module}.{target.id}"] = cls_qual

    def _collect_attr_types(self, fnode: FunctionNode) -> None:
        """``self.X = ClassName(...)`` / annotated-param assignments."""
        assert fnode.cls is not None
        cnode = self.classes.get(fnode.cls)
        if cnode is None:
            return
        param_types = self._param_types(fnode)
        for node in body_nodes(fnode.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, \
                    node.annotation
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            cls_qual: str | None = None
            if annotation is not None:
                cls_qual = self._resolve_annotation(fnode.module, annotation)
            if cls_qual is None and isinstance(value, ast.Call):
                cls_qual = self._resolve_expr_class(fnode.module, value.func)
                if cls_qual is None:
                    callee = self._resolve_call_target(fnode, {}, value.func)
                    if callee is not None:
                        cls_qual = self.returns.get(callee)
            if cls_qual is None and isinstance(value, ast.Name):
                cls_qual = param_types.get(value.id)
            if cls_qual is not None:
                cnode.attr_types.setdefault(target.attr, cls_qual)

    def _param_types(self, fnode: FunctionNode) -> dict[str, str]:
        types: dict[str, str] = {}
        args = fnode.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            target = self._resolve_annotation(fnode.module, arg.annotation)
            if target is not None:
                types[arg.arg] = target
        return types

    # -- name/annotation resolution ---------------------------------------

    def _resolve_symbol(self, module: str, name: str) -> str | None:
        """Project qual a bare name refers to inside ``module``."""
        for table in (self.functions, self.classes, self.instances):
            if f"{module}.{name}" in table:
                return f"{module}.{name}"
        imports = self._imports.get(module)
        if imports is None:
            return None
        origin = imports.members.get(name)
        if origin is not None:
            for table in (self.functions, self.classes, self.instances):
                if origin in table:
                    return origin
        alias = imports.modules.get(name)
        if alias is not None and alias in self.project.by_module:
            return alias
        return None

    def _resolve_dotted(self, module: str, func: ast.expr) -> str | None:
        """Resolve an attribute chain through the module's import map."""
        imports = self._imports.get(module)
        if imports is None:
            return None
        if isinstance(func, ast.Name):
            return self._resolve_symbol(module, func.id)
        dotted = imports.canonical_call_name(func)
        if dotted is None:
            return None
        for table in (self.functions, self.classes, self.instances):
            if dotted in table:
                return dotted
        return None

    def _resolve_expr_class(self, module: str,
                            expr: ast.expr) -> str | None:
        """Class qual an expression names (``Tracer``, ``obs.Tracer``)."""
        if isinstance(expr, ast.Name):
            target = self._resolve_symbol(module, expr.id)
        elif isinstance(expr, ast.Attribute):
            target = self._resolve_dotted(module, expr)
            if target is None and isinstance(expr.value, ast.Name):
                base = self._resolve_symbol(module, expr.value.id)
                if base is not None:
                    target = f"{base}.{expr.attr}"
        else:
            return None
        return target if target in self.classes else None

    def _resolve_annotation(self, module: str,
                            annotation: ast.expr | None) -> str | None:
        """Class qual of an annotation, unwrapping the common wrappers."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval")
            except SyntaxError:
                return None
            return self._resolve_annotation(module, parsed.body)
        if isinstance(annotation, ast.BinOp) \
                and isinstance(annotation.op, ast.BitOr):
            return (self._resolve_annotation(module, annotation.left)
                    or self._resolve_annotation(module, annotation.right))
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            base_name = base.attr if isinstance(base, ast.Attribute) \
                else base.id if isinstance(base, ast.Name) else ""
            if base_name == "Optional":
                return self._resolve_annotation(module, annotation.slice)
            return None
        return self._resolve_expr_class(module, annotation)

    def lookup_method(self, cls_qual: str | None,
                      method: str) -> str | None:
        """MRO-style method lookup: the class, then its bases depth-first."""
        seen: set[str] = set()
        stack = [cls_qual] if cls_qual else []
        while stack:
            current = stack.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            cnode = self.classes.get(current)
            if cnode is None:
                continue
            if method in cnode.methods:
                return cnode.methods[method]
            stack[0:0] = cnode.bases
        return None

    # -- pass 3: edges -----------------------------------------------------

    def _resolve_edges(self) -> None:
        for fnode in self.functions.values():
            callees = self.edges.setdefault(fnode.qual, set())
            var_types = self.local_var_types(fnode)
            for node in body_nodes(fnode.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self._resolve_call_target(fnode, var_types,
                                                   node.func)
                if target is None:
                    if self._counts_as_unresolved(fnode, node.func):
                        self.unresolved[fnode.module] = \
                            self.unresolved.get(fnode.module, 0) + 1
                    continue
                if target in self.classes:
                    init = self.lookup_method(target, "__init__")
                    if init is not None:
                        callees.add(init)
                    continue
                if target in self.functions:
                    callees.add(target)

    def local_var_types(self, fnode: FunctionNode) -> dict[str, str]:
        """Single-assignment local types: annotations and constructor calls.

        ``body_nodes`` yields nodes in no particular order, so the
        single-assignment test is a count: a name assigned more than once
        (or shadowing a typed parameter) gets *no* inferred type rather
        than a guess.
        """
        param_types = self._param_types(fnode)
        counts: dict[str, int] = {}
        candidates: dict[str, str] = {}
        for node in body_nodes(fnode.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, \
                    node.annotation
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            counts[name] = counts.get(name, 0) + 1
            cls_qual: str | None = None
            if annotation is not None:
                cls_qual = self._resolve_annotation(fnode.module, annotation)
            if cls_qual is None and isinstance(value, ast.Call):
                cls_qual = self._resolve_expr_class(fnode.module, value.func)
                if cls_qual is None:
                    callee = self._resolve_call_target(fnode, param_types,
                                                       value.func)
                    if callee is not None:
                        cls_qual = self.returns.get(callee)
            if cls_qual is not None:
                if name in candidates and candidates[name] != cls_qual:
                    counts[name] += 1  # conflicting types: poison the name
                else:
                    candidates[name] = cls_qual
        types = {name: cls for name, cls in param_types.items()
                 if name not in counts}
        types.update({name: cls for name, cls in candidates.items()
                      if counts.get(name) == 1})
        return types

    def _resolve_call_target(self, fnode: FunctionNode,
                             var_types: dict[str, str],
                             func: ast.expr) -> str | None:
        """Project qual (function, class, or None) of one call target."""
        module = fnode.module
        if isinstance(func, ast.Name):
            nested = f"{fnode.qual}.{func.id}"
            if nested in self.functions:
                return nested
            return self._resolve_symbol(module, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        base, method = func.value, func.attr
        # self.method() / cls.method()
        if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                and fnode.cls is not None:
            return self.lookup_method(fnode.cls, method)
        # self.attr.method()
        if isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id == "self" and fnode.cls is not None:
            cnode = self.classes.get(fnode.cls)
            attr_cls = cnode.attr_types.get(base.attr) if cnode else None
            return self.lookup_method(attr_cls, method)
        if isinstance(base, ast.Name):
            # typed local / parameter
            local_cls = var_types.get(base.id)
            if local_cls is not None:
                return self.lookup_method(local_cls, method)
            target = self._resolve_symbol(module, base.id)
            if target is not None:
                if target in self.instances:
                    return self.lookup_method(self.instances[target], method)
                if target in self.classes:
                    return self.lookup_method(target, method)
                if target in self.project.by_module:
                    # module alias: mod.func() / mod.Class()
                    for table in (self.functions, self.classes):
                        if f"{target}.{method}" in table:
                            return f"{target}.{method}"
                return None
        # fully dotted chains (pkg.mod.NAME.method / pkg.mod.func)
        dotted = self._resolve_dotted(module, func)
        if dotted is not None:
            return dotted
        imports = self._imports.get(module)
        if imports is not None:
            chain = imports.canonical_call_name(func)
            if chain is not None and "." in chain:
                head, tail = chain.rsplit(".", 1)
                if head in self.instances:
                    return self.lookup_method(self.instances[head], tail)
        return None

    def _counts_as_unresolved(self, fnode: FunctionNode,
                              func: ast.expr) -> bool:
        """Whether a miss is worth surfacing in the ``--graph`` dump.

        Calls whose root is an *external* import (numpy, stdlib) or a
        builtin are expected misses; what we want to triage are project
        receivers the resolver could not type.
        """
        node = func
        while isinstance(node, ast.Attribute):
            node = node.value
        if not isinstance(node, ast.Name):
            return True  # call on a call result / subscript: dynamic
        if isinstance(func, ast.Name):
            return False  # plain name: builtin or local callable
        imports = self._imports.get(fnode.module)
        if imports is not None and (node.id in imports.modules
                                    or node.id in imports.members):
            dotted = imports.canonical_call_name(func)
            internal = dotted is not None and \
                dotted.split(".", 1)[0] in {"repro", "tests", "benchmarks"}
            return internal
        return True

    # -- stats / accessors -------------------------------------------------

    def imports_for(self, module: str) -> ImportMap:
        imports = self._imports.get(module)
        return imports if imports is not None else ImportMap()

    def resolve_class(self, module: str, expr: ast.expr) -> str | None:
        """Public façade over class-expression resolution (for rules)."""
        return self._resolve_expr_class(module, expr)

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())


__all__ = ["CallGraph", "ClassNode", "FunctionNode", "body_nodes"]
