"""Project-wide source model: content-hash AST cache and module index.

The PR-1 linter parsed each file once *per run* — and the tier-1 gate,
the ``repro lint`` CLI and (now) the cross-module pass each constituted a
run.  This module gives all of them one shared parse:

* :class:`ASTCache` — a process-global cache keyed by the SHA-1 of the
  file *content*.  A cache hit returns the stored AST and line table
  without re-parsing; an edit (different hash) re-parses exactly that
  file.  Trees are treated as immutable by every consumer (rules build
  their parent maps externally), so sharing is safe.
* :class:`ParsedFile` — one parsed source file plus the derived facts
  every pass needs: line table, ``repro``-package location, dotted module
  name, inline suppressions.
* :class:`ProjectIndex` — the set of parsed files of one lint run,
  addressable by module name and by repo-relative path, plus the
  project-internal import graph.  The cross-module rules
  (:mod:`repro.analysis.rules.crossmodule`) and the call graph
  (:mod:`repro.analysis.callgraph`) are built on top of it.
  :meth:`ProjectIndex.from_sources` builds a synthetic project from
  in-memory sources, which is what the rule unit tests use.

Everything here is stdlib-only, like the rest of the analysis package.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Suppression, parse_suppressions

PACKAGE_ANCHOR = "repro"


def _package_parts(relpath: str, path: Path | None) -> tuple[str, ...]:
    """Path parts below the ``repro`` package anchor ('' context otherwise).

    Mirrors the logic of ``FileContext``: the relpath may have been
    computed against a root *inside* the package (no pyproject.toml above
    the file), in which case the absolute path still carries the anchor.
    """
    parts = Path(relpath).parts
    if PACKAGE_ANCHOR not in parts and path is not None \
            and PACKAGE_ANCHOR in path.parts:
        parts = path.parts
    if PACKAGE_ANCHOR in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index(PACKAGE_ANCHOR)
        return parts[anchor + 1:]
    return ()


def _module_name(relpath: str, path: Path | None,
                 package_parts: tuple[str, ...]) -> str:
    """Dotted module name: ``repro.serve.server`` / ``tests.test_obs``."""
    if package_parts:
        parts = (PACKAGE_ANCHOR, *package_parts)
    else:
        parts = Path(relpath).parts
    parts = list(parts)
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(part for part in parts if part)


@dataclass(slots=True)
class ParsedFile:
    """One parsed source file plus the facts shared by every lint pass."""

    path: Path
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module | None
    error: SyntaxError | None
    sha1: str
    package_parts: tuple[str, ...]
    module: str
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def in_package(self) -> bool:
        """Whether the file lives inside the ``repro`` package."""
        return bool(self.package_parts) or \
            Path(self.relpath).name == "__init__.py" and \
            PACKAGE_ANCHOR in Path(self.relpath).parts

    @property
    def top_dir(self) -> str:
        return (self.package_parts[0]
                if len(self.package_parts) > 1 else "")


def parse_source(source: str, relpath: str,
                 path: Path | None = None) -> ParsedFile:
    """Parse one source string into a :class:`ParsedFile` (no caching)."""
    lines = source.splitlines()
    tree: ast.Module | None = None
    error: SyntaxError | None = None
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        error = exc
    package_parts = _package_parts(relpath, path)
    return ParsedFile(
        path=path or Path(relpath),
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        error=error,
        sha1=hashlib.sha1(source.encode("utf-8")).hexdigest(),
        package_parts=package_parts,
        module=_module_name(relpath, path, package_parts),
        suppressions=parse_suppressions(lines),
    )


class ASTCache:
    """Process-global parse cache keyed by file path + content hash.

    ``get`` re-reads the file's bytes (cheap) and re-hashes them; only on
    a hash miss is the source re-parsed.  The cached AST/lines/suppression
    objects are shared between the returned :class:`ParsedFile` instances
    — consumers must treat them as immutable (they do: rules keep parent
    maps and other derived state outside the tree).
    """

    def __init__(self) -> None:
        self._entries: dict[Path, ParsedFile] = {}
        self.hits = 0
        self.misses = 0

    def get(self, path: Path, relpath: str) -> ParsedFile:
        path = path.resolve()
        source = path.read_text(encoding="utf-8")
        sha1 = hashlib.sha1(source.encode("utf-8")).hexdigest()
        cached = self._entries.get(path)
        if cached is not None and cached.sha1 == sha1:
            self.hits += 1
            if cached.relpath == relpath:
                return cached
            # Same content, different root: share the parsed tree, adjust
            # the path-derived fields.
            package_parts = _package_parts(relpath, path)
            return ParsedFile(
                path=path, relpath=relpath, source=cached.source,
                lines=cached.lines, tree=cached.tree, error=cached.error,
                sha1=sha1, package_parts=package_parts,
                module=_module_name(relpath, path, package_parts),
                suppressions=cached.suppressions)
        self.misses += 1
        parsed = parse_source(source, relpath, path=path)
        self._entries[path] = parsed
        return parsed

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


AST_CACHE = ASTCache()
"""The shared cache: the tier-1 gate, the CLI and the cross-module pass
all parse through it, so one lint run parses each file at most once and
repeat runs in the same process parse only edited files."""


class ProjectIndex:
    """The parsed files of one lint run, indexed for cross-module analysis.

    ``files`` preserves discovery order (sorted paths); ``by_module`` and
    ``by_relpath`` give O(1) addressing.  ``import_graph`` maps each
    module to the *project-internal* modules it imports (stdlib and
    third-party targets are dropped), which the ``--graph`` dump and the
    call-graph builder use.
    """

    def __init__(self, files: list[ParsedFile]) -> None:
        self.files: list[ParsedFile] = [f for f in files if f.tree is not None]
        self.by_relpath: dict[str, ParsedFile] = {
            f.relpath: f for f in self.files}
        self.by_module: dict[str, ParsedFile] = {}
        for f in self.files:
            if f.module:
                self.by_module.setdefault(f.module, f)
        self.import_graph: dict[str, set[str]] = {
            f.module: self._internal_imports(f) for f in self.files if f.module}

    @classmethod
    def from_parsed(cls, files: list[ParsedFile]) -> "ProjectIndex":
        return cls(files)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectIndex":
        """A synthetic project from ``{relpath: source}`` (for unit tests)."""
        return cls([parse_source(text, relpath)
                    for relpath, text in sorted(sources.items())])

    # -- import graph ------------------------------------------------------

    def _internal_imports(self, parsed: ParsedFile) -> set[str]:
        targets: set[str] = set()
        assert parsed.tree is not None
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self.by_module:
                        targets.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_import_base(parsed, node)
                if base is None:
                    continue
                if base in self.by_module:
                    targets.add(base)
                for alias in node.names:
                    candidate = f"{base}.{alias.name}"
                    if candidate in self.by_module:
                        targets.add(candidate)
        targets.discard(parsed.module)
        return targets

    @staticmethod
    def _absolute_import_base(parsed: ParsedFile,
                              node: ast.ImportFrom) -> str | None:
        """The absolute module an ``ImportFrom`` resolves against."""
        if not node.level:
            return node.module
        parts = parsed.module.split(".")
        if Path(parsed.relpath).name != "__init__.py":
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[:-drop] if drop < len(parts) else []
        if node.module:
            parts = [*parts, node.module]
        return ".".join(parts) if parts else None

    def __len__(self) -> int:
        return len(self.files)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ProjectIndex(files={len(self.files)}, "
                f"modules={len(self.by_module)})")


__all__ = [
    "AST_CACHE",
    "ASTCache",
    "PACKAGE_ANCHOR",
    "ParsedFile",
    "ProjectIndex",
    "parse_source",
]
