"""Rule infrastructure and the default rule registry.

A rule is a small class with an ``id`` (``REP-<family><number>``), a
severity, a one-line fix ``hint`` and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.findings.Finding` objects.  ``FileContext`` gives
every rule the parsed AST, the raw source lines, the lint configuration
and the file's position inside the ``repro`` package (for directory-scoped
rules such as the wall-clock and division checks).

Rule families:

* ``REP-D1xx`` — determinism (:mod:`repro.analysis.rules.determinism`);
* ``REP-N2xx`` — numeric safety (:mod:`repro.analysis.rules.numeric`);
* ``REP-H3xx`` — API hygiene (:mod:`repro.analysis.rules.hygiene`);
* ``REP-P4xx`` — performance hazards (:mod:`repro.analysis.rules.perf`);
* ``REP-O5xx`` — observability funnels (:mod:`repro.analysis.rules.obs`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.findings import SEVERITY_ERROR, Finding

_BUILTIN_NAMES = frozenset({
    "len", "min", "max", "abs", "sum", "float", "int", "range", "round",
    "sorted", "enumerate", "zip", "list", "tuple", "set", "dict", "str",
})


@dataclass(slots=True)
class ImportMap:
    """Local-name resolution for the imports of one module.

    ``modules`` maps local aliases to dotted module paths
    (``np -> numpy``); ``members`` maps from-imported names to their
    ``module.member`` origin (``shuffle -> random.shuffle``).
    """

    modules: dict[str, str] = field(default_factory=dict)
    members: dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imports.modules[local] = (alias.name if alias.asname
                                              else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports.members[local] = f"{node.module}.{alias.name}"
        return imports

    def canonical_call_name(self, func: ast.expr) -> str | None:
        """Dotted origin of a call target, e.g. ``numpy.random.default_rng``.

        Returns ``None`` when the target cannot be traced to an import
        (locals, ``self.`` attributes, calls on call results, ...).
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        root = node.id
        if root in self.modules:
            return ".".join([self.modules[root], *parts])
        if root in self.members:
            return ".".join([self.members[root], *parts])
        if parts:
            return None  # attribute chain rooted in a non-import
        return root  # a bare builtin or local name


@dataclass(slots=True)
class FileContext:
    """Everything the rules need to know about one source file."""

    path: Path
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module
    config: LintConfig
    imports: ImportMap = field(init=False)
    package_parts: tuple[str, ...] = field(init=False)
    _parents: dict[ast.AST, ast.AST] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.imports = ImportMap.of(self.tree)
        # The relpath may have been computed against a root inside the
        # package (e.g. no pyproject.toml above the file); the absolute
        # path then still carries the ``repro`` anchor.
        parts = Path(self.relpath).parts
        if "repro" not in parts and "repro" in self.path.parts:
            parts = self.path.parts
        if "repro" in parts:
            anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            self.package_parts = parts[anchor + 1:]
        else:
            self.package_parts = parts
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    @property
    def top_dir(self) -> str:
        """Package subdirectory (``core``, ``index``, ...); "" at top level."""
        return self.package_parts[0] if len(self.package_parts) > 1 else ""

    def in_dirs(self, dirs: tuple[str, ...]) -> bool:
        return self.top_dir in dirs

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                return current
            current = self._parents.get(current)
        return None


class Rule:
    """Base class: one static check with a stable id and fix hint."""

    id: str = "REP-X000"
    name: str = "unnamed"
    severity: str = SEVERITY_ERROR
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: str | None = None) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def identifier_texts(node: ast.expr) -> set[str]:
    """Name/attribute texts occurring in an expression.

    For ``self.profile.max_d`` both the dotted text and the trailing
    attribute (``max_d``) are returned so guard matching and the
    assume-positive allowlist can match either form.  Builtin callables
    are excluded.
    """
    texts: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id not in _BUILTIN_NAMES:
            texts.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            texts.add(sub.attr)
            try:
                texts.add(ast.unparse(sub))
            except ValueError:  # pragma: no cover - unparse is total on exprs
                pass
    return texts


def default_rules(config: LintConfig) -> tuple[Rule, ...]:
    """The full registry, minus any rules disabled in the config."""
    from repro.analysis.rules.determinism import (
        SetIterationOrderRule,
        UnseededRngRule,
        WallClockRule,
    )
    from repro.analysis.rules.hygiene import (
        AllDriftRule,
        BroadExceptRule,
        DeprecatedNameRule,
        MutableDefaultRule,
    )
    from repro.analysis.rules.numeric import (
        FloatEqualityRule,
        MathDomainRule,
        UnguardedDivisionRule,
    )
    from repro.analysis.rules.obs import (
        DirectTimerRule,
        HandRolledCounterRule,
        SpanNameRegistryRule,
    )
    from repro.analysis.rules.perf import (
        HeapRescanInLoopRule,
        ListMembershipInLoopRule,
        ModuleLevelMutableCacheRule,
        ScalarGeometryInLoopRule,
        SortedInLoopRule,
        UnboundedCacheRule,
    )

    rules: tuple[Rule, ...] = (
        UnseededRngRule(),
        SetIterationOrderRule(),
        WallClockRule(),
        FloatEqualityRule(),
        UnguardedDivisionRule(),
        MathDomainRule(),
        MutableDefaultRule(),
        BroadExceptRule(),
        AllDriftRule(),
        DeprecatedNameRule(),
        SortedInLoopRule(),
        ListMembershipInLoopRule(),
        HeapRescanInLoopRule(),
        ScalarGeometryInLoopRule(),
        ModuleLevelMutableCacheRule(),
        UnboundedCacheRule(),
        DirectTimerRule(),
        HandRolledCounterRule(),
        SpanNameRegistryRule(),
    )
    disabled = set(config.disabled_rules)
    return tuple(rule for rule in rules if rule.id not in disabled)


__all__ = [
    "FileContext",
    "ImportMap",
    "Rule",
    "default_rules",
    "identifier_texts",
]
