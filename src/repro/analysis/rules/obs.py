"""Observability rules (``REP-O5xx``).

The :mod:`repro.obs` package is the single funnel for timing and
telemetry: the tracer owns the clocks, the metrics registry owns the
counters.  Two hazards erode that over time:

* **REP-O501** — direct ``time.time()``/``time.perf_counter()`` (and
  friends) calls inside the instrumented packages (``core``, ``serve``).
  Scattered ad-hoc timers are invisible to the span tracer and the
  slow-query log; the sanctioned clocks are re-exported by
  :mod:`repro.obs.tracer` (``perf_now``, ``monotonic_now``) so hot paths
  keep a single audited import.
* **REP-O502** — hand-rolled counter dicts (``counts[key] += 1`` or the
  ``d[k] = d.get(k, 0) + 1`` idiom) in the same packages.  Telemetry
  counters belong in the :class:`repro.obs.metrics.MetricsRegistry`
  (namespaced, mergeable across worker processes, dumpable via
  ``repro metrics``); dict bumps that are *algorithmic state* rather
  than telemetry carry a ``# repro-lint: disable=REP-O502`` suppression
  saying so.
* **REP-O503** — ``trace_span`` call sites in the instrumented packages
  whose span name is not a string literal from the central registry
  (:data:`repro.obs.tracer.SPAN_NAMES`).  A typo'd name silently
  vanishes from every profile that filters by name, and dynamic names
  give the trace unbounded cardinality; new instrumentation sites
  register their name in the table first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule
from repro.obs.tracer import SPAN_NAMES

_TIMER_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
})


class DirectTimerRule(Rule):
    id = "REP-O501"
    name = "direct-timer"
    hint = ("import the clock from repro.obs.tracer (perf_now, "
            "monotonic_now) or wrap the region in trace_span so the "
            "timing is visible to the tracer and the slow-query log")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.obs_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted in _TIMER_CALLS:
                yield self.finding(
                    ctx, node,
                    f"direct timer call {dotted}() inside "
                    f"'{ctx.top_dir}/' bypasses the repro.obs clocks")


def _numeric_constant(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def _subscript_base_text(node: ast.Subscript) -> str | None:
    """Source text of the subscripted container (``counts`` / ``self.freq``)."""
    try:
        return ast.unparse(node.value)
    except ValueError:  # pragma: no cover - unparse is total on exprs
        return None


class HandRolledCounterRule(Rule):
    id = "REP-O502"
    name = "hand-rolled-counter"
    hint = ("telemetry counters belong in repro.obs.metrics "
            "(REGISTRY.inc / inc_many); if this dict bump is algorithmic "
            "state, suppress with a reason")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.obs_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                if (isinstance(node.op, ast.Add)
                        and isinstance(node.target, ast.Subscript)
                        and _numeric_constant(node.value)):
                    yield self.finding(
                        ctx, node,
                        "hand-rolled counter bump "
                        f"'{self._text(node.target)} += "
                        f"{node.value.value}' outside repro.obs")
            elif isinstance(node, ast.Assign):
                yield from self._check_get_default(ctx, node)

    def _check_get_default(self, ctx: FileContext,
                           node: ast.Assign) -> Iterator[Finding]:
        """The ``d[k] = d.get(k, 0) + inc`` accumulation idiom."""
        if len(node.targets) != 1 or \
                not isinstance(node.targets[0], ast.Subscript):
            return
        value = node.value
        if not (isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add)):
            return
        base = _subscript_base_text(node.targets[0])
        if base is None:
            return
        for side in (value.left, value.right):
            if not (isinstance(side, ast.Call)
                    and isinstance(side.func, ast.Attribute)
                    and side.func.attr == "get"
                    and len(side.args) == 2
                    and _numeric_constant(side.args[1])):
                continue
            try:
                get_base = ast.unparse(side.func.value)
            except ValueError:  # pragma: no cover
                continue
            if get_base == base:
                yield self.finding(
                    ctx, node,
                    f"hand-rolled counter accumulation '{base}[...] = "
                    f"{base}.get(..., {side.args[1].value}) + ...' "
                    "outside repro.obs")
                return

    @staticmethod
    def _text(node: ast.expr) -> str:
        try:
            return ast.unparse(node)
        except ValueError:  # pragma: no cover
            return "<subscript>"


_TRACE_SPAN_CALLS = frozenset({
    "repro.obs.tracer.trace_span",
    "repro.obs.trace_span",
    "trace_span",  # star-import fallback; the dirs never shadow the name
})


class SpanNameRegistryRule(Rule):
    id = "REP-O503"
    name = "span-name-registry"
    hint = ("span names under the instrumented packages come from the "
            "central table repro.obs.tracer.SPAN_NAMES — register the "
            "new name there (keeps cardinality bounded and names "
            "typo-free), and keep the call-site name a string literal")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.span_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted not in _TRACE_SPAN_CALLS:
                continue
            if not node.args:
                continue  # a syntax error the runtime reports itself
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                yield self.finding(
                    ctx, node,
                    "trace_span name is not a string literal — dynamic "
                    "span names give the trace unbounded cardinality")
                continue
            if name_arg.value not in SPAN_NAMES:
                yield self.finding(
                    ctx, node,
                    f"span name {name_arg.value!r} is not registered in "
                    f"repro.obs.tracer.SPAN_NAMES")


__all__ = ["DirectTimerRule", "HandRolledCounterRule",
           "SpanNameRegistryRule"]
