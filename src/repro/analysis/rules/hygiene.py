"""API-hygiene rules (``REP-H3xx``).

* **REP-H301** — mutable default argument values (``def f(x=[])``): the
  default is created once and shared across calls.
* **REP-H302** — bare ``except:`` and ``except Exception:`` handlers that
  swallow everything; a broad handler is accepted only when it re-raises.
* **REP-H303** — drift between ``__all__`` and the public names actually
  bound in a package ``__init__``: entries that are never bound, and
  public bindings missing from ``__all__``.  ``__future__`` imports and
  imports the module body itself uses (implementation imports rather than
  re-exports) are exempt; files defining a module-level ``__getattr__``
  (lazy exports) skip the unbound direction, which cannot be decided
  statically.
* **REP-H304** — use of a deprecated name (configured under
  ``[tool.repro.lint] deprecated-names``, e.g. ``IndexError_`` after its
  rename to ``GridIndexError``).  Assignments creating the back-compat
  alias are not flagged; imports and loads are.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


class MutableDefaultRule(Rule):
    id = "REP-H301"
    name = "mutable-default"
    hint = "default to None and create the container inside the function"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults if d is not None)]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in '{label}' is shared "
                        "across calls")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CALLS)


class BroadExceptRule(Rule):
    id = "REP-H302"
    name = "broad-except"
    hint = ("catch the narrowest exception that can actually occur "
            "(ReproError subclasses for library failures), or re-raise")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:' swallows every exception "
                    "including KeyboardInterrupt")
                continue
            names = self._exception_names(node.type)
            broad = names & {"Exception", "BaseException"}
            if broad and not self._reraises(node):
                caught = ", ".join(sorted(broad))
                yield self.finding(
                    ctx, node,
                    f"'except {caught}:' without re-raise hides unrelated "
                    "failures")

    @staticmethod
    def _exception_names(node: ast.expr) -> set[str]:
        names = set()
        elements = node.elts if isinstance(node, ast.Tuple) else [node]
        for element in elements:
            if isinstance(element, ast.Name):
                names.add(element.id)
            elif isinstance(element, ast.Attribute):
                names.add(element.attr)
        return names

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(sub, ast.Raise)
                   for sub in ast.walk(handler))


class AllDriftRule(Rule):
    id = "REP-H303"
    name = "all-drift"
    hint = "keep __all__ and the public bindings of the __init__ in sync"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_package_init:
            return
        dunder_all: list[str] | None = None
        dunder_all_node: ast.AST | None = None
        bound: dict[str, ast.AST] = {}
        imported: set[str] = set()
        has_getattr = False
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                if "__all__" in targets:
                    dunder_all_node = node
                    dunder_all = self._string_list(node.value)
                    continue
                for name in targets:
                    bound[name] = node
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                bound[node.target.id] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                if node.name == "__getattr__":
                    has_getattr = True
                bound[node.name] = node
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name != "*":
                        name = alias.asname or alias.name
                        bound[name] = node
                        imported.add(name)
            # plain ``import x`` binds a module object, not re-exported API

        # An import the module body itself reads is an implementation
        # detail, not a re-export; only never-used imports are expected in
        # __all__.
        used = {sub.id for sub in ast.walk(ctx.tree)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)}
        public = {name for name in bound
                  if not name.startswith("_")
                  and not (name in imported and name in used)}
        if dunder_all is None:
            if public:
                yield self.finding(
                    ctx, ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    f"package __init__ binds {len(public)} public names "
                    "but defines no __all__")
            return
        exported = set(dunder_all)
        if not has_getattr:
            for name in sorted(exported - public):
                yield self.finding(
                    ctx, dunder_all_node,
                    f"__all__ exports '{name}' but the module never binds "
                    "it")
        for name in sorted(public - exported):
            yield self.finding(
                ctx, bound[name],
                f"public name '{name}' is bound but missing from __all__")

    @staticmethod
    def _string_list(node: ast.expr) -> list[str] | None:
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None
        values = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            values.append(element.value)
        return values


class DeprecatedNameRule(Rule):
    id = "REP-H304"
    name = "deprecated-name"
    hint = "use the replacement name; the old alias exists only for " \
           "backwards compatibility"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        deprecated = ctx.config.deprecated_names
        if not deprecated:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    replacement = deprecated.get(alias.name)
                    if replacement is not None:
                        yield self.finding(
                            ctx, alias,
                            f"import of deprecated '{alias.name}' "
                            f"(renamed to '{replacement}')")
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                replacement = deprecated.get(node.id)
                if replacement is not None:
                    yield self.finding(
                        ctx, node,
                        f"use of deprecated '{node.id}' "
                        f"(renamed to '{replacement}')")
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                replacement = deprecated.get(node.attr)
                if replacement is not None:
                    yield self.finding(
                        ctx, node,
                        f"use of deprecated '{node.attr}' "
                        f"(renamed to '{replacement}')")


__all__ = [
    "AllDriftRule",
    "BroadExceptRule",
    "DeprecatedNameRule",
    "MutableDefaultRule",
]
