"""Determinism rules (``REP-D1xx``).

The reproduction's contract is bit-for-bit repeatability: the same city,
query and parameters must produce the same ranking and the same summary on
every run.  Three static hazards undermine that:

* **REP-D101** — unseeded random number generation outside the designated
  data-generation package (``datagen`` seeds every generator explicitly);
* **REP-D102** — iterating a ``set``/``frozenset`` expression straight into
  an ordered sink (a ``for`` loop, ``list``/``tuple``/``enumerate``,
  ``str.join`` or a ``return``) — iteration order is hash-dependent for
  strings, so results leak ``PYTHONHASHSEED``;
* **REP-D103** — wall-clock reads inside the algorithmic packages (``core``,
  ``index``); monotonic timers (``perf_counter`` & friends) are fine for
  stats, but wall-clock values must never influence results.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule

_SAFE_NP_RANDOM = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
})

class UnseededRngRule(Rule):
    id = "REP-D101"
    name = "unseeded-rng"
    hint = ("pass an explicit seed (np.random.default_rng(seed)) or move "
            "the randomness into the datagen package")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_dirs(ctx.config.rng_allowed_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted is None:
                continue
            if dotted.endswith(".random.default_rng") or \
                    dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic")
                continue
            if dotted.startswith("numpy.random."):
                member = dotted.rsplit(".", 1)[1]
                if member not in _SAFE_NP_RANDOM:
                    yield self.finding(
                        ctx, node,
                        f"legacy global RNG call numpy.random.{member} "
                        "draws from unseeded process-global state")
                continue
            if dotted.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"stdlib {dotted}() draws from unseeded process-global "
                    "state")


class SetIterationOrderRule(Rule):
    id = "REP-D102"
    name = "set-iteration-order"
    hint = ("wrap the set in sorted(...) before it reaches an ordered "
            "consumer, or use an order-insensitive aggregate")

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and self._is_set_expr(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    "for-loop over a set expression has hash-dependent "
                    "order")
            elif isinstance(node, ast.comprehension) and \
                    self._is_set_expr(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    "comprehension over a set expression has "
                    "hash-dependent order")
            elif isinstance(node, ast.Call):
                func = node.func
                target = None
                if isinstance(func, ast.Name) and \
                        func.id in ("list", "tuple", "enumerate"):
                    target = func.id
                elif isinstance(func, ast.Attribute) and func.attr == "join":
                    target = "str.join"
                if target is None or not node.args:
                    continue
                if self._is_set_expr(node.args[0]):
                    yield self.finding(
                        ctx, node.args[0],
                        f"set expression materialised by {target}() in "
                        "hash-dependent order")


class WallClockRule(Rule):
    id = "REP-D103"
    name = "wall-clock"
    hint = ("use time.perf_counter()/time.monotonic() for timing; "
            "wall-clock values must not reach algorithmic code")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.wallclock_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {dotted}() inside "
                    f"'{ctx.top_dir}/' can make results time-dependent")


__all__ = ["SetIterationOrderRule", "UnseededRngRule", "WallClockRule"]
