"""Numeric-safety rules (``REP-N2xx``).

The paper's measures are ratios of masses over buffer areas and of keyword
frequencies over norms; the classic float hazards in such code are exact
equality tests, divisions whose denominator can silently be zero, and
``math`` domain errors from arguments a rounding error pushed out of range.

* **REP-N201** — ``==``/``!=`` against a float literal.  The accepted
  idiom for degenerate-geometry guards is an inequality against the bound
  (``denom <= 0.0`` for a nonnegative quantity) or :func:`math.isclose`;
  genuine exact sentinels need a per-line suppression with a reason.
* **REP-N202** — a division inside the configured packages (``core``,
  ``geometry``) whose denominator has no *visible* zero-guard: no
  enclosing/nearby condition mentioning the denominator, no allowlisted
  assume-positive callable/attribute (``buffer_area``, ``max_d``), and not
  a nonzero literal.
* **REP-N203** — ``math.sqrt``/``math.acos``/``math.asin`` whose argument
  is not visibly inside the domain (a square, a sum of squares, an
  ``abs``/clamp, or a safe literal).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, identifier_texts


class FloatEqualityRule(Rule):
    id = "REP-N201"
    name = "float-equality"
    hint = ("for nonnegative quantities guard with <= / >= against the "
            "bound; otherwise use math.isclose, or suppress with a reason "
            "for a true exact sentinel")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left = operands[index]
                right = operands[index + 1]
                if self._is_float_literal(left) or \
                        self._is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"exact float comparison "
                        f"'{ast.unparse(left)} {symbol} "
                        f"{ast.unparse(right)}'")

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return isinstance(node, ast.Constant) and \
            isinstance(node.value, float)


class UnguardedDivisionRule(Rule):
    id = "REP-N202"
    name = "unguarded-division"
    hint = ("guard the denominator in the same function (if d <= 0: ..., "
            "'x / d if d else 0'), or allowlist a provably positive "
            "callable/attribute under [tool.repro.lint] assume-positive")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.division_checked_dirs):
            return
        guard_cache: dict[ast.AST | None, list[str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp) or \
                    not isinstance(node.op, (ast.Div, ast.FloorDiv)):
                continue
            denom = node.right
            if self._nonzero_literal(denom):
                continue
            idents = identifier_texts(denom)
            if idents & set(ctx.config.assume_positive):
                continue
            scope = ctx.enclosing_function(node)
            guards = guard_cache.get(scope)
            if guards is None:
                guards = self._guard_texts(scope if scope is not None
                                           else ctx.tree)
                guard_cache[scope] = guards
            if self._guarded(idents, guards):
                continue
            yield self.finding(
                ctx, node,
                f"division by '{ast.unparse(denom)}' has no visible "
                "zero-guard in the enclosing scope")

    @staticmethod
    def _nonzero_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and node.value != 0)

    @staticmethod
    def _guard_texts(scope: ast.AST) -> list[str]:
        texts = []
        for sub in ast.walk(scope):
            test = None
            if isinstance(sub, (ast.If, ast.IfExp, ast.While, ast.Assert)):
                test = sub.test
            elif isinstance(sub, ast.comprehension):
                for cond in sub.ifs:
                    texts.append(ast.unparse(cond))
            if test is not None:
                texts.append(ast.unparse(test))
        return texts

    @staticmethod
    def _guarded(idents: set[str], guards: list[str]) -> bool:
        for ident in idents:
            pattern = re.compile(rf"(?<![\w.]){re.escape(ident)}(?![\w.])")
            for guard in guards:
                if pattern.search(guard):
                    return True
        return False


class MathDomainRule(Rule):
    id = "REP-N203"
    name = "math-domain"
    hint = ("clamp before the call: max(0.0, x) for sqrt, "
            "min(1.0, max(-1.0, x)) for acos/asin")

    _SQRT = ("math.sqrt",)
    _TRIG = ("math.acos", "math.asin")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted in self._SQRT:
                if not node.args or not self._sqrt_safe(node.args[0]):
                    yield self.finding(
                        ctx, node,
                        "math.sqrt argument is not visibly nonnegative "
                        "(a rounding error can make it negative)")
            elif dotted in self._TRIG:
                if not node.args or not self._trig_safe(node.args[0]):
                    member = dotted.rsplit(".", 1)[1]
                    yield self.finding(
                        ctx, node,
                        f"math.{member} argument is not visibly clamped "
                        "to [-1, 1]")

    @classmethod
    def _sqrt_safe(cls, arg: ast.expr) -> bool:
        if isinstance(arg, ast.Constant):
            return isinstance(arg.value, (int, float)) and arg.value >= 0
        if isinstance(arg, ast.BinOp):
            if isinstance(arg.op, ast.Mult):
                return ast.dump(arg.left) == ast.dump(arg.right)
            if isinstance(arg.op, ast.Pow):
                return (isinstance(arg.right, ast.Constant)
                        and isinstance(arg.right.value, int)
                        and arg.right.value % 2 == 0)
            if isinstance(arg.op, ast.Add):
                return cls._sqrt_safe(arg.left) and cls._sqrt_safe(arg.right)
            return False
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
            if arg.func.id == "abs":
                return True
            if arg.func.id == "max":
                return any(isinstance(a, ast.Constant)
                           and isinstance(a.value, (int, float))
                           and a.value >= 0
                           for a in arg.args)
        return False

    @staticmethod
    def _trig_safe(arg: ast.expr) -> bool:
        if isinstance(arg, ast.Constant):
            return (isinstance(arg.value, (int, float))
                    and -1.0 <= arg.value <= 1.0)
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name) \
                and arg.func.id == "min":
            return any(isinstance(a, ast.Constant)
                       and isinstance(a.value, (int, float))
                       and a.value <= 1.0
                       for a in arg.args)
        return False


__all__ = ["FloatEqualityRule", "MathDomainRule", "UnguardedDivisionRule"]
