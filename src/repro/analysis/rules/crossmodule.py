"""Interprocedural rules: concurrency, determinism-flow, resource safety.

These rules run over a whole :class:`~repro.analysis.project.ProjectIndex`
plus its :class:`~repro.analysis.callgraph.CallGraph`, not over a single
file, so they can check the invariants the serving stack actually relies
on:

* ``REP-C601`` — functions reachable from worker entrypoints must not
  write module-level mutable state (each spawned worker would mutate its
  own silently diverging copy);
* ``REP-C602`` — arrays obtained from an index snapshot are read-only
  views over one shared-memory block; any mutation (or flipping
  ``.flags.writeable`` back on) corrupts every concurrent reader;
* ``REP-C603`` — attributes written under ``with self.<lock>`` are
  lock-guarded by contract; reading or writing them without the lock is
  a data race;
* ``REP-F701``/``REP-F702`` — nondeterministic calls (wall clock,
  unseeded RNG, ``os.urandom``, ``uuid``) and environment reads must not
  be *transitively* reachable from the paper's exact-result hot paths
  (``SOIEngine.top_k``, describer ``select``, ``serve_request``);
* ``REP-R801``/``REP-R802`` — every ``SharedMemory`` create/attach must
  reach ``close``/``unlink`` on exception edges (or hand ownership to an
  object that does); plain ``open`` handles must be closed or managed by
  ``with``.

Because the call graph under-approximates dynamic dispatch, these rules
err on the side of silence for code they cannot resolve — misses show up
in ``repro lint --graph``, not as false findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.callgraph import CallGraph, FunctionNode, body_nodes
from repro.analysis.config import LintConfig
from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.project import ParsedFile, ProjectIndex
from repro.analysis.reach import call_path, reachable
from repro.analysis.rules import ImportMap
from repro.analysis.rules.determinism import _SAFE_NP_RANDOM, _WALL_CLOCK_CALLS

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

# Container constructors whose module-level bindings are shared mutable
# state (matched on the final dotted component).
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "OrderedDict", "Counter", "deque", "defaultdict",
})

# Methods that mutate a container in place.
_CONTAINER_MUTATORS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "insert", "remove", "discard", "appendleft", "extendleft",
})

# ndarray methods that write through a view into the backing buffer.
_ARRAY_MUTATORS = frozenset({
    "fill", "sort", "partition", "put", "itemset", "resize", "setflags",
})


@dataclass(slots=True)
class ProjectContext:
    """Everything a project rule needs: files, call graph, config."""

    project: ProjectIndex
    graph: CallGraph
    config: LintConfig
    _containers: dict[str, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: ProjectIndex,
              config: LintConfig) -> "ProjectContext":
        return cls(project=project, graph=CallGraph(project), config=config)

    def module_containers(self, parsed: ParsedFile) -> frozenset[str]:
        """Module-level names bound to mutable container literals/calls."""
        cached = self._containers.get(parsed.relpath)
        if cached is not None:
            return cached
        names: set[str] = set()
        assert parsed.tree is not None
        for stmt in parsed.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_mutable_container(value):
                continue
            names.update(t.id for t in targets if isinstance(t, ast.Name))
        result = frozenset(names)
        self._containers[parsed.relpath] = result
        return result

    @staticmethod
    def _is_mutable_container(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) \
                else func.id if isinstance(func, ast.Name) else ""
            return name in _MUTABLE_CONSTRUCTORS
        return False


class ProjectRule:
    """Base class for interprocedural rules (the ``check`` unit is the
    whole project, not one file)."""

    id: str = "REP-X000"
    name: str = "unnamed"
    severity: str = SEVERITY_ERROR
    hint: str = ""

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, parsed: ParsedFile, node: ast.AST, message: str,
                hint: str | None = None) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=parsed.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


# -- shared helpers ---------------------------------------------------------

def _local_bindings(fnode: FunctionNode) -> set[str]:
    """Names bound locally in a function (they shadow module globals)."""
    args = fnode.node.args
    names = {arg.arg for arg in (*args.posonlyargs, *args.args,
                                 *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in body_nodes(fnode.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            names.update(t.id for t in node.targets
                         if isinstance(t, ast.Name))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(n.id for n in ast.walk(node.target)
                         if isinstance(n, ast.Name))
        elif isinstance(node, ast.withitem) and node.optional_vars:
            names.update(n.id for n in ast.walk(node.optional_vars)
                         if isinstance(n, ast.Name))
        elif isinstance(node, ast.comprehension):
            names.update(n.id for n in ast.walk(node.target)
                         if isinstance(n, ast.Name))
    return names - declared_global


def _declared_globals(fnode: FunctionNode) -> set[str]:
    out: set[str] = set()
    for node in body_nodes(fnode.node):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


def _fmt_path(parents: dict, qual: str) -> str:
    return " -> ".join(call_path(parents, qual))


def _present_roots(roots: tuple[str, ...], graph: CallGraph) -> list[str]:
    return [root for root in roots if root in graph.functions]


# -- REP-C601: worker shared-state writes -----------------------------------

class WorkerSharedStateRule(ProjectRule):
    id = "REP-C601"
    name = "worker-shared-state-write"
    hint = ("pass state through the task/result queues or the snapshot; "
            "module-level mutations diverge per worker process")

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        roots = _present_roots(pctx.config.worker_entrypoints, pctx.graph)
        parents = reachable(pctx.graph.edges, roots)
        for qual in sorted(parents):
            fnode = pctx.graph.functions.get(qual)
            if fnode is None:
                continue
            yield from self._check_function(pctx, fnode, parents)

    def _check_function(self, pctx: ProjectContext, fnode: FunctionNode,
                        parents: dict) -> Iterator[Finding]:
        containers = pctx.module_containers(fnode.file)
        local = _local_bindings(fnode)
        global_decl = _declared_globals(fnode)
        shared = {name for name in containers
                  if name not in local or name in global_decl}
        route = _fmt_path(parents, fnode.qual)

        def tail(name: str, what: str) -> str:
            return (f"{what} module-level '{name}' inside a worker-reachable "
                    f"function (via {route}); each spawned worker mutates "
                    "its own copy")

        for node in body_nodes(fnode.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id in global_decl \
                            and target.id in containers | shared:
                        yield self.finding(fnode.file, node,
                                           tail(target.id, "rebinds"))
                    elif isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in shared:
                        yield self.finding(fnode.file, node,
                                           tail(target.value.id,
                                                "writes into"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in shared \
                    and node.func.attr in _CONTAINER_MUTATORS:
                yield self.finding(
                    fnode.file, node,
                    tail(node.func.value.id,
                         f"calls .{node.func.attr}() on"))


# -- REP-C602: snapshot view mutation ---------------------------------------

class SnapshotViewMutationRule(ProjectRule):
    id = "REP-C602"
    name = "snapshot-view-mutation"
    hint = ("snapshot arrays are read-only views over one shared-memory "
            "block; copy (np.array(view)) before mutating")

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        for qual in sorted(pctx.graph.functions):
            fnode = pctx.graph.functions[qual]
            yield from self._check_function(pctx, fnode)

    def _check_function(self, pctx: ProjectContext,
                        fnode: FunctionNode) -> Iterator[Finding]:
        views = self._view_locals(pctx, fnode)
        for node in body_nodes(fnode.node):
            # (a) flipping writeability back on, on anything
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Attribute) \
                        and target.attr == "writeable" \
                        and isinstance(target.value, ast.Attribute) \
                        and target.value.attr == "flags" \
                        and not (isinstance(node.value, ast.Constant)
                                 and node.value.value is False):
                    yield self.finding(
                        fnode.file, node,
                        "re-enables .flags.writeable on an array view; "
                        "snapshot views must stay read-only")
                    continue
            # (b) mutating a local bound to snapshot.array(...)
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in views:
                        yield self.finding(
                            fnode.file, node,
                            f"writes through snapshot view "
                            f"'{target.value.id}' into the shared-memory "
                            "block")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in views \
                    and node.func.attr in _ARRAY_MUTATORS:
                yield self.finding(
                    fnode.file, node,
                    f"mutates snapshot view '{node.func.value.id}' via "
                    f".{node.func.attr}()")

    def _view_locals(self, pctx: ProjectContext,
                     fnode: FunctionNode) -> set[str]:
        """Locals assigned from ``<snapshot>.array(...)`` calls."""
        var_types = pctx.graph.local_var_types(fnode)
        views: set[str] = set()
        for node in body_nodes(fnode.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "array"):
                continue
            base = node.value.func.value
            if self._is_snapshot_expr(pctx, fnode, var_types, base):
                views.add(node.targets[0].id)
        return views

    @staticmethod
    def _is_snapshot_expr(pctx: ProjectContext, fnode: FunctionNode,
                          var_types: dict[str, str],
                          base: ast.expr) -> bool:
        if isinstance(base, ast.Name):
            typed = var_types.get(base.id, "")
            if "Snapshot" in typed.rsplit(".", 1)[-1]:
                return True
            return "snap" in base.id.lower()
        if isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id == "self" and fnode.cls is not None:
            cnode = pctx.graph.classes.get(fnode.cls)
            typed = cnode.attr_types.get(base.attr, "") if cnode else ""
            if "Snapshot" in typed.rsplit(".", 1)[-1]:
                return True
            return "snap" in base.attr.lower()
        return False


# -- REP-C603: lock-guard discipline ----------------------------------------

def _iter_lock_scoped(stmts: list[ast.stmt], inside: bool,
                      is_lock: Callable[[ast.expr], bool]) -> \
        Iterator[tuple[ast.AST, bool]]:
    """Yield ``(node, inside_lock)`` for a statement list.

    ``with self.<lock>:`` bodies flip ``inside`` to True; nested function
    and class definitions are separate scopes and are skipped entirely
    (a closure may outlive the lock scope, so assuming it inherits the
    lock would be unsound).
    """
    for stmt in stmts:
        if isinstance(stmt, (*_FUNC_DEFS, ast.ClassDef)):
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locked = inside or any(is_lock(item.context_expr)
                                   for item in stmt.items)
            for item in stmt.items:
                for sub in ast.walk(item.context_expr):
                    yield sub, inside
            yield from _iter_lock_scoped(stmt.body, locked, is_lock)
            continue
        bodies = [getattr(stmt, name) for name in
                  ("body", "orelse", "finalbody")
                  if isinstance(getattr(stmt, name, None), list)]
        handlers = getattr(stmt, "handlers", [])
        if not bodies and not handlers:
            yield from ((sub, inside) for sub in ast.walk(stmt))
            continue
        yield stmt, inside
        for attr in ("test", "iter", "target", "subject"):
            header = getattr(stmt, attr, None)
            if isinstance(header, ast.expr):
                yield from ((sub, inside) for sub in ast.walk(header))
        for body in bodies:
            if body and isinstance(body[0], ast.stmt):
                yield from _iter_lock_scoped(body, inside, is_lock)
        for handler in handlers:
            yield from _iter_lock_scoped(handler.body, inside, is_lock)


class LockGuardRule(ProjectRule):
    id = "REP-C603"
    name = "lock-guard-discipline"
    hint = ("wrap the access in 'with self.<lock>:'; an attribute written "
            "under the lock is guarded everywhere")

    _INIT_METHODS = frozenset({"__init__", "__new__"})

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        for cls_qual in sorted(pctx.graph.classes):
            yield from self._check_class(pctx, cls_qual)

    def _check_class(self, pctx: ProjectContext,
                     cls_qual: str) -> Iterator[Finding]:
        cnode = pctx.graph.classes[cls_qual]
        imports = pctx.graph.imports_for(cnode.module)
        methods = [pctx.graph.functions[qual]
                   for qual in cnode.methods.values()
                   if qual in pctx.graph.functions]
        locks = self._lock_attrs(methods, imports)
        if not locks:
            return

        def is_lock(expr: ast.expr) -> bool:
            return (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self" and expr.attr in locks)

        guarded = self._guarded_attrs(methods, is_lock) - locks
        if not guarded:
            return
        for method in methods:
            if method.name in self._INIT_METHODS:
                continue
            for node, inside in _iter_lock_scoped(method.node.body,
                                                  False, is_lock):
                if inside or not isinstance(node, ast.Attribute):
                    continue
                if isinstance(node.value, ast.Name) \
                        and node.value.id == "self" \
                        and node.attr in guarded:
                    yield self.finding(
                        method.file, node,
                        f"'{cnode.name}.{node.attr}' is lock-guarded "
                        f"(written under 'with self.<lock>') but accessed "
                        f"in {method.name}() without the lock")

    @staticmethod
    def _lock_attrs(methods: list[FunctionNode],
                    imports: ImportMap) -> frozenset[str]:
        locks: set[str] = set()
        for method in methods:
            for node in body_nodes(method.node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and isinstance(node.value, ast.Call)):
                    continue
                dotted = imports.canonical_call_name(node.value.func) or ""
                if dotted.rsplit(".", 1)[-1] in ("Lock", "RLock"):
                    locks.add(node.targets[0].attr)
        return frozenset(locks)

    @staticmethod
    def _guarded_attrs(methods: list[FunctionNode],
                       is_lock: Callable[[ast.expr], bool]) -> set[str]:
        """Self-attributes written or mutated inside a lock scope."""
        guarded: set[str] = set()

        def self_attr(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Attribute) \
                    and isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self":
                return expr.attr
            return None

        for method in methods:
            if method.name in LockGuardRule._INIT_METHODS:
                continue
            for node, inside in _iter_lock_scoped(method.node.body,
                                                  False, is_lock):
                if not inside:
                    continue
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        attr = self_attr(target)
                        if attr is None and isinstance(target, ast.Subscript):
                            attr = self_attr(target.value)
                        if attr is not None:
                            guarded.add(attr)
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _CONTAINER_MUTATORS:
                    attr = self_attr(node.func.value)
                    if attr is not None:
                        guarded.add(attr)
        return guarded


# -- REP-F7xx: determinism flow ---------------------------------------------

class _FlowRule(ProjectRule):
    """Shared reach-then-scan scaffolding for the F7xx rules."""

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        roots = _present_roots(pctx.config.flow_entrypoints, pctx.graph)
        parents = reachable(pctx.graph.edges, roots)
        exempt = pctx.config.flow_exempt_modules
        for qual in sorted(parents):
            fnode = pctx.graph.functions.get(qual)
            if fnode is None or self._exempt(fnode.module, exempt):
                continue
            imports = pctx.graph.imports_for(fnode.module)
            route = _fmt_path(parents, qual)
            for node in body_nodes(fnode.node):
                yield from self.scan(fnode, imports, node, route)

    @staticmethod
    def _exempt(module: str, prefixes: tuple[str, ...]) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in prefixes)

    def scan(self, fnode: FunctionNode, imports: ImportMap,
             node: ast.AST, route: str) -> Iterator[Finding]:
        raise NotImplementedError


class NondeterminismFlowRule(_FlowRule):
    id = "REP-F701"
    name = "nondeterminism-flow"
    hint = ("hot paths must be bit-for-bit repeatable: seed the RNG, use "
            "monotonic timers via repro.obs, or move the call off the "
            "query path")

    def scan(self, fnode: FunctionNode, imports: ImportMap,
             node: ast.AST, route: str) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        dotted = imports.canonical_call_name(node.func)
        if dotted is None:
            return
        reason: str | None = None
        if dotted in _WALL_CLOCK_CALLS:
            reason = f"wall-clock read {dotted}()"
        elif dotted == "os.urandom":
            reason = "os.urandom() entropy read"
        elif dotted.startswith("secrets."):
            reason = f"{dotted}() entropy read"
        elif dotted in ("uuid.uuid1", "uuid.uuid4"):
            reason = f"{dotted}() is nondeterministic"
        elif dotted.startswith("random."):
            reason = f"stdlib {dotted}() uses process-global RNG state"
        elif (dotted == "numpy.random.default_rng"
              or dotted.endswith(".random.default_rng")):
            if not node.args and not node.keywords:
                reason = "numpy.random.default_rng() without a seed"
        elif dotted.startswith("numpy.random.") \
                and dotted.rsplit(".", 1)[-1] not in _SAFE_NP_RANDOM:
            reason = f"legacy global RNG call {dotted}()"
        if reason is not None:
            yield self.finding(
                fnode.file, node,
                f"{reason} is reachable from a result-bearing hot path "
                f"(via {route})")


class EnvFlowRule(_FlowRule):
    id = "REP-F702"
    name = "env-flow"
    hint = ("environment reads make results machine-dependent; resolve "
            "configuration once at startup and pass it down explicitly")

    def scan(self, fnode: FunctionNode, imports: ImportMap,
             node: ast.AST, route: str) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            dotted = imports.canonical_call_name(node.func)
            if dotted in ("os.getenv", "os.environ.get"):
                yield self.finding(
                    fnode.file, node,
                    f"environment read {dotted}() on a result-bearing hot "
                    f"path (via {route})")
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Attribute):
            dotted = imports.canonical_call_name(node.value)
            if dotted == "os.environ":
                yield self.finding(
                    fnode.file, node,
                    f"os.environ[...] access on a result-bearing hot path "
                    f"(via {route})")


# -- REP-R8xx: resource safety ----------------------------------------------

_RELEASE_METHODS = frozenset({"close", "unlink", "__exit__", "__del__"})


class SharedMemoryLifecycleRule(ProjectRule):
    id = "REP-R801"
    name = "sharedmemory-lifecycle"
    hint = ("close()/unlink() the block in an except/finally edge, or hand "
            "it to an owner object that releases it")

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        for qual in sorted(pctx.graph.functions):
            fnode = pctx.graph.functions[qual]
            yield from self._check_function(pctx, fnode)

    def _check_function(self, pctx: ProjectContext,
                        fnode: FunctionNode) -> Iterator[Finding]:
        imports = pctx.graph.imports_for(fnode.module)
        nodes = body_nodes(fnode.node)
        for node in nodes:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._is_shm_call(imports, node.value)):
                continue
            name = node.targets[0].id
            if self._released_on_error(fnode, name):
                continue
            escape = self._escape_verdict(pctx, fnode, name, nodes)
            if escape == "owned":
                continue
            if escape is not None:
                yield self.finding(
                    fnode.file, node,
                    f"SharedMemory '{name}' is handed to {escape}, which "
                    "has no close()/unlink()/__exit__; the block leaks")
            else:
                yield self.finding(
                    fnode.file, node,
                    f"SharedMemory '{name}' has no close()/unlink() on "
                    "exception paths; a failure here leaks the block")

    @staticmethod
    def _is_shm_call(imports: ImportMap, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = imports.canonical_call_name(value.func) or ""
        return dotted.rsplit(".", 1)[-1] == "SharedMemory"

    @staticmethod
    def _released_on_error(fnode: FunctionNode, name: str) -> bool:
        """``name.close()``/``unlink()`` inside except/finally edges."""

        def releases(stmts: list[ast.stmt]) -> bool:
            for stmt in stmts:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) \
                            and isinstance(sub.func, ast.Attribute) \
                            and isinstance(sub.func.value, ast.Name) \
                            and sub.func.value.id == name \
                            and sub.func.attr in ("close", "unlink"):
                        return True
            return False

        for node in body_nodes(fnode.node):
            if not isinstance(node, (ast.Try, getattr(ast, "TryStar",
                                                      ast.Try))):
                continue
            if releases(node.finalbody):
                return True
            for handler in node.handlers:
                if releases(handler.body):
                    return True
        return False

    def _escape_verdict(self, pctx: ProjectContext, fnode: FunctionNode,
                        name: str, nodes: list[ast.AST]) -> str | None:
        """How the handle escapes the function, if it does.

        Returns ``"owned"`` when ownership moves somewhere that can
        release it (returned to the caller, stored on ``self`` of a
        releasing class, passed to a releasing constructor), the
        offending class name when it moves somewhere that cannot, and
        ``None`` when it never escapes.
        """
        def mentions(expr: ast.expr) -> bool:
            return any(isinstance(sub, ast.Name) and sub.id == name
                       for sub in ast.walk(expr))

        returned = False
        call_verdict: str | None = None
        for node in nodes:
            if isinstance(node, ast.Return) and node.value is not None \
                    and mentions(node.value):
                returned = True
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                            for t in node.targets) \
                    and mentions(node.value):
                if fnode.cls is not None and \
                        self._class_releases(pctx, fnode.cls):
                    return "owned"
                return f"'{(fnode.cls or '?').rsplit('.', 1)[-1]}'"
            if isinstance(node, ast.Call) \
                    and any(mentions(arg.value if isinstance(
                                arg, ast.keyword) else arg)
                            for arg in (*node.args, *node.keywords)):
                target = pctx.graph.resolve_class(fnode.module, node.func)
                if target is None or self._class_releases(pctx, target):
                    call_verdict = "owned"  # unknown callee: assume managed
                elif call_verdict is None:
                    call_verdict = f"'{target.rsplit('.', 1)[-1]}'"
        # A constructor that cannot release the block beats a bare return:
        # the leak lives wherever the handle ends up.
        if call_verdict is not None and call_verdict != "owned":
            return call_verdict
        if call_verdict == "owned" or returned:
            return "owned"
        return None

    @staticmethod
    def _class_releases(pctx: ProjectContext, cls_qual: str) -> bool:
        return any(pctx.graph.lookup_method(cls_qual, m) is not None
                   for m in _RELEASE_METHODS)


class UnclosedHandleRule(ProjectRule):
    id = "REP-R802"
    name = "unclosed-handle"
    hint = "use 'with open(...) as f:' (or close in a finally block)"

    def check(self, pctx: ProjectContext) -> Iterator[Finding]:
        for qual in sorted(pctx.graph.functions):
            fnode = pctx.graph.functions[qual]
            yield from self._check_scope(fnode.file,
                                         body_nodes(fnode.node))
        for parsed in pctx.project.files:
            assert parsed.tree is not None
            top = [node for stmt in parsed.tree.body
                   if not isinstance(stmt, (*_FUNC_DEFS, ast.ClassDef))
                   for node in ast.walk(stmt)]
            yield from self._check_scope(parsed, top)

    def _check_scope(self, parsed: ParsedFile,
                     nodes: list[ast.AST]) -> Iterator[Finding]:
        managed: set[int] = set()          # open() calls under a with-item
        closed_names: set[str] = set()     # f.close() present anywhere
        for node in nodes:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        managed.add(id(sub))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "close" \
                    and isinstance(node.func.value, ast.Name):
                closed_names.add(node.func.value.id)
        for node in nodes:
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "open") or id(node) in managed:
                continue
            bound = self._binding_for(nodes, node)
            if bound is None:
                yield self.finding(
                    parsed, node,
                    "open() handle is never closed (no with, no binding)")
            elif bound == "self":
                continue  # ownership moved to the instance
            elif bound not in closed_names:
                yield self.finding(
                    parsed, node,
                    f"open() handle '{bound}' has no close(); wrap it in "
                    "'with'")

    @staticmethod
    def _binding_for(nodes: list[ast.AST],
                     call: ast.Call) -> str | None:
        for node in nodes:
            if isinstance(node, ast.Assign) and node.value is call \
                    and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    return target.id
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    return "self"
        return None


def default_project_rules(config: LintConfig) -> tuple[ProjectRule, ...]:
    """The interprocedural registry, minus any disabled rules."""
    rules: tuple[ProjectRule, ...] = (
        WorkerSharedStateRule(),
        SnapshotViewMutationRule(),
        LockGuardRule(),
        NondeterminismFlowRule(),
        EnvFlowRule(),
        SharedMemoryLifecycleRule(),
        UnclosedHandleRule(),
    )
    disabled = set(config.disabled_rules)
    return tuple(rule for rule in rules if rule.id not in disabled)


__all__ = [
    "EnvFlowRule",
    "LockGuardRule",
    "NondeterminismFlowRule",
    "ProjectContext",
    "ProjectRule",
    "SharedMemoryLifecycleRule",
    "SnapshotViewMutationRule",
    "UnclosedHandleRule",
    "WorkerSharedStateRule",
    "default_project_rules",
]
