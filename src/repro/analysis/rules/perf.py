"""Performance-hazard rules (``REP-P4xx``).

The hot paths of this reproduction live under ``repro/core/`` (the
directory set is configurable via ``perf-checked-dirs``); two quadratic
patterns have already caused measured regressions there and are cheap to
detect statically:

* **REP-P401** — a ``sorted(...)`` call inside a loop *body* re-sorts on
  every iteration; sort once before the loop (or maintain sorted order
  incrementally).  ``sorted`` in the loop *header* (``for x in
  sorted(...)``) runs once and is fine.
* **REP-P402** — an ``in``/``not in`` membership test against a provably
  list-like operand (a list/tuple literal, a ``list()``/``tuple()``/
  ``sorted()`` call, or a local name assigned from one of those) inside a
  loop body scans linearly per iteration; test against a ``set``/``dict``
  (or a precomputed flag array) instead.

Both rules stop at function boundaries when climbing out of the loop: a
function *defined* in a loop body executes on call, not per iteration.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_LISTISH_CALLS = frozenset({"list", "tuple", "sorted"})


def _enclosing_loop_body(ctx: FileContext, node: ast.AST) -> ast.AST | None:
    """The nearest loop whose *body* (or else-clause) contains ``node``.

    Climbs the parent chain; a hit requires the chain to enter the loop
    through ``body``/``orelse`` — code in the loop header (``iter``,
    ``test``) runs once and must not be flagged.
    """
    child: ast.AST = node
    parent = ctx.parent(child)
    while parent is not None:
        if isinstance(parent, _FUNCTIONS):
            return None
        if isinstance(parent, _LOOPS):
            if any(child is stmt for stmt in (*parent.body, *parent.orelse)):
                return parent
        child, parent = parent, ctx.parent(parent)
    return None


def _is_listish(node: ast.expr, ctx: FileContext,
                scope: ast.AST | None) -> bool:
    """True when the expression provably evaluates to a list or tuple."""
    if isinstance(node, (ast.List, ast.Tuple, ast.ListComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _LISTISH_CALLS:
        return True
    if isinstance(node, ast.Name) and scope is not None:
        return _name_assigned_listish(node.id, scope)
    return False


def _name_assigned_listish(name: str, scope: ast.AST) -> bool:
    """True when *every* plain assignment to ``name`` in the enclosing
    function binds a list-like value (and at least one assignment exists).

    Deliberately conservative: augmented assignments, ``for`` targets,
    parameters or attribute writes make the name untraceable and the rule
    stays silent rather than guessing.
    """
    assigned = False
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                if not isinstance(node.value,
                                  (ast.List, ast.Tuple, ast.ListComp)) and \
                        not (isinstance(node.value, ast.Call)
                             and isinstance(node.value.func, ast.Name)
                             and node.value.func.id in _LISTISH_CALLS):
                    return False
                assigned = True
    return assigned


class SortedInLoopRule(Rule):
    id = "REP-P401"
    name = "sorted-in-loop"
    hint = ("hoist the sorted() call above the loop, or maintain the "
            "order incrementally (e.g. heapq / bisect.insort)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.perf_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                continue
            loop = _enclosing_loop_body(ctx, node)
            if loop is not None:
                yield self.finding(
                    ctx, node,
                    "sorted() inside a loop body re-sorts "
                    f"O(n log n) work every iteration (loop at line "
                    f"{loop.lineno})")


class ListMembershipInLoopRule(Rule):
    id = "REP-P402"
    name = "list-membership-in-loop"
    hint = ("membership-test against a set/dict (or a flag array) built "
            "once before the loop")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.perf_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            scope = ctx.enclosing_function(node)
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if not _is_listish(comparator, ctx, scope):
                    continue
                loop = _enclosing_loop_body(ctx, node)
                if loop is None:
                    continue
                yield self.finding(
                    ctx, node,
                    "membership test against a list scans linearly on "
                    f"every iteration (loop at line {loop.lineno})")


__all__ = ["ListMembershipInLoopRule", "SortedInLoopRule"]
