"""Performance-hazard rules (``REP-P4xx``).

The hot paths of this reproduction live under ``repro/core/`` (the
directory set is configurable via ``perf-checked-dirs``); two quadratic
patterns have already caused measured regressions there and are cheap to
detect statically:

* **REP-P401** — a ``sorted(...)`` call inside a loop *body* re-sorts on
  every iteration; sort once before the loop (or maintain sorted order
  incrementally).  ``sorted`` in the loop *header* (``for x in
  sorted(...)``) runs once and is fine.
* **REP-P402** — an ``in``/``not in`` membership test against a provably
  list-like operand (a list/tuple literal, a ``list()``/``tuple()``/
  ``sorted()`` call, or a local name assigned from one of those) inside a
  loop body scans linearly per iteration; test against a ``set``/``dict``
  (or a precomputed flag array) instead.

Both loop rules stop at function boundaries when climbing out of the
loop: a function *defined* in a loop body executes on call, not per
iteration.

* **REP-P404** — ``heapq.nlargest``/``heapq.nsmallest`` inside a loop
  body rescans its whole input per iteration (O(n log k) each time);
  maintain a bounded heap incrementally instead (see
  :class:`repro.core.state_store.TopKThreshold`, which replaced exactly
  this pattern in the filter phase's LB_k computation).

* **REP-P405** — a scalar geometry kernel
  (``point_segment_distance``/``segment_bbox_mindist``/
  ``segment_segment_distance``) inside a loop body on the vectorised
  cold path (``geometry-checked-dirs``, plus the individual files in
  ``geometry-checked-files``) pays Python-level call overhead per
  candidate; batch the candidates and call
  :func:`repro.geometry.distance.segments_bbox_mindist_batched` (or the
  CSR machinery in :mod:`repro.index.cell_maps`) once.  Scalar
  reference loops kept for ablation/``REPRO_CHECK`` cross-validation
  carry a ``# repro-lint: disable=REP-P405 (reason)`` comment.

A further rule guards the multiprocess serving path
(``serve-checked-dirs``, defaulting to the import closure of
``repro.serve.server`` workers):

* **REP-P406** — a *cache-named* container (``cache``/``memo``/``lru``
  in the name, case-insensitive) bound to an empty mutable at module
  scope or as an instance attribute (``self.x = {}``) under
  ``cache-checked-dirs`` with **no eviction bound** in the enclosing
  scope grows for the lifetime of a serving worker.  Evidence of a
  bound is a ``.pop()``/``.popitem()``/``.clear()`` call, a ``del``
  on the container, or a ``len()`` guard in a comparison — the shapes
  :class:`repro.perf.result_cache.ResultCache` uses.  Provably finite
  key spaces carry a ``# repro-lint: disable=REP-P406 (reason)``
  comment.

* **REP-P403** — a module-level *mutable cache* (a name bound at module
  scope to an empty ``dict``/``list``/``set``/``defaultdict``/... , or a
  module-level function decorated with ``functools.lru_cache``/
  ``functools.cache``) is a fork/spawn hazard: every worker process
  fills its own copy, the copies diverge silently, and warm state never
  transfers through the shared-memory snapshot.  Keep such caches on an
  engine/session instance (e.g. :class:`repro.perf.session.QuerySessionPool`)
  so their lifetime and invalidation are explicit.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_LISTISH_CALLS = frozenset({"list", "tuple", "sorted"})


def _enclosing_loop_body(ctx: FileContext, node: ast.AST) -> ast.AST | None:
    """The nearest loop whose *body* (or else-clause) contains ``node``.

    Climbs the parent chain; a hit requires the chain to enter the loop
    through ``body``/``orelse`` — code in the loop header (``iter``,
    ``test``) runs once and must not be flagged.
    """
    child: ast.AST = node
    parent = ctx.parent(child)
    while parent is not None:
        if isinstance(parent, _FUNCTIONS):
            return None
        if isinstance(parent, _LOOPS):
            if any(child is stmt for stmt in (*parent.body, *parent.orelse)):
                return parent
        child, parent = parent, ctx.parent(parent)
    return None


def _is_listish(node: ast.expr, ctx: FileContext,
                scope: ast.AST | None) -> bool:
    """True when the expression provably evaluates to a list or tuple."""
    if isinstance(node, (ast.List, ast.Tuple, ast.ListComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _LISTISH_CALLS:
        return True
    if isinstance(node, ast.Name) and scope is not None:
        return _name_assigned_listish(node.id, scope)
    return False


def _name_assigned_listish(name: str, scope: ast.AST) -> bool:
    """True when *every* plain assignment to ``name`` in the enclosing
    function binds a list-like value (and at least one assignment exists).

    Deliberately conservative: augmented assignments, ``for`` targets,
    parameters or attribute writes make the name untraceable and the rule
    stays silent rather than guessing.
    """
    assigned = False
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                if not isinstance(node.value,
                                  (ast.List, ast.Tuple, ast.ListComp)) and \
                        not (isinstance(node.value, ast.Call)
                             and isinstance(node.value.func, ast.Name)
                             and node.value.func.id in _LISTISH_CALLS):
                    return False
                assigned = True
    return assigned


class SortedInLoopRule(Rule):
    id = "REP-P401"
    name = "sorted-in-loop"
    hint = ("hoist the sorted() call above the loop, or maintain the "
            "order incrementally (e.g. heapq / bisect.insort)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.perf_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                continue
            loop = _enclosing_loop_body(ctx, node)
            if loop is not None:
                yield self.finding(
                    ctx, node,
                    "sorted() inside a loop body re-sorts "
                    f"O(n log n) work every iteration (loop at line "
                    f"{loop.lineno})")


class ListMembershipInLoopRule(Rule):
    id = "REP-P402"
    name = "list-membership-in-loop"
    hint = ("membership-test against a set/dict (or a flag array) built "
            "once before the loop")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.perf_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            scope = ctx.enclosing_function(node)
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if not _is_listish(comparator, ctx, scope):
                    continue
                loop = _enclosing_loop_body(ctx, node)
                if loop is None:
                    continue
                yield self.finding(
                    ctx, node,
                    "membership test against a list scans linearly on "
                    f"every iteration (loop at line {loop.lineno})")


_HEAP_RESCAN_CALLS = frozenset({"heapq.nlargest", "heapq.nsmallest"})


class HeapRescanInLoopRule(Rule):
    id = "REP-P404"
    name = "heap-rescan-in-loop"
    hint = ("maintain a bounded min-heap incrementally (heapq.heappush / "
            "heappushpop, or repro.core.state_store.TopKThreshold) "
            "instead of rescanning the full input per iteration")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.perf_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted not in _HEAP_RESCAN_CALLS:
                continue
            loop = _enclosing_loop_body(ctx, node)
            if loop is not None:
                yield self.finding(
                    ctx, node,
                    f"{dotted}() inside a loop body rescans its whole "
                    f"input on every iteration (loop at line "
                    f"{loop.lineno})")


_SCALAR_GEOMETRY_CALLS = frozenset({
    "repro.geometry.distance.point_segment_distance",
    "repro.geometry.distance.segment_bbox_mindist",
    "repro.geometry.distance.segment_segment_distance",
})


class ScalarGeometryInLoopRule(Rule):
    id = "REP-P405"
    name = "scalar-geometry-in-loop"
    hint = ("batch the candidate pairs and call "
            "repro.geometry.distance.segments_bbox_mindist_batched (or "
            "the CSR builders in repro.index.cell_maps) once; keep any "
            "scalar reference loop behind a suppression comment with a "
            "reason")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = ctx.config
        if not (ctx.in_dirs(config.geometry_checked_dirs)
                or "/".join(ctx.package_parts)
                in config.geometry_checked_files):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.imports.canonical_call_name(node.func)
            if dotted not in _SCALAR_GEOMETRY_CALLS:
                continue
            loop = _enclosing_loop_body(ctx, node)
            if loop is not None:
                yield self.finding(
                    ctx, node,
                    f"scalar kernel {dotted}() inside a loop body pays "
                    "per-candidate Python call overhead on the vectorised "
                    f"cold path (loop at line {loop.lineno})")


_EMPTY_MUTABLE_CALLS = frozenset({
    "dict", "list", "set",
    "collections.OrderedDict", "collections.Counter", "collections.deque",
})
_FACTORY_CALLS = frozenset({"collections.defaultdict"})
_CACHE_DECORATORS = frozenset({"functools.lru_cache", "functools.cache"})


def _is_empty_mutable(node: ast.expr, ctx: FileContext) -> bool:
    """True when the expression builds a provably *empty* mutable container.

    Empty-at-import is the cache signature: a populated module-level dict
    is usually a constant table, an empty one exists to be filled at
    runtime.  ``defaultdict(...)`` counts with up to one positional
    argument (the default factory)."""
    if isinstance(node, (ast.Dict, ast.List)):
        return not (node.keys if isinstance(node, ast.Dict) else node.elts)
    if not isinstance(node, ast.Call):
        return False
    dotted = ctx.imports.canonical_call_name(node.func)
    if dotted in _EMPTY_MUTABLE_CALLS:
        return not node.args and not node.keywords
    if dotted in _FACTORY_CALLS:
        return len(node.args) <= 1 and not node.keywords
    return False


class ModuleLevelMutableCacheRule(Rule):
    id = "REP-P403"
    name = "module-level-mutable-cache"
    hint = ("keep per-process caches on an engine/session instance with "
            "explicit invalidation; module-level mutable state is filled "
            "independently (and diverges silently) in every fork/spawn "
            "serving worker")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.serve_checked_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(ctx.parent(node), ast.Module):
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in node.decorator_list:
                    target = deco.func if isinstance(deco, ast.Call) else deco
                    dotted = ctx.imports.canonical_call_name(target)
                    if dotted in _CACHE_DECORATORS:
                        yield self.finding(
                            ctx, deco,
                            f"@{dotted} on module-level '{node.name}' keeps "
                            "a per-process memo table that serving workers "
                            "fill independently")
                continue
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if not _is_empty_mutable(value, ctx):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                yield self.finding(
                    ctx, node,
                    f"module-level mutable container '{name}' starts empty "
                    "— a cache that every serving worker process fills "
                    "with its own diverging copy")


_CACHE_NAME = re.compile(r"cache|memo|lru", re.IGNORECASE)
_EVICTION_METHODS = frozenset({"pop", "popitem", "clear"})


def _enclosing_class(ctx: FileContext, node: ast.AST) -> ast.ClassDef | None:
    parent = ctx.parent(node)
    while parent is not None and not isinstance(parent, ast.ClassDef):
        parent = ctx.parent(parent)
    return parent


def _is_len_of(node: ast.expr,
               matches: Callable[[ast.expr], bool]) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name) and node.func.id == "len"
            and len(node.args) == 1 and matches(node.args[0]))


def _has_eviction_bound(scope: ast.AST,
                        matches: Callable[[ast.expr], bool]) -> bool:
    """True when ``scope`` shows any eviction evidence for the container.

    Evidence is a ``.pop()``/``.popitem()``/``.clear()`` call on the
    container, a ``del`` of the container (or one of its keys), or a
    ``len()`` of it inside a comparison (a size guard that refuses or
    trims inserts).  Anything subtler — eviction through a helper the
    container is passed to, bounds enforced by the key space — needs a
    suppression comment with the reason.
    """
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _EVICTION_METHODS \
                and matches(node.func.value):
            return True
        if isinstance(node, ast.Delete) and any(
                matches(target)
                or (isinstance(target, ast.Subscript)
                    and matches(target.value))
                for target in node.targets):
            return True
        if isinstance(node, ast.Compare) and any(
                _is_len_of(expr, matches)
                for expr in (node.left, *node.comparators)):
            return True
    return False


class UnboundedCacheRule(Rule):
    id = "REP-P406"
    name = "unbounded-cache"
    hint = ("give the cache an eviction bound (LRU + byte cap like "
            "repro.perf.result_cache.ResultCache, pop/popitem/clear on "
            "overflow, or a len() guard before insert); if the key space "
            "is provably finite, suppress with a reason")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(ctx.config.cache_checked_dirs):
            return
        seen: set[tuple[int, str]] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if not _is_empty_mutable(value, ctx):
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and isinstance(ctx.parent(node), ast.Module):
                    name, scope = target.id, ctx.tree
                    where = f"module-level cache '{name}'"

                    def matches(expr: ast.expr, _name: str = name) -> bool:
                        return (isinstance(expr, ast.Name)
                                and expr.id == _name)
                elif isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    enclosing = _enclosing_class(ctx, node)
                    if enclosing is None:
                        continue
                    name, scope = target.attr, enclosing
                    where = (f"instance cache 'self.{name}' "
                             f"on {enclosing.name}")

                    def matches(expr: ast.expr, _name: str = name) -> bool:
                        return (isinstance(expr, ast.Attribute)
                                and expr.attr == _name
                                and isinstance(expr.value, ast.Name)
                                and expr.value.id == "self")
                else:
                    continue
                if not _CACHE_NAME.search(name):
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                dedupe = (id(scope), name)
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                if _has_eviction_bound(scope, matches):
                    continue
                yield self.finding(
                    ctx, node,
                    f"{where} starts empty and nothing in its scope ever "
                    "evicts — it grows for the lifetime of the serving "
                    "worker")


__all__ = ["HeapRescanInLoopRule", "ListMembershipInLoopRule",
           "ModuleLevelMutableCacheRule", "ScalarGeometryInLoopRule",
           "SortedInLoopRule", "UnboundedCacheRule"]
