"""Finding records and inline-suppression parsing for the repro linter.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain frozen dataclasses so reporters, the baseline machinery and the
test-suite gate can treat them as values.

Suppressions are trailing comments of the form::

    denom == 0.0   # repro-lint: disable=REP-N201 (exact sentinel: ...)

The parenthesised justification is mandatory: a suppression without one is
inactive and itself reported as ``REP-S001`` so that every silenced finding
carries a reason reviewers can audit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

SUPPRESSION_RULE_ID = "REP-S001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+?)"
    r"(?:\s*\((?P<reason>[^)]*)\))?\s*$")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    fingerprint: str = ""

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def format_text(self, show_hint: bool = True) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    @property
    def active(self) -> bool:
        """Reason-less suppressions are inert (and flagged as REP-S001)."""
        return bool(self.reason.strip())

    def covers(self, finding: Finding) -> bool:
        return (self.active and finding.line == self.line
                and finding.rule in self.rules)


def parse_suppressions(lines: list[str]) -> list[Suppression]:
    """All suppression comments of a source file, one per physical line."""
    found = []
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",")
            if part.strip())
        found.append(Suppression(line=lineno, rules=rules,
                                 reason=match.group("reason") or ""))
    return found
