"""Committed lint baseline: known findings that do not fail the gate.

A baseline entry identifies a finding by ``(rule, path, fingerprint)``
where the fingerprint hashes the *stripped source line text* — robust to
pure line-number shifts, invalidated the moment the offending line itself
changes.  Entries are counted with multiplicity, so two identical lines in
one file need two entries.

The repository policy (enforced by ``tests/test_static_analysis.py``) is
an **empty** baseline: pre-existing findings were fixed or suppressed
inline with a justification.  The machinery still exists so a future
rule-tightening PR can land the rule first and burn down its backlog
incrementally via ``repro lint --update-baseline``.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

BaselineKey = tuple[str, str, str]


class BaselineFormatError(ValueError):
    """The baseline file exists but its schema is not one we can trust.

    Silently ignoring an unknown version would un-baseline (or worse,
    over-baseline) findings, so the gate must fail loudly instead.
    """


def fingerprint(finding: Finding, lines: list[str]) -> str:
    """Stable content hash of the line a finding points at."""
    text = ""
    if 1 <= finding.line <= len(lines):
        text = lines[finding.line - 1].strip()
    digest = hashlib.sha1(
        f"{finding.rule}|{finding.path}|{text}".encode()).hexdigest()
    return digest[:16]


def load_baseline(path: Path) -> Counter[BaselineKey]:
    """Baseline entries with multiplicity; empty when the file is absent."""
    if not path.is_file():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise BaselineFormatError(
            f"baseline {path} is not a JSON object")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise BaselineFormatError(
            f"baseline {path} has unknown schema version {version!r} "
            f"(expected {BASELINE_VERSION})")
    entries: Counter[BaselineKey] = Counter()
    for item in data.get("findings", []):
        entries[(item["rule"], item["path"], item["fingerprint"])] += 1
    return entries


def apply_baseline(
    findings: list[Finding], baseline: Counter[BaselineKey]
) -> tuple[list[Finding], int]:
    """Split findings into (new, number matched by the baseline)."""
    remaining = Counter(baseline)
    kept: list[Finding] = []
    matched = 0
    for finding in findings:
        key = (finding.rule, finding.path, finding.fingerprint)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            kept.append(finding)
    return kept, matched


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the given findings (their fingerprints) as the new baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "fingerprint": f.fingerprint, "message": f.message}
            for f in sorted(findings, key=lambda f: f.sort_key)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
