"""Runtime invariant contracts for the SOI and describe hot paths.

The paper's algorithms are *exact*: every speed-up rests on a bound that
must sandwich the true value.  This module asserts those obligations at
runtime — but only when asked, because the checks cost work the production
path must not pay:

* disabled (the default): every hook reduces to a single module-attribute
  read (``contracts.ENABLED``), measured at well under 2% on the smallest
  Figure 4 benchmark configuration;
* enabled via the ``REPRO_CHECK=1`` environment variable, the ``--check``
  CLI flag, or :func:`enable_contracts` in code: violations raise
  :class:`~repro.errors.ContractViolation`.

Contract -> paper map (details in DESIGN.md):

==================================  =====================================
check                               paper obligation
==================================  =====================================
:func:`check_definition2`           Definition 2: ``eps > 0``, mass >= 0,
                                    positive buffer area
:class:`SOIContractMonitor`         Lemma 1 / Algorithm 1: LBk
                                    non-decreasing, UB non-increasing,
                                    results exactly ranked; sampled
                                    indexed-vs-brute-force mass agreement
                                    (Definition 1)
:func:`check_describe_candidate`    Equations 11-18: relevance, diversity
                                    and mmr cell bounds sandwich the exact
                                    values (Equation 10)
==================================  =====================================

The check helpers import :mod:`repro.core` lazily — they only run on the
cold (enabled) path, and the core modules import this one.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable

from repro.errors import ContractViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.describe.bounds import CellBoundsContext
    from repro.core.describe.profile import StreetProfile
    from repro.core.results import SOIResult
    from repro.core.soi import SOIEngine
    from repro.index.photo_grid import PhotoCell

BOUND_TOL = 1e-9
"""Absolute slack allowed between a bound and the exact value it brackets
(floating-point reassociation noise, orders of magnitude below any real
bound violation)."""

MASS_SAMPLE = 3
"""How many top results the Definition 1 brute-force cross-check samples."""


def _env_enabled(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


ENABLED: bool = _env_enabled(os.environ.get("REPRO_CHECK"))
"""Module-level switch read by the hot paths.  Mutate only through
:func:`enable_contracts`."""


def enable_contracts(on: bool = True) -> None:
    """Turn the runtime contracts on (or off) for this process."""
    global ENABLED
    ENABLED = bool(on)


def contracts_enabled() -> bool:
    """Whether contract checks are currently active."""
    return ENABLED


def _violation(contract: str, message: str) -> ContractViolation:
    return ContractViolation(f"[{contract}] {message}")


# -- Definition 2: interest is a well-defined nonnegative density ------------

def check_definition2(mass: float, length: float, eps: float) -> None:
    """Definition 2 preconditions for ``segment_interest``."""
    if eps <= 0.0:
        raise _violation(
            "def2", f"eps must be positive for a mass density, got {eps}")
    if length < 0.0:
        raise _violation("def2", f"segment length is negative: {length}")
    if mass < 0.0:
        raise _violation("def2", f"segment mass is negative: {mass}")


# -- Algorithm 1: threshold monotonicity and result exactness ----------------

class SOIContractMonitor:
    """Per-query observer of Algorithm 1's invariants.

    Instantiated by ``_SOIRun`` only when contracts are enabled, so the
    disabled path never allocates it.
    """

    __slots__ = ("_prev_lbk", "_prev_ub", "observations")

    def __init__(self) -> None:
        self._prev_lbk = 0.0
        self._prev_ub = float("inf")
        self.observations = 0

    def observe_threshold(self, lbk: float, ub: float) -> None:
        """LBk may only grow, UB may only shrink (Lemma 1's safety)."""
        self.observations += 1
        if lbk < 0.0:
            raise _violation("soi-threshold", f"LBk is negative: {lbk}")
        if lbk < self._prev_lbk - BOUND_TOL:
            raise _violation(
                "soi-threshold",
                f"seen lower bound LBk decreased: {self._prev_lbk} -> "
                f"{lbk}")
        if ub > self._prev_ub + BOUND_TOL:
            raise _violation(
                "soi-threshold",
                f"unseen upper bound UB increased: {self._prev_ub} -> "
                f"{ub}")
        self._prev_lbk = max(self._prev_lbk, lbk)
        self._prev_ub = min(self._prev_ub, ub)

    def check_results(
        self,
        engine: "SOIEngine",
        query: frozenset[str],
        eps: float,
        weighted: bool,
        k: int,
        results: "list[SOIResult]",
    ) -> None:
        """Output contract of ``top_k`` plus the Definition 1 cross-check.

        The reported interests must be positive, strictly ranked with the
        documented (interest desc, street id asc) tie-break, at most ``k``
        long — and for a deterministic sample of the winners, the indexed
        mass of the best segment must agree with a full brute-force scan
        and reproduce the reported interest exactly.
        """
        from repro.core.interest import (
            segment_interest,
            segment_mass,
            segment_mass_bruteforce,
        )

        if len(results) > k:
            raise _violation(
                "soi-results", f"{len(results)} results for k={k}")
        seen_streets = set()
        for prev, current in zip(results, results[1:]):
            ordered = (current.interest < prev.interest
                       or (current.interest == prev.interest
                           and current.street_id > prev.street_id))
            if not ordered:
                raise _violation(
                    "soi-results",
                    f"results not ranked: street {prev.street_id} "
                    f"({prev.interest}) before street "
                    f"{current.street_id} ({current.interest})")
        for result in results:
            if result.interest <= 0.0:
                raise _violation(
                    "soi-results",
                    f"street {result.street_id} reported with "
                    f"non-positive interest {result.interest}")
            if result.street_id in seen_streets:
                raise _violation(
                    "soi-results",
                    f"street {result.street_id} reported twice")
            seen_streets.add(result.street_id)

        for result in results[:MASS_SAMPLE]:
            segment = engine.network.segment(result.best_segment_id)
            indexed = segment_mass(segment, engine.poi_index,
                                   engine.cell_maps, query, eps, weighted)
            brute = segment_mass_bruteforce(segment, engine.pois, query,
                                            eps, weighted)
            if abs(indexed - brute) > BOUND_TOL * max(1.0, abs(brute)):
                raise _violation(
                    "def1-mass",
                    f"indexed mass {indexed} disagrees with brute-force "
                    f"mass {brute} on segment {segment.id}")
            reported = result.interest
            exact = segment_interest(brute, segment.length, eps)
            if abs(reported - exact) > BOUND_TOL * max(1.0, abs(exact)):
                raise _violation(
                    "def1-mass",
                    f"reported interest {reported} of street "
                    f"{result.street_id} disagrees with brute-force "
                    f"interest {exact}")


# -- Equations 11-18: describe-stage cell bounds -----------------------------

def check_describe_candidate(
    profile: "StreetProfile",
    bounds: "CellBoundsContext",
    cell: "PhotoCell",
    pos: int,
    selected: "Iterable[int]",
    lam: float,
    w: float,
    k: int,
    exact_mmr: float,
) -> None:
    """Every cell bound must sandwich the exact value for ``pos``.

    Checks, for one candidate photo examined during refinement: the
    relevance bounds (Equations 11-14) against the profile's precomputed
    per-photo relevances, the per-selected diversity bounds (Equations
    15-18) against the exact pairwise measures, and the combined ``mmr``
    bounds against the exact Equation 10 value.
    """
    from repro.core.describe.measures import spatial_div, textual_div

    rel = bounds.relevance_bounds(cell)
    _check_sandwich(rel.spatial_lo, float(profile.spatial_rel[pos]),
                    rel.spatial_hi, "eq11-12-spatial-rel", cell.coord, pos)
    _check_sandwich(rel.textual_lo, float(profile.textual_rel[pos]),
                    rel.textual_hi, "eq13-14-textual-rel", cell.coord, pos)
    for other in selected:
        s_lo, s_hi = bounds.spatial_div_bounds(cell, other)
        _check_sandwich(s_lo, spatial_div(profile, pos, other), s_hi,
                        "eq15-16-spatial-div", cell.coord, pos)
        t_lo, t_hi = bounds.textual_div_bounds(cell, other)
        _check_sandwich(t_lo, textual_div(profile, pos, other), t_hi,
                        "eq17-18-textual-div", cell.coord, pos)
    mmr_lo, mmr_hi = bounds.mmr_bounds(cell, list(selected), lam, w, k)
    _check_sandwich(mmr_lo, exact_mmr, mmr_hi, "eq10-mmr", cell.coord, pos)


def check_describe_selection(best_pos: int, iteration: int) -> None:
    """The bound filter must never eliminate every candidate."""
    if best_pos < 0:
        raise _violation(
            "describe-selection",
            f"bound filtering eliminated all candidates in iteration "
            f"{iteration} (an upper bound is too tight)")


def _check_sandwich(lower: float, exact: float, upper: float,
                    contract: str, coord: tuple, pos: int) -> None:
    if lower - BOUND_TOL <= exact <= upper + BOUND_TOL:
        return
    raise _violation(
        contract,
        f"cell {coord} bounds [{lower}, {upper}] do not sandwich exact "
        f"value {exact} of photo position {pos}")


# -- Prefix stability: dominated-k result reuse ------------------------------

def check_prefix_slice(sliced, fresh, key, k: int) -> None:
    """A dominated-``k`` cache slice must equal a fresh computation.

    Both k-SOI rankings and greedy describe selections are prefix-stable
    under their deterministic tie-breaks (k′ ≤ k ⇒ the k′-result is a
    prefix of the k-result), which is what lets
    :class:`~repro.perf.result_cache.ResultCache` answer a small-``k``
    request by slicing a large-``k`` entry.  This contract re-derives the
    small-``k`` answer from scratch and demands bit-identity — any
    divergence means the tie-break (or a cached entry) went stale.
    """
    if sliced != fresh:
        raise _violation(
            "prefix-slice",
            f"dominated-k slice for key {key!r} at k={k} diverges from a "
            f"fresh computation: cached prefix {sliced!r} vs fresh "
            f"{fresh!r}")
