"""The lint driver: file discovery, rule execution, suppressions, baseline.

The engine is import-light and stdlib-only so it can run in CI, in the
test suite (``tests/test_static_analysis.py`` gates tier-1 on it) and from
the ``repro lint`` CLI with identical behaviour.  :func:`lint_source` lints
a source string, which is what the rule unit tests use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import apply_baseline, fingerprint, load_baseline
from repro.analysis.config import LintConfig
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SUPPRESSION_RULE_ID,
    Finding,
    parse_suppressions,
)
from repro.analysis.rules import FileContext, Rule, default_rules

PARSE_ERROR_RULE_ID = "REP-E000"


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            files.update(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
    return sorted(files)


def _relpath(path: Path, root: Path | None) -> str:
    try:
        if root is not None:
            return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        pass
    return path.as_posix()


def lint_source(
    source: str,
    relpath: str = "repro/module.py",
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    path: Path | None = None,
) -> list[Finding]:
    """Lint one source string (the in-process / unit-test entry point).

    Returns findings sorted by location, with suppressions applied and
    fingerprints attached; no baseline is involved at this level.
    """
    if config is None:
        config = LintConfig()
    if rules is None:
        rules = default_rules(config)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Finding(
            rule=PARSE_ERROR_RULE_ID, severity=SEVERITY_ERROR,
            path=relpath, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; nothing else was checked")]
    ctx = FileContext(path=path or Path(relpath), relpath=relpath,
                      source=source, lines=lines, tree=tree, config=config)
    suppressions = parse_suppressions(lines)
    findings: list[Finding] = []
    for suppression in suppressions:
        if not suppression.active:
            findings.append(Finding(
                rule=SUPPRESSION_RULE_ID, severity=SEVERITY_ERROR,
                path=relpath, line=suppression.line, col=1,
                message="suppression without a justification is inactive",
                hint="append a reason: "
                     "# repro-lint: disable=REP-XNNN (why it is safe)"))
    for rule in rules:
        for found in rule.check(ctx):
            if any(s.covers(found) for s in suppressions):
                continue
            findings.append(found)
    findings.sort(key=lambda f: f.sort_key)
    return [replace(f, fingerprint=fingerprint(f, lines)) for f in findings]


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint files/directories and apply the committed baseline.

    When ``config`` is omitted it is discovered by walking upwards from
    the first path looking for a ``pyproject.toml`` with a
    ``[tool.repro.lint]`` table.
    """
    paths = [Path(p) for p in paths]
    if config is None:
        start = paths[0] if paths else Path.cwd()
        config = LintConfig.discover(start)
    if rules is None:
        rules = default_rules(config)
    result = LintResult()
    all_findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        relpath = _relpath(path, config.root)
        raw = lint_source(source, relpath=relpath, config=config,
                          rules=rules, path=path.resolve())
        all_findings.extend(raw)
        result.files_checked += 1
    if use_baseline:
        baseline = load_baseline(config.baseline_path())
        kept, matched = apply_baseline(all_findings, baseline)
        result.findings = kept
        result.baselined = matched
    else:
        result.findings = all_findings
    result.findings.sort(key=lambda f: f.sort_key)
    return result
