"""The lint driver: file discovery, rule execution, suppressions, baseline.

The engine is import-light and stdlib-only so it can run in CI, in the
test suite (``tests/test_static_analysis.py`` gates tier-1 on it) and from
the ``repro lint`` CLI with identical behaviour.  :func:`lint_source` lints
a source string, which is what the rule unit tests use.

Since the v2 engine every entry point parses through the shared
content-hash AST cache (:data:`repro.analysis.project.AST_CACHE`): one
lint run parses each file exactly once, and repeat runs in the same
process (gate + CLI + cross-module pass) re-parse only edited files.

The cross-module pass runs the interprocedural REP-C6xx/F7xx/R8xx rules
(:mod:`repro.analysis.rules.crossmodule`) over the whole file set.
File-local rules apply only to files inside the ``repro`` package;
``tests/`` and ``benchmarks/`` files still get parse-error and
suppression-hygiene checks and participate fully in the cross-module
project (so resource-safety rules cover bench output handles).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import apply_baseline, fingerprint, load_baseline
from repro.analysis.config import LintConfig
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SUPPRESSION_RULE_ID,
    Finding,
)
from repro.analysis.project import (
    AST_CACHE,
    ParsedFile,
    ProjectIndex,
    parse_source,
)
from repro.analysis.rules import FileContext, Rule, default_rules

PARSE_ERROR_RULE_ID = "REP-E000"

# Directory names never worth linting (virtualenvs, build output, VCS).
SKIP_DIRS = frozenset({
    "__pycache__", ".venv", "venv", "build", "dist", ".git", ".eggs",
    ".mypy_cache", ".pytest_cache", ".ruff_cache", "node_modules",
})


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            files.update(p for p in path.rglob("*.py")
                         if not SKIP_DIRS.intersection(p.parts))
    return sorted(files)


def _relpath(path: Path, root: Path | None) -> str:
    try:
        if root is not None:
            return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        pass
    return path.as_posix()


def _parse_error_finding(parsed: ParsedFile) -> Finding:
    exc = parsed.error
    assert exc is not None
    return Finding(
        rule=PARSE_ERROR_RULE_ID, severity=SEVERITY_ERROR,
        path=parsed.relpath, line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
        hint="fix the syntax error; nothing else was checked")


def _suppression_findings(parsed: ParsedFile) -> list[Finding]:
    return [
        Finding(
            rule=SUPPRESSION_RULE_ID, severity=SEVERITY_ERROR,
            path=parsed.relpath, line=suppression.line, col=1,
            message="suppression without a justification is inactive",
            hint="append a reason: "
                 "# repro-lint: disable=REP-XNNN (why it is safe)")
        for suppression in parsed.suppressions if not suppression.active
    ]


def _lint_parsed(parsed: ParsedFile, config: LintConfig,
                 rules: Sequence[Rule]) -> list[Finding]:
    """File-local findings of one parsed file, suppressed + fingerprinted.

    File-local rules run only for files inside the ``repro`` package;
    everything else still gets parse-error and suppression hygiene.
    """
    if parsed.error is not None:
        return [_parse_error_finding(parsed)]
    findings = _suppression_findings(parsed)
    if parsed.in_package:
        assert parsed.tree is not None
        ctx = FileContext(path=parsed.path, relpath=parsed.relpath,
                          source=parsed.source, lines=parsed.lines,
                          tree=parsed.tree, config=config)
        for rule in rules:
            for found in rule.check(ctx):
                if any(s.covers(found) for s in parsed.suppressions):
                    continue
                findings.append(found)
    findings.sort(key=lambda f: f.sort_key)
    return [replace(f, fingerprint=fingerprint(f, parsed.lines))
            for f in findings]


def _lint_project(parsed_files: list[ParsedFile], config: LintConfig,
                  project_rules=None) -> list[Finding]:
    """Cross-module findings, suppressed and fingerprinted per file."""
    from repro.analysis.rules.crossmodule import (
        ProjectContext,
        default_project_rules,
    )

    project = ProjectIndex.from_parsed(parsed_files)
    if not project.files:
        return []
    if project_rules is None:
        project_rules = default_project_rules(config)
    pctx = ProjectContext.build(project, config)
    findings: list[Finding] = []
    for rule in project_rules:
        for found in rule.check(pctx):
            parsed = project.by_relpath.get(found.path)
            if parsed is None:
                findings.append(found)
                continue
            if any(s.covers(found) for s in parsed.suppressions):
                continue
            findings.append(
                replace(found, fingerprint=fingerprint(found, parsed.lines)))
    findings.sort(key=lambda f: f.sort_key)
    return findings


def lint_source(
    source: str,
    relpath: str = "repro/module.py",
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    path: Path | None = None,
) -> list[Finding]:
    """Lint one source string (the in-process / unit-test entry point).

    Returns findings sorted by location, with suppressions applied and
    fingerprints attached; no baseline and no cross-module pass at this
    level.
    """
    if config is None:
        config = LintConfig()
    if rules is None:
        rules = default_rules(config)
    parsed = parse_source(source, relpath, path=path)
    return _lint_parsed(parsed, config, rules)


def lint_project_sources(
    sources: dict[str, str],
    config: LintConfig | None = None,
    project_rules=None,
) -> list[Finding]:
    """Run only the cross-module rules over in-memory sources.

    ``sources`` maps relpaths (``"repro/serve/server.py"``) to source
    text; this is the unit-test entry point for the REP-C6xx/F7xx/R8xx
    rules, mirroring what :func:`lint_paths` does for real files.
    """
    if config is None:
        config = LintConfig()
    parsed_files = [parse_source(text, relpath)
                    for relpath, text in sorted(sources.items())]
    return _lint_project(parsed_files, config, project_rules)


def collect_parsed(
    paths: Sequence[Path],
    config: LintConfig,
) -> list[ParsedFile]:
    """Discover and parse (through the shared cache) all lintable files."""
    return [AST_CACHE.get(path, _relpath(path, config.root))
            for path in iter_python_files(paths)]


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    use_baseline: bool = True,
    cross_module: bool | None = None,
    project_rules=None,
    restrict_to: set[str] | None = None,
) -> LintResult:
    """Lint files/directories and apply the committed baseline.

    When ``config`` is omitted it is discovered by walking upwards from
    the first path looking for a ``pyproject.toml`` with a
    ``[tool.repro.lint]`` table.  ``cross_module`` defaults to the
    config's ``cross_module`` knob; ``restrict_to`` (relpaths) filters
    the *reported* findings — the whole file set is still parsed so the
    call graph stays complete (used by ``repro lint --changed``).
    """
    paths = [Path(p) for p in paths]
    if config is None:
        start = paths[0] if paths else Path.cwd()
        config = LintConfig.discover(start)
    if rules is None:
        rules = default_rules(config)
    if cross_module is None:
        cross_module = config.cross_module
    parsed_files = collect_parsed(paths, config)
    result = LintResult(files_checked=len(parsed_files))
    all_findings: list[Finding] = []
    for parsed in parsed_files:
        all_findings.extend(_lint_parsed(parsed, config, rules))
    if cross_module:
        all_findings.extend(
            _lint_project(parsed_files, config, project_rules))
    if restrict_to is not None:
        all_findings = [f for f in all_findings if f.path in restrict_to]
    if use_baseline:
        baseline = load_baseline(config.baseline_path())
        kept, matched = apply_baseline(all_findings, baseline)
        result.findings = kept
        result.baselined = matched
    else:
        result.findings = all_findings
    result.findings.sort(key=lambda f: f.sort_key)
    return result
