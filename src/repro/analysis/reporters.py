"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult


def render_text(result: LintResult, show_hints: bool = True) -> str:
    """One line (plus optional hint) per finding, then a summary line."""
    parts = [finding.format_text(show_hint=show_hints)
             for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (f"{len(result.findings)} {noun} "
               f"({result.files_checked} files checked")
    if result.baselined:
        summary += f", {result.baselined} baselined"
    summary += ")"
    parts.append(summary)
    return "\n".join(parts)


def render_json(result: LintResult) -> str:
    """The full result as a JSON document (stable key order)."""
    payload = {
        "findings": [finding.to_json() for finding in result.findings],
        "summary": {
            "count": len(result.findings),
            "files_checked": result.files_checked,
            "baselined": result.baselined,
            "clean": result.clean,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
